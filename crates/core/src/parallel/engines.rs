//! Parallel counterparts of the strict and resilient grid engines, plus
//! the partitioned staged-model scan.
//!
//! All three engines follow the same shape:
//!
//! 1. **Partition.** A short sequential warm-up descent expands the
//!    pyramid frontier until it holds enough independent subtrees (the
//!    staged engine just splits the tuple range), then deals the work
//!    across workers in a deterministic order.
//! 2. **Descend.** Each worker runs the ordinary best-first loop over its
//!    own subtrees, pruning against `max(local K-th floor, shared bound)`.
//!    Floors discovered by one worker are published through a
//!    [`SharedBound`], so pruning progress propagates across workers
//!    without locks.
//! 3. **Merge.** Per-worker [`TopKHeap`]s are concatenated, sorted by the
//!    global `(score desc, index asc)` order, and truncated to K;
//!    per-worker [`EffortReport`]s are summed.
//!
//! Because every published floor is the K-th best of a *subset* of the
//! evaluated cells, it can never exceed the true K-th best score — so no
//! true top-K cell is ever pruned, and (absent exact score ties at the
//! K-th boundary) the merged result is bit-identical to the sequential
//! engines at every thread count. DESIGN.md §9 spells the argument out.

use crate::coarse::CoarseGrid;
use crate::engine::{
    read_base_vector_into, region_bound_into, validate_grid_inputs, EffortReport, GridTopK,
    QueryScratch, Region, ScoredCell, TupleTopK,
};
use crate::error::CoreError;
use crate::lifecycle::CancelToken;
use crate::parallel::pool::{SharedBound, WorkerPool};
use crate::resilient::{checkpoint_stop, region_candidate, BudgetStop, ExecutionBudget};
use crate::resilient::{ResilientHit, ResilientTopK, ScoreBounds, WallDeadline};
use crate::source::{CellSource, PyramidSource};
use mbir_archive::error::ArchiveError;
use mbir_archive::extent::CellCoord;
use mbir_index::scan::TopKHeap;
use mbir_index::stats::{sort_desc, ScoredItem};
use mbir_models::linear::{LinearModel, ProgressiveLinearModel};
use mbir_progressive::pyramid::AggregatePyramid;
use std::cmp::Ordering;
use std::collections::{BTreeSet, BinaryHeap};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering as AtomicOrdering};

/// Warm-up expands the frontier until it holds `threads * FRONTIER_FANOUT`
/// subtrees, so the deal gives every worker several independent regions.
pub(crate) const FRONTIER_FANOUT: usize = 4;

/// Deterministic total order used to deal frontier regions to workers:
/// upper bound descending, then (level, row, col) ascending as an
/// unambiguous tiebreak.
fn region_order(a: &Region, b: &Region) -> Ordering {
    b.ub.total_cmp(&a.ub)
        .then_with(|| a.level.cmp(&b.level))
        .then_with(|| a.row.cmp(&b.row))
        .then_with(|| a.col.cmp(&b.col))
}

/// Sequential warm-up: best-first expansion (level-0 pops are parked, not
/// evaluated) until the frontier holds `target` regions or bottoms out.
/// The checkpoint closure is evaluated once per pop, mirroring the
/// resilient engine's cooperative budget checks; returning `Some` stops
/// the expansion. The returned regions are sorted by [`region_order`].
fn expand_frontier(
    model: &LinearModel,
    pyramids: &[AggregatePyramid],
    levels: usize,
    target: usize,
    effort: &mut EffortReport,
    mut checkpoint: impl FnMut(&EffortReport) -> Option<BudgetStop>,
) -> Result<(Vec<Region>, Option<BudgetStop>), CoreError> {
    let top = levels - 1;
    let mut scratch = QueryScratch::new();
    let QueryScratch {
        children, ranges, ..
    } = &mut scratch;
    let root = region_bound_into(model, pyramids, top, 0, 0, ranges, effort)?;
    let mut frontier: BinaryHeap<Region> = BinaryHeap::new();
    frontier.push(Region {
        ub: root,
        level: top,
        row: 0,
        col: 0,
    });
    let mut parked: Vec<Region> = Vec::new();
    let mut stop = None;
    while frontier.len() + parked.len() < target {
        if let Some(s) = checkpoint(effort) {
            stop = Some(s);
            break;
        }
        let Some(region) = frontier.pop() else { break };
        if region.level == 0 {
            parked.push(region);
            continue;
        }
        pyramids[0].children_into(region.level, region.row, region.col, children);
        for child in children.iter() {
            let ub = region_bound_into(
                model,
                pyramids,
                region.level - 1,
                child.row,
                child.col,
                ranges,
                effort,
            )?;
            frontier.push(Region {
                ub,
                level: region.level - 1,
                row: child.row,
                col: child.col,
            });
        }
    }
    let mut regions = frontier.into_vec();
    regions.append(&mut parked);
    regions.sort_by(region_order);
    Ok((regions, stop))
}

/// Deals sorted regions round-robin across `workers` buckets, so every
/// worker starts with a comparable spread of upper bounds.
fn deal(regions: Vec<Region>, workers: usize) -> Vec<Vec<Region>> {
    let mut parts: Vec<Vec<Region>> = (0..workers).map(|_| Vec::new()).collect();
    for (i, region) in regions.into_iter().enumerate() {
        parts[i % workers].push(region);
    }
    parts
}

struct StrictWorkerOut {
    items: Vec<ScoredItem>,
    effort: EffortReport,
    error: Option<CoreError>,
}

/// One worker's best-first descent over its dealt subtrees (strict
/// failure semantics: the first archive error stops the worker).
fn strict_worker<S: CellSource>(
    model: &LinearModel,
    pyramids: &[AggregatePyramid],
    cols: usize,
    k: usize,
    source: &S,
    shared: &SharedBound,
    seed: Vec<Region>,
) -> StrictWorkerOut {
    let n = model.arity() as u64;
    let mut effort = EffortReport::default();
    let mut heap = TopKHeap::new(k);
    let mut frontier: BinaryHeap<Region> = seed.into();
    let mut error = None;
    // Per-worker scratch: the descent loop allocates nothing once warm.
    let mut scratch = QueryScratch::new();
    let QueryScratch {
        children,
        x,
        ranges,
        ..
    } = &mut scratch;
    'descent: while let Some(region) = frontier.pop() {
        let mut bound = shared.get();
        if let Some(floor) = heap.floor() {
            bound = bound.max(floor);
        }
        if bound >= region.ub {
            break; // Everything left in this partition is excluded.
        }
        if region.level == 0 {
            match read_base_vector_into(source, model.arity(), region.row, region.col, x) {
                Ok(()) => {
                    effort.multiply_adds += n;
                    heap.offer(ScoredItem {
                        index: region.row * cols + region.col,
                        score: model.evaluate(x),
                    });
                    if let Some(floor) = heap.floor() {
                        shared.offer(floor);
                    }
                }
                Err(e) => {
                    error = Some(e);
                    break;
                }
            }
            continue;
        }
        pyramids[0].children_into(region.level, region.row, region.col, children);
        for child in children.iter() {
            match region_bound_into(
                model,
                pyramids,
                region.level - 1,
                child.row,
                child.col,
                ranges,
                &mut effort,
            ) {
                Ok(ub) => frontier.push(Region {
                    ub,
                    level: region.level - 1,
                    row: child.row,
                    col: child.col,
                }),
                Err(e) => {
                    error = Some(e);
                    break 'descent;
                }
            }
        }
    }
    StrictWorkerOut {
        items: heap.into_sorted(),
        effort,
        error,
    }
}

/// Parallel [`pyramid_top_k`](crate::engine::pyramid_top_k): the same
/// exact quad-descent, partitioned over the pool's workers with shared
/// bound propagation. Results are bit-identical to the sequential engine
/// at every thread count (same cells, same scores, same tie-breaking);
/// only the effort split differs.
///
/// # Errors
///
/// Same as [`pyramid_top_k`](crate::engine::pyramid_top_k).
pub fn par_pyramid_top_k(
    model: &LinearModel,
    pyramids: &[AggregatePyramid],
    k: usize,
    pool: &WorkerPool,
) -> Result<GridTopK, CoreError> {
    par_pyramid_top_k_with_source(model, pyramids, k, &PyramidSource::new(pyramids), pool)
}

/// [`par_pyramid_top_k`] with base reads routed through a shared
/// [`CellSource`]. Strict failure semantics: any failed base read fails
/// the query (workers already running may finish their subtree first; the
/// reported error is the lowest-indexed worker's).
///
/// # Errors
///
/// Same as [`pyramid_top_k_with_source`](crate::engine::pyramid_top_k_with_source).
pub fn par_pyramid_top_k_with_source<S: CellSource + Sync>(
    model: &LinearModel,
    pyramids: &[AggregatePyramid],
    k: usize,
    source: &S,
    pool: &WorkerPool,
) -> Result<GridTopK, CoreError> {
    let ((rows, cols), levels) = validate_grid_inputs(model, pyramids, k)?;
    let mut effort = EffortReport {
        multiply_adds: 0,
        naive_multiply_adds: model.arity() as u64 * (rows * cols) as u64,
    };
    let target = pool.threads() * FRONTIER_FANOUT;
    let (regions, _) = expand_frontier(model, pyramids, levels, target, &mut effort, |_| None)?;
    let workers = pool.threads().min(regions.len()).max(1);
    let shared = SharedBound::new();
    let shared_ref = &shared;
    let outs = pool.run(
        deal(regions, workers)
            .into_iter()
            .map(|seed| {
                move |_wi: usize| strict_worker(model, pyramids, cols, k, source, shared_ref, seed)
            })
            .collect(),
    );
    let mut items = Vec::new();
    for out in outs {
        if let Some(e) = out.error {
            return Err(e);
        }
        effort += out.effort;
        items.extend(out.items);
    }
    sort_desc(&mut items);
    items.truncate(k);
    let results = items
        .into_iter()
        .map(|item| ScoredCell {
            cell: CellCoord::new(item.index / cols, item.index % cols),
            score: item.score,
        })
        .collect();
    Ok(GridTopK { results, effort })
}

/// One worker's staged-model scan over a contiguous tuple range.
fn staged_worker(
    model: &ProgressiveLinearModel,
    tuples: &[Vec<f64>],
    k: usize,
    start: usize,
    end: usize,
    shared: &SharedBound,
) -> (Vec<ScoredItem>, EffortReport) {
    let mut effort = EffortReport::default();
    if start >= end {
        return (Vec::new(), effort);
    }
    let n_terms = model.stages();
    let order = model.term_order();
    let coeffs = model.model().coefficients();
    let ranges = model.ranges();
    let mut alive: Vec<usize> = (start..end).collect();
    let mut partial: Vec<f64> = vec![model.model().intercept(); end - start];
    // Reused across stages so each pruning pass allocates nothing.
    let mut lows: Vec<f64> = Vec::new();
    for stage in 1..=n_terms {
        let term = order[stage - 1];
        let (rlo, rhi) = ranges[term];
        for &idx in &alive {
            partial[idx - start] += coeffs[term] * tuples[idx][term].clamp(rlo, rhi);
            effort.multiply_adds += 1;
        }
        if stage == n_terms || alive.is_empty() {
            break;
        }
        // Stage constants recovered through one representative evaluation,
        // exactly as in the sequential engine (they are tuple-independent).
        let probe = model.evaluate_stage(&tuples[alive[0]], stage);
        let suffix_mid = (probe.lo + probe.hi) / 2.0 - partial[alive[0] - start];
        let half_width = (probe.hi - probe.lo) / 2.0;
        let mut floor = shared.get();
        if alive.len() > k {
            lows.clear();
            lows.extend(
                alive
                    .iter()
                    .map(|&idx| partial[idx - start] + suffix_mid - half_width),
            );
            lows.select_nth_unstable_by(k - 1, |a, b| b.total_cmp(a));
            let local = lows[k - 1];
            shared.offer(local);
            floor = floor.max(local);
        }
        if floor > f64::NEG_INFINITY {
            alive.retain(|&idx| partial[idx - start] + suffix_mid + half_width >= floor);
        }
    }
    let mut heap = TopKHeap::new(k);
    for &idx in &alive {
        heap.offer(ScoredItem {
            index: idx,
            score: partial[idx - start],
        });
    }
    (heap.into_sorted(), effort)
}

/// Parallel [`staged_top_k`](crate::engine::staged_top_k): the tuple range
/// is split into contiguous chunks, one per worker; each worker runs the
/// staged pruning loop over its chunk, sharing K-th lower bounds through a
/// [`SharedBound`] so one worker's pruning floor drops candidates in every
/// other chunk. Results are bit-identical to the sequential engine at
/// every thread count.
///
/// # Errors
///
/// Same as [`staged_top_k`](crate::engine::staged_top_k).
pub fn par_staged_top_k(
    model: &ProgressiveLinearModel,
    tuples: &[Vec<f64>],
    k: usize,
    pool: &WorkerPool,
) -> Result<TupleTopK, CoreError> {
    if k == 0 {
        return Err(CoreError::Query("k must be >= 1".into()));
    }
    if tuples.is_empty() {
        return Err(CoreError::Query("no tuples to search".into()));
    }
    let n_terms = model.stages();
    for t in tuples {
        if t.len() != n_terms {
            return Err(CoreError::Model(
                mbir_models::error::ModelError::ArityMismatch {
                    expected: n_terms,
                    actual: t.len(),
                },
            ));
        }
    }
    let workers = pool.threads().min(tuples.len());
    let chunk = tuples.len().div_ceil(workers);
    let shared = SharedBound::new();
    let shared_ref = &shared;
    let outs = pool.run(
        (0..workers)
            .map(|wi| {
                move |_i: usize| {
                    let start = (wi * chunk).min(tuples.len());
                    let end = ((wi + 1) * chunk).min(tuples.len());
                    staged_worker(model, tuples, k, start, end, shared_ref)
                }
            })
            .collect(),
    );
    let mut effort = EffortReport {
        multiply_adds: 0,
        naive_multiply_adds: (n_terms * tuples.len()) as u64,
    };
    let mut items = Vec::new();
    for (worker_items, worker_effort) in outs {
        effort += worker_effort;
        items.extend(worker_items);
    }
    sort_desc(&mut items);
    items.truncate(k);
    Ok(TupleTopK {
        results: items,
        effort,
    })
}

pub(crate) const STOP_NONE: u8 = 0;

pub(crate) fn stop_code(stop: BudgetStop) -> u8 {
    match stop {
        BudgetStop::MultiplyAdds => 1,
        BudgetStop::PageReads => 2,
        BudgetStop::Deadline => 3,
        BudgetStop::WallClock => 4,
        BudgetStop::Cancelled => 5,
    }
}

pub(crate) fn code_stop(code: u8) -> Option<BudgetStop> {
    match code {
        1 => Some(BudgetStop::MultiplyAdds),
        2 => Some(BudgetStop::PageReads),
        3 => Some(BudgetStop::Deadline),
        4 => Some(BudgetStop::WallClock),
        5 => Some(BudgetStop::Cancelled),
        _ => None,
    }
}

/// Shared read-only context of one parallel resilient run.
struct ResilientCtx<'a, S: CellSource> {
    model: &'a LinearModel,
    pyramids: &'a [AggregatePyramid],
    cols: usize,
    k: usize,
    source: &'a S,
    budget: &'a ExecutionBudget,
    /// Shared wall-clock deadline latch, observed by every worker at the
    /// budget checkpoint (alongside the shared bound).
    deadline: &'a WallDeadline,
    /// Caller-held cancellation latch, polled first at every checkpoint
    /// (stop precedence: Cancelled > WallClock > Budget).
    cancel: Option<&'a CancelToken>,
    bound: &'a SharedBound,
    /// Optional quantized coarse pass: children strictly below the
    /// worker's pruning bound are rejected before the exact child bound
    /// (prune-only, see [`crate::coarse`]).
    coarse: Option<&'a CoarseGrid>,
    /// Budget dimension: multiply-adds spent across *all* workers.
    multiply_adds: &'a AtomicU64,
    /// First exhausted budget dimension (0 = still within budget).
    stop: &'a AtomicU8,
    pages_at_entry: u64,
    ticks_at_entry: u64,
}

struct ResilientWorkerOut {
    items: Vec<ScoredItem>,
    /// Level-0 regions whose page read failed, with the failing page.
    lost: Vec<(Region, usize)>,
    /// Regions a budget stop left unrefined.
    leftover: Vec<Region>,
    effort: EffortReport,
    error: Option<CoreError>,
}

/// One worker's resilient descent: lost pages park the cell instead of
/// failing, and the shared budget is checked at every pop. Local effort is
/// flushed into the shared counter per pop so the budget sees global work.
fn resilient_worker<S: CellSource>(
    ctx: &ResilientCtx<'_, S>,
    seed: Vec<Region>,
) -> ResilientWorkerOut {
    let n = ctx.model.arity() as u64;
    let mut heap = TopKHeap::new(ctx.k);
    let mut frontier: BinaryHeap<Region> = seed.into();
    // Per-worker scratch: the descent loop allocates nothing once warm.
    let mut scratch = QueryScratch::new();
    let QueryScratch {
        children,
        x,
        ranges,
        qcoeff,
        qmeta,
        ..
    } = &mut scratch;
    let mut out = ResilientWorkerOut {
        items: Vec::new(),
        lost: Vec::new(),
        leftover: Vec::new(),
        effort: EffortReport::default(),
        error: None,
    };
    if let Some(cg) = ctx.coarse {
        if let Err(e) = cg.prepare_into(ctx.model, qcoeff, qmeta) {
            out.error = Some(e);
            return out;
        }
    }
    while let Some(region) = frontier.pop() {
        let mut bound = ctx.bound.get();
        if let Some(floor) = heap.floor() {
            bound = bound.max(floor);
        }
        if bound >= region.ub {
            break; // Sound exclusion of this partition's remainder.
        }
        if ctx.stop.load(AtomicOrdering::Relaxed) != STOP_NONE {
            // Another worker exhausted the budget: surrender the frontier.
            out.leftover.push(region);
            out.leftover.extend(frontier.drain());
            break;
        }
        // Fixed stop precedence Cancelled > WallClock > Budget: a step
        // that trips several dimensions at once latches the same reason
        // on every run and at every thread count.
        let checked = checkpoint_stop(
            ctx.cancel,
            ctx.deadline,
            ctx.budget,
            ctx.multiply_adds.load(AtomicOrdering::Relaxed),
            ctx.source.pages_read().saturating_sub(ctx.pages_at_entry),
            ctx.source
                .ticks_elapsed()
                .saturating_sub(ctx.ticks_at_entry),
        );
        if let Some(stop) = checked {
            let _ = ctx.stop.compare_exchange(
                STOP_NONE,
                stop_code(stop),
                AtomicOrdering::Relaxed,
                AtomicOrdering::Relaxed,
            );
            out.leftover.push(region);
            out.leftover.extend(frontier.drain());
            break;
        }
        if region.level == 0 {
            match read_base_vector_into(ctx.source, ctx.model.arity(), region.row, region.col, x) {
                Ok(()) => {
                    out.effort.multiply_adds += n;
                    ctx.multiply_adds.fetch_add(n, AtomicOrdering::Relaxed);
                    heap.offer(ScoredItem {
                        index: region.row * ctx.cols + region.col,
                        score: ctx.model.evaluate(x),
                    });
                    if let Some(floor) = heap.floor() {
                        ctx.bound.offer(floor);
                    }
                }
                Err(CoreError::Archive(
                    ArchiveError::PageIo { page }
                    | ArchiveError::PageQuarantined { page }
                    | ArchiveError::PageCorrupt { page },
                )) => {
                    let page = ctx.source.page_of(region.row, region.col).unwrap_or(page);
                    out.lost.push((region, page));
                }
                Err(e) => {
                    out.error = Some(e);
                    break;
                }
            }
            continue;
        }
        let mut local = EffortReport::default();
        let mut failed = None;
        ctx.pyramids[0].children_into(region.level, region.row, region.col, children);
        for child in children.iter() {
            // Coarse pass against the pop-time pruning bound (max of the
            // shared bound and the local floor — both only ever rise, and
            // both are K-th floors of evaluated subsets, so a strict
            // `cub < bound` can never reject a true top-K cell, tie or
            // not). Prune-only: survivors get the exact bound unchanged.
            // No multiply-adds charged — pure i8 side-structure work.
            if let Some(cg) = ctx.coarse {
                if bound > f64::NEG_INFINITY
                    && cg.cell_upper_bound(qcoeff, qmeta, region.level - 1, child.row, child.col)
                        < bound
                {
                    continue;
                }
            }
            match region_bound_into(
                ctx.model,
                ctx.pyramids,
                region.level - 1,
                child.row,
                child.col,
                ranges,
                &mut local,
            ) {
                Ok(ub) => frontier.push(Region {
                    ub,
                    level: region.level - 1,
                    row: child.row,
                    col: child.col,
                }),
                Err(e) => {
                    failed = Some(e);
                    break;
                }
            }
        }
        out.effort += local;
        ctx.multiply_adds
            .fetch_add(local.multiply_adds, AtomicOrdering::Relaxed);
        if let Some(e) = failed {
            out.error = Some(e);
            break;
        }
    }
    out.items = heap.into_sorted();
    out
}

/// Parallel [`resilient_top_k`](crate::resilient::resilient_top_k):
/// partitioned descent with per-worker lost/leftover tracking merged into
/// one honest degradation report, under a *shared* budget (atomic
/// counters checked at the same cooperative checkpoints — once per pop).
///
/// With a healthy source or deterministic page faults and an unlimited
/// budget the output is bit-identical to the sequential resilient engine
/// at every thread count: lost cells are excluded by their deterministic
/// frontier bound, not by which worker reached them first. A mid-run
/// budget stop is inherently schedule-dependent — the results are still
/// sound and honestly accounted, but not reproducible across thread
/// counts (DESIGN.md §9).
///
/// # Errors
///
/// Same as [`resilient_top_k`](crate::resilient::resilient_top_k).
pub fn par_resilient_top_k<S: CellSource + Sync>(
    model: &LinearModel,
    pyramids: &[AggregatePyramid],
    k: usize,
    source: &S,
    budget: &ExecutionBudget,
    pool: &WorkerPool,
) -> Result<ResilientTopK, CoreError> {
    par_resilient_top_k_inner(model, pyramids, k, source, budget, None, None, pool)
}

/// [`par_resilient_top_k`] with the quantized coarse pass of
/// [`resilient_top_k_coarse`](crate::resilient::resilient_top_k_coarse):
/// every worker consults the shared [`CoarseGrid`] before computing an
/// exact child bound, pruning against `max(shared bound, local floor)`.
/// Prune-only, so the healthy/deterministic-fault unlimited-budget output
/// stays bit-identical to both [`par_resilient_top_k`] and the sequential
/// engines at every thread count; a `max_multiply_adds` budget stop lands
/// at a different (later) point of the same descent, as in the sequential
/// coarse engine.
///
/// # Errors
///
/// Same as [`par_resilient_top_k`], plus
/// [`CoreError::Query`](crate::error::CoreError) when the coarse grid's
/// arity does not match the model.
pub fn par_resilient_top_k_coarse<S: CellSource + Sync>(
    model: &LinearModel,
    pyramids: &[AggregatePyramid],
    k: usize,
    source: &S,
    budget: &ExecutionBudget,
    coarse: &CoarseGrid,
    pool: &WorkerPool,
) -> Result<ResilientTopK, CoreError> {
    par_resilient_top_k_inner(model, pyramids, k, source, budget, None, Some(coarse), pool)
}

/// [`par_resilient_top_k`] polling a
/// [`CancelToken`](crate::lifecycle::CancelToken) at every worker
/// checkpoint. Cancellation latches
/// [`BudgetStop::Cancelled`](crate::resilient::BudgetStop) through the
/// shared stop flag, so every worker surrenders its frontier at its next
/// pop and the merged report stays sound. A token cancelled *before* the
/// call stops the run at the warm-up checkpoint, which makes the degraded
/// answer bit-identical at every thread count (mid-run cancellation is
/// schedule-dependent, like any mid-run budget stop). A token that is
/// never cancelled changes nothing.
///
/// # Errors
///
/// Same as [`resilient_top_k`](crate::resilient::resilient_top_k).
pub fn par_resilient_top_k_cancellable<S: CellSource + Sync>(
    model: &LinearModel,
    pyramids: &[AggregatePyramid],
    k: usize,
    source: &S,
    budget: &ExecutionBudget,
    cancel: &CancelToken,
    pool: &WorkerPool,
) -> Result<ResilientTopK, CoreError> {
    par_resilient_top_k_inner(model, pyramids, k, source, budget, Some(cancel), None, pool)
}

#[allow(clippy::too_many_arguments)]
fn par_resilient_top_k_inner<S: CellSource + Sync>(
    model: &LinearModel,
    pyramids: &[AggregatePyramid],
    k: usize,
    source: &S,
    budget: &ExecutionBudget,
    cancel: Option<&CancelToken>,
    coarse: Option<&CoarseGrid>,
    pool: &WorkerPool,
) -> Result<ResilientTopK, CoreError> {
    let ((rows, cols), levels) = validate_grid_inputs(model, pyramids, k)?;
    let total_cells = (rows * cols) as u64;
    let n = model.arity() as u64;
    let mut effort = EffortReport {
        multiply_adds: 0,
        naive_multiply_adds: n * total_cells,
    };
    let pages_at_entry = source.pages_read();
    let ticks_at_entry = source.ticks_elapsed();
    let deadline = WallDeadline::starting_now(budget);

    let target = pool.threads() * FRONTIER_FANOUT;
    let (regions, warm_stop) =
        expand_frontier(model, pyramids, levels, target, &mut effort, |e| {
            // Same fixed stop precedence as the worker checkpoints:
            // Cancelled > WallClock > Budget.
            checkpoint_stop(
                cancel,
                &deadline,
                budget,
                e.multiply_adds,
                source.pages_read().saturating_sub(pages_at_entry),
                source.ticks_elapsed().saturating_sub(ticks_at_entry),
            )
        })?;

    let shared = SharedBound::new();
    let shared_ma = AtomicU64::new(effort.multiply_adds);
    let stop_flag = AtomicU8::new(warm_stop.map(stop_code).unwrap_or(STOP_NONE));

    let mut all_items: Vec<ScoredItem> = Vec::new();
    let mut all_lost: Vec<(Region, usize)> = Vec::new();
    let mut all_leftover: Vec<Region> = Vec::new();

    if warm_stop.is_some() {
        all_leftover = regions;
    } else {
        let ctx = ResilientCtx {
            model,
            pyramids,
            cols,
            k,
            source,
            budget,
            deadline: &deadline,
            cancel,
            bound: &shared,
            coarse,
            multiply_adds: &shared_ma,
            stop: &stop_flag,
            pages_at_entry,
            ticks_at_entry,
        };
        let ctx_ref = &ctx;
        let workers = pool.threads().min(regions.len()).max(1);
        let outs = pool.run(
            deal(regions, workers)
                .into_iter()
                .map(|seed| move |_wi: usize| resilient_worker(ctx_ref, seed))
                .collect(),
        );
        for out in outs {
            if let Some(e) = out.error {
                return Err(e);
            }
            effort += out.effort;
            all_items.extend(out.items);
            all_lost.extend(out.lost);
            all_leftover.extend(out.leftover);
        }
    }

    let budget_stop = code_stop(stop_flag.load(AtomicOrdering::Relaxed));

    sort_desc(&mut all_items);
    all_items.truncate(k);
    // Only a full merged heap yields a sound exclusion floor.
    let floor = if all_items.len() == k {
        all_items.last().map(|i| i.score)
    } else {
        None
    };

    let mut unresolved = 0u64;
    let mut skipped: BTreeSet<usize> = BTreeSet::new();
    let mut hits: Vec<ResilientHit> = all_items
        .into_iter()
        .map(|item| ResilientHit {
            cell: CellCoord::new(item.index / cols, item.index % cols),
            level: 0,
            score: item.score,
            bounds: ScoreBounds::exact(item.score),
            exact: true,
        })
        .collect();

    for region in all_leftover {
        let (candidate, count) = region_candidate(
            model,
            pyramids,
            region.level,
            region.row,
            region.col,
            &mut effort,
        )?;
        if floor.is_some_and(|f| f >= candidate.bounds.hi) {
            continue; // Provably outside the top-K: resolved.
        }
        unresolved += count;
        hits.push(candidate);
    }

    // Lost cells: excluded by their deterministic frontier bound (the
    // level-0 index bound), reported against the parent aggregate — the
    // same contract as the sequential resilient engine.
    let parent_level = 1.min(levels - 1);
    for (region, page) in all_lost {
        if floor.is_some_and(|f| f >= region.ub) {
            continue;
        }
        skipped.insert(page);
        let (mut candidate, _) = region_candidate(
            model,
            pyramids,
            parent_level,
            region.row >> parent_level,
            region.col >> parent_level,
            &mut effort,
        )?;
        candidate.cell = CellCoord::new(region.row, region.col);
        candidate.level = 0;
        unresolved += 1;
        hits.push(candidate);
    }

    // Rank by upper bound first — mirrors the sequential engine: exact
    // hits have hi == score, and under degradation the truncation to k
    // can never drop the only candidate that might still be the winner.
    hits.sort_by(|a, b| {
        b.bounds
            .hi
            .total_cmp(&a.bounds.hi)
            .then_with(|| b.score.total_cmp(&a.score))
            .then_with(|| a.cell.cmp(&b.cell))
    });
    hits.truncate(k);

    Ok(ResilientTopK {
        results: hits,
        effort,
        completeness: 1.0 - unresolved as f64 / total_cells as f64,
        skipped_pages: skipped.into_iter().collect(),
        budget_stop,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{naive_grid_top_k, pyramid_top_k, staged_top_k};
    use crate::resilient::{resilient_top_k, resilient_top_k_cancellable};
    use crate::source::TileSource;
    use mbir_archive::fault::FaultProfile;
    use mbir_archive::grid::Grid2;
    use mbir_archive::stats::AccessStats;
    use mbir_archive::tile::TileStore;

    fn pseudo_grid(seed: u64, rows: usize, cols: usize) -> Grid2<f64> {
        Grid2::from_fn(rows, cols, |r, c| {
            let h = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add((r * 8191 + c * 127) as u64)
                .wrapping_mul(2862933555777941757);
            (h >> 11) as f64 / (1u64 << 53) as f64 * 100.0
        })
    }

    fn build_inputs(
        seed: u64,
        rows: usize,
        cols: usize,
        arity: usize,
    ) -> (LinearModel, Vec<AggregatePyramid>) {
        let coeffs: Vec<f64> = (0..arity)
            .map(|i| match i % 4 {
                0 => 2.0,
                1 => -1.0,
                2 => 0.25,
                _ => 0.05,
            })
            .collect();
        let model = LinearModel::new(coeffs, 0.5).unwrap();
        let pyramids: Vec<AggregatePyramid> = (0..arity)
            .map(|i| AggregatePyramid::build(&pseudo_grid(seed + i as u64, rows, cols)))
            .collect();
        (model, pyramids)
    }

    fn progressive_of(
        model: &LinearModel,
        pyramids: &[AggregatePyramid],
    ) -> ProgressiveLinearModel {
        let ranges: Vec<(f64, f64)> = pyramids
            .iter()
            .map(|p| {
                let root = p.root();
                (root.min, root.max)
            })
            .collect();
        ProgressiveLinearModel::new(model.clone(), &ranges).unwrap()
    }

    #[test]
    fn par_pyramid_is_bit_identical_at_every_thread_count() {
        let (model, pyramids) = build_inputs(11, 48, 40, 3);
        for k in [1usize, 5, 17] {
            let sequential = pyramid_top_k(&model, &pyramids, k).unwrap();
            for threads in [1usize, 2, 4, 8] {
                let pool = WorkerPool::new(threads);
                let parallel = par_pyramid_top_k(&model, &pyramids, k, &pool).unwrap();
                assert_eq!(
                    parallel.results, sequential.results,
                    "k={k} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn par_pyramid_matches_naive_scores() {
        let (model, pyramids) = build_inputs(2, 32, 32, 4);
        let naive = naive_grid_top_k(&model, &pyramids, 9).unwrap();
        let pool = WorkerPool::new(4);
        let parallel = par_pyramid_top_k(&model, &pyramids, 9, &pool).unwrap();
        assert_eq!(parallel.results, naive.results);
        assert!(parallel.effort.naive_multiply_adds == naive.effort.naive_multiply_adds);
    }

    #[test]
    fn par_pyramid_validates_like_sequential() {
        let (model, pyramids) = build_inputs(5, 8, 8, 2);
        let pool = WorkerPool::new(2);
        assert!(par_pyramid_top_k(&model, &pyramids, 0, &pool).is_err());
        assert!(par_pyramid_top_k(&model, &pyramids[..1], 1, &pool).is_err());
    }

    #[test]
    fn par_pyramid_small_grid_returns_all_cells() {
        let (model, pyramids) = build_inputs(7, 3, 3, 2);
        let pool = WorkerPool::new(8);
        let r = par_pyramid_top_k(&model, &pyramids, 100, &pool).unwrap();
        let s = pyramid_top_k(&model, &pyramids, 100).unwrap();
        assert_eq!(r.results, s.results);
        assert_eq!(r.results.len(), 9);
    }

    #[test]
    fn par_staged_is_bit_identical_at_every_thread_count() {
        let (model, pyramids) = build_inputs(3, 24, 24, 4);
        let prog = progressive_of(&model, &pyramids);
        let tuples: Vec<Vec<f64>> = (0..24 * 24)
            .map(|i| {
                (0..4)
                    .map(|a| pyramids[a].cell(0, i / 24, i % 24).unwrap().mean)
                    .collect()
            })
            .collect();
        for k in [1usize, 10] {
            let sequential = staged_top_k(&prog, &tuples, k).unwrap();
            for threads in [1usize, 2, 4, 8] {
                let pool = WorkerPool::new(threads);
                let parallel = par_staged_top_k(&prog, &tuples, k, &pool).unwrap();
                assert_eq!(
                    parallel.results, sequential.results,
                    "k={k} threads={threads}"
                );
                if threads == 1 {
                    assert_eq!(parallel.effort, sequential.effort, "1 thread = same work");
                }
            }
        }
    }

    #[test]
    fn par_staged_handles_more_workers_than_tuples() {
        let (model, pyramids) = build_inputs(9, 2, 2, 2);
        let prog = progressive_of(&model, &pyramids);
        let tuples: Vec<Vec<f64>> = (0..3)
            .map(|i| {
                (0..2)
                    .map(|a| pyramids[a].cell(0, i / 2, i % 2).unwrap().mean)
                    .collect()
            })
            .collect();
        let pool = WorkerPool::new(16);
        let parallel = par_staged_top_k(&prog, &tuples, 2, &pool).unwrap();
        let sequential = staged_top_k(&prog, &tuples, 2).unwrap();
        assert_eq!(parallel.results, sequential.results);
    }

    #[test]
    fn par_staged_validates_like_sequential() {
        let (model, pyramids) = build_inputs(5, 8, 8, 2);
        let prog = progressive_of(&model, &pyramids);
        let pool = WorkerPool::new(2);
        assert!(par_staged_top_k(&prog, &[], 1, &pool).is_err());
        assert!(par_staged_top_k(&prog, &[vec![1.0]], 1, &pool).is_err());
        assert!(par_staged_top_k(&prog, &[vec![1.0, 2.0]], 0, &pool).is_err());
    }

    fn smooth_world(
        arity: usize,
        rows: usize,
        cols: usize,
        tile: usize,
    ) -> (LinearModel, Vec<AggregatePyramid>, Vec<TileStore>) {
        let grids: Vec<Grid2<f64>> = (0..arity)
            .map(|i| {
                Grid2::from_fn(rows, cols, |r, c| {
                    ((r as f64 / 9.0 + i as f64).sin() + (c as f64 / 11.0).cos()) * 50.0 + 100.0
                })
            })
            .collect();
        let pyramids = grids.iter().map(AggregatePyramid::build).collect();
        let stats = AccessStats::new();
        let stores = grids
            .iter()
            .map(|g| {
                TileStore::new(g.clone(), tile)
                    .unwrap()
                    .with_stats(stats.clone())
            })
            .collect();
        let coeffs: Vec<f64> = (0..arity).map(|i| 1.0 - 0.3 * i as f64).collect();
        (LinearModel::new(coeffs, 0.25).unwrap(), pyramids, stores)
    }

    #[test]
    fn par_resilient_healthy_matches_sequential_resilient() {
        let (model, pyramids, stores) = smooth_world(3, 48, 48, 8);
        let src = TileSource::new(&stores).unwrap();
        let sequential =
            resilient_top_k(&model, &pyramids, 7, &src, &ExecutionBudget::unlimited()).unwrap();
        for threads in [1usize, 2, 4, 8] {
            let pool = WorkerPool::new(threads);
            let parallel = par_resilient_top_k(
                &model,
                &pyramids,
                7,
                &src,
                &ExecutionBudget::unlimited(),
                &pool,
            )
            .unwrap();
            assert_eq!(parallel.results, sequential.results, "threads={threads}");
            assert_eq!(parallel.completeness, 1.0);
            assert_eq!(parallel.budget_stop, None);
            assert!(parallel.skipped_pages.is_empty());
        }
    }

    #[test]
    fn par_resilient_lost_pages_match_sequential_report() {
        let (model, pyramids, stores) = smooth_world(2, 32, 32, 8);
        let winner = pyramid_top_k(&model, &pyramids, 1).unwrap().results[0].cell;
        let page = stores[0].page_of(winner.row, winner.col);
        let stores: Vec<TileStore> = stores
            .into_iter()
            .map(|s| s.with_faults(FaultProfile::new(0).permanent(page)))
            .collect();
        let src = TileSource::new(&stores).unwrap();
        let sequential =
            resilient_top_k(&model, &pyramids, 3, &src, &ExecutionBudget::unlimited()).unwrap();
        for threads in [1usize, 2, 4, 8] {
            let pool = WorkerPool::new(threads);
            let parallel = par_resilient_top_k(
                &model,
                &pyramids,
                3,
                &src,
                &ExecutionBudget::unlimited(),
                &pool,
            )
            .unwrap();
            assert_eq!(parallel.results, sequential.results, "threads={threads}");
            assert_eq!(parallel.completeness, sequential.completeness);
            assert_eq!(parallel.skipped_pages, sequential.skipped_pages);
            assert!(parallel.skipped_pages.contains(&page));
        }
    }

    #[test]
    fn par_resilient_budget_stop_is_sound() {
        let (model, pyramids, stores) = smooth_world(2, 64, 64, 8);
        let src = TileSource::new(&stores).unwrap();
        let unlimited = par_resilient_top_k(
            &model,
            &pyramids,
            5,
            &src,
            &ExecutionBudget::unlimited(),
            &WorkerPool::new(4),
        )
        .unwrap();
        let best = unlimited.results[0].score;
        // Half of the measured full-run effort: enough to get past warm-up,
        // far too little to finish.
        let budget =
            ExecutionBudget::unlimited().with_max_multiply_adds(unlimited.effort.multiply_adds / 2);
        for threads in [1usize, 2, 4] {
            let pool = WorkerPool::new(threads);
            let r = par_resilient_top_k(&model, &pyramids, 5, &src, &budget, &pool).unwrap();
            assert_eq!(r.budget_stop, Some(BudgetStop::MultiplyAdds));
            assert!(r.completeness >= 0.0 && r.completeness <= 1.0);
            assert!(r.results.len() <= 5);
            // The true winner is either confirmed exactly, covered by some
            // degraded candidate's upper bound, or pushed out of a *full*
            // report by k candidates with higher estimates.
            assert!(
                r.results.len() == 5
                    || r.results
                        .iter()
                        .any(|h| (h.exact && h.score == best) || (!h.exact && h.bounds.hi >= best)),
                "threads={threads}: winner neither confirmed nor covered"
            );
            for hit in r.results.iter().filter(|h| !h.exact) {
                assert!(hit.bounds.lo <= hit.score && hit.score <= hit.bounds.hi);
            }
        }
    }

    #[test]
    fn par_resilient_zero_wall_deadline_is_consistent_across_threads() {
        use std::time::Duration;
        let (model, pyramids, stores) = smooth_world(2, 64, 64, 8);
        let src = TileSource::new(&stores).unwrap();
        let budget = ExecutionBudget::unlimited().with_wall_deadline(Duration::ZERO);
        let reference = resilient_top_k(&model, &pyramids, 5, &src, &budget).unwrap();
        assert_eq!(reference.budget_stop, Some(BudgetStop::WallClock));
        assert_eq!(reference.completeness, 0.0);
        for threads in [1usize, 2, 4, 8] {
            let pool = WorkerPool::new(threads);
            let r = par_resilient_top_k(&model, &pyramids, 5, &src, &budget, &pool).unwrap();
            assert_eq!(
                r.budget_stop,
                Some(BudgetStop::WallClock),
                "threads={threads}"
            );
            // An already-expired deadline stops every schedule at its first
            // checkpoint: completeness and bounds match at every width.
            assert_eq!(r.completeness, reference.completeness, "threads={threads}");
            assert_eq!(r.results, reference.results, "threads={threads}");
            assert!(r.results.iter().all(|h| !h.exact));
            for h in &r.results {
                assert!(h.bounds.lo <= h.score && h.score <= h.bounds.hi);
            }
        }
    }

    #[test]
    fn cancelled_stop_beats_deadline_and_budget_at_every_thread_count() {
        use crate::lifecycle::CancelToken;
        use std::time::Duration;
        let (model, pyramids, stores) = smooth_world(2, 64, 64, 8);
        let src = TileSource::new(&stores).unwrap();
        // All three stop families trip at the first checkpoint: a
        // pre-cancelled token, an expired wall deadline, and an exhausted
        // multiply-add cap. The fixed precedence Cancelled > WallClock >
        // Budget must hold on every schedule.
        let budget = ExecutionBudget::unlimited()
            .with_max_multiply_adds(1)
            .with_wall_deadline(Duration::ZERO);
        let token = CancelToken::new();
        token.cancel();
        let reference =
            resilient_top_k_cancellable(&model, &pyramids, 5, &src, &budget, &token).unwrap();
        assert_eq!(reference.budget_stop, Some(BudgetStop::Cancelled));
        assert_eq!(reference.completeness, 0.0);
        for threads in [1usize, 2, 4, 8] {
            let pool = WorkerPool::new(threads);
            let r =
                par_resilient_top_k_cancellable(&model, &pyramids, 5, &src, &budget, &token, &pool)
                    .unwrap();
            assert_eq!(
                r.budget_stop,
                Some(BudgetStop::Cancelled),
                "threads={threads}"
            );
            // A pre-cancelled token stops every schedule at the warm-up
            // checkpoint: the degraded answer matches at every width.
            assert_eq!(r.completeness, reference.completeness, "threads={threads}");
            assert_eq!(r.results, reference.results, "threads={threads}");
            for h in &r.results {
                assert!(h.bounds.lo <= h.score && h.score <= h.bounds.hi);
            }
        }
    }

    #[test]
    fn par_resilient_uncancelled_token_changes_nothing() {
        use crate::lifecycle::CancelToken;
        let (model, pyramids, stores) = smooth_world(2, 48, 48, 8);
        let src = TileSource::new(&stores).unwrap();
        let budget = ExecutionBudget::unlimited();
        let token = CancelToken::new();
        let plain = resilient_top_k(&model, &pyramids, 6, &src, &budget).unwrap();
        for threads in [1usize, 2, 4, 8] {
            let pool = WorkerPool::new(threads);
            let r =
                par_resilient_top_k_cancellable(&model, &pyramids, 6, &src, &budget, &token, &pool)
                    .unwrap();
            assert_eq!(r.results, plain.results, "threads={threads}");
            assert_eq!(r.budget_stop, None);
            assert_eq!(r.completeness, 1.0);
        }
    }

    #[test]
    fn par_resilient_generous_wall_deadline_changes_nothing() {
        use std::time::Duration;
        let (model, pyramids, stores) = smooth_world(2, 48, 48, 8);
        let src = TileSource::new(&stores).unwrap();
        let plain = par_resilient_top_k(
            &model,
            &pyramids,
            6,
            &src,
            &ExecutionBudget::unlimited(),
            &WorkerPool::new(4),
        )
        .unwrap();
        let timed = par_resilient_top_k(
            &model,
            &pyramids,
            6,
            &src,
            &ExecutionBudget::unlimited().with_wall_deadline(Duration::from_secs(3600)),
            &WorkerPool::new(4),
        )
        .unwrap();
        assert_eq!(timed.budget_stop, None);
        assert_eq!(timed.results, plain.results);
    }

    #[test]
    fn par_resilient_detected_corruption_matches_sequential() {
        use crate::source::CachedTileSource;
        let (model, pyramids, stores) = smooth_world(2, 32, 32, 8);
        let winner = pyramid_top_k(&model, &pyramids, 1).unwrap().results[0].cell;
        let page = stores[0].page_of(winner.row, winner.col);
        let stores: Vec<TileStore> = stores
            .into_iter()
            .map(|s| s.with_faults(FaultProfile::new(0).corrupt(page)))
            .collect();
        let src = CachedTileSource::new(&stores, 16).unwrap();
        let sequential =
            resilient_top_k(&model, &pyramids, 4, &src, &ExecutionBudget::unlimited()).unwrap();
        assert!(sequential.skipped_pages.contains(&page));
        for threads in [1usize, 2, 4, 8] {
            let pool = WorkerPool::new(threads);
            let parallel = par_resilient_top_k(
                &model,
                &pyramids,
                4,
                &src,
                &ExecutionBudget::unlimited(),
                &pool,
            )
            .unwrap();
            assert_eq!(parallel.results, sequential.results, "threads={threads}");
            assert_eq!(parallel.skipped_pages, sequential.skipped_pages);
            assert_eq!(parallel.completeness, sequential.completeness);
        }
    }

    #[test]
    fn par_resilient_immediate_budget_exhaustion_reports_frontier() {
        let (model, pyramids, stores) = smooth_world(2, 64, 64, 8);
        let src = TileSource::new(&stores).unwrap();
        let r = par_resilient_top_k(
            &model,
            &pyramids,
            5,
            &src,
            &ExecutionBudget::unlimited().with_max_multiply_adds(1),
            &WorkerPool::new(4),
        )
        .unwrap();
        assert_eq!(r.budget_stop, Some(BudgetStop::MultiplyAdds));
        assert_eq!(r.completeness, 0.0, "nothing was resolved");
        assert!(!r.results.is_empty(), "the frontier itself is reported");
        assert!(r.results.iter().all(|h| !h.exact));
    }

    #[test]
    fn par_resilient_coarse_is_bit_identical_at_every_thread_count() {
        let (model, pyramids, stores) = smooth_world(3, 64, 64, 8);
        let coarse = CoarseGrid::build(&pyramids).unwrap();
        let src = TileSource::new(&stores).unwrap();
        let budget = ExecutionBudget::unlimited();
        let sequential = resilient_top_k(&model, &pyramids, 7, &src, &budget).unwrap();
        for threads in [1usize, 2, 4, 8] {
            let pool = WorkerPool::new(threads);
            let pruned =
                par_resilient_top_k_coarse(&model, &pyramids, 7, &src, &budget, &coarse, &pool)
                    .unwrap();
            assert_eq!(pruned.results, sequential.results, "threads={threads}");
            assert_eq!(pruned.completeness, 1.0);
            assert_eq!(pruned.budget_stop, None);
            assert!(pruned.skipped_pages.is_empty());
        }
    }

    #[test]
    fn par_resilient_coarse_matches_plain_under_faults() {
        let (model, pyramids, stores) = smooth_world(2, 32, 32, 8);
        let coarse = CoarseGrid::build(&pyramids).unwrap();
        let winner = pyramid_top_k(&model, &pyramids, 1).unwrap().results[0].cell;
        let page = stores[0].page_of(winner.row, winner.col);
        let stores: Vec<TileStore> = stores
            .into_iter()
            .map(|s| s.with_faults(FaultProfile::new(0).permanent(page)))
            .collect();
        let src = TileSource::new(&stores).unwrap();
        let budget = ExecutionBudget::unlimited();
        let plain = resilient_top_k(&model, &pyramids, 3, &src, &budget).unwrap();
        assert!(plain.is_degraded(), "fault must actually degrade the run");
        for threads in [1usize, 2, 4, 8] {
            let pool = WorkerPool::new(threads);
            let pruned =
                par_resilient_top_k_coarse(&model, &pyramids, 3, &src, &budget, &coarse, &pool)
                    .unwrap();
            assert_eq!(pruned.results, plain.results, "threads={threads}");
            assert_eq!(pruned.skipped_pages, plain.skipped_pages);
            assert_eq!(pruned.completeness, plain.completeness);
        }
    }
}
