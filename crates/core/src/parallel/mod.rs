//! Hardware-parallel execution: worker-pool engines, batched queries, and
//! shared bound propagation.
//!
//! Everything the sequential engines prove, these engines prove with the
//! work spread over threads:
//!
//! * [`WorkerPool`] / [`SharedBound`] ([`pool`]) — a minimal scoped pool
//!   over `std::thread` and the lock-free monotone bound the workers
//!   share.
//! * [`par_pyramid_top_k`] / [`par_staged_top_k`] /
//!   [`par_resilient_top_k`] ([`engines`]) — partitioned counterparts of
//!   the strict and resilient engines, bit-identical to them at every
//!   thread count (budget stops excepted; see the engine docs).
//! * [`QueryBatch`] ([`batch`]) — N concurrent queries against one shared
//!   archive, dealt across the pool with cache-aware scheduling and a
//!   per-worker scratch pool.
//! * [`par_batched_top_k`] ([`batched`]) — the shared-frontier batched
//!   engine of [`crate::batched`] partitioned over the pool, with one
//!   [`SharedBound`] per query.
//!
//! The design and its determinism argument live in DESIGN.md §9; the
//! batched shared-frontier invariant is §15.

pub mod batch;
pub mod batched;
pub mod engines;
pub mod pool;

pub use batch::{grid_query_with_scratch, grid_query_with_source, QueryBatch, ScratchPool};
pub use batched::{par_batched_top_k, par_batched_top_k_cancellable, par_batched_top_k_coarse};
pub use engines::{
    par_pyramid_top_k, par_pyramid_top_k_with_source, par_resilient_top_k,
    par_resilient_top_k_cancellable, par_resilient_top_k_coarse, par_staged_top_k,
};
pub use pool::{SharedBound, WorkerPool, THREADS_ENV};
