//! The scoped worker pool and the shared-bound primitive every parallel
//! engine is built on.
//!
//! The pool is deliberately minimal: [`WorkerPool::run`] executes one
//! closure per worker on `std::thread::scope` threads and returns their
//! results in worker order. There is no task queue and no persistent
//! threads — engines partition their work *before* calling `run`, so the
//! only synchronization the hot loops need is the lock-free
//! [`SharedBound`] (and plain atomic counters for effort/budget
//! accounting). A pool of one thread runs the closure inline, so the
//! single-threaded path pays no spawn cost at all.

use std::sync::atomic::{AtomicU64, Ordering};

/// Environment variable overriding [`WorkerPool::with_default_parallelism`];
/// CI sets it so the parallel paths run multi-threaded deterministically.
pub const THREADS_ENV: &str = "MBIR_TEST_THREADS";

/// A scoped worker pool over plain `std::thread`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerPool {
    threads: usize,
}

impl WorkerPool {
    /// A pool of `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        WorkerPool {
            threads: threads.max(1),
        }
    }

    /// A pool sized from the environment: the `MBIR_TEST_THREADS` variable
    /// when set and parseable, otherwise
    /// [`std::thread::available_parallelism`].
    pub fn with_default_parallelism() -> Self {
        let threads = std::env::var(THREADS_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            });
        WorkerPool::new(threads)
    }

    /// The number of workers this pool runs.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs one closure per task on scoped threads, returning results in
    /// task order. Each closure receives its task index. With a single
    /// task (or a one-thread pool and a single task) the closure runs
    /// inline on the calling thread.
    pub fn run<T, F>(&self, tasks: Vec<F>) -> Vec<T>
    where
        T: Send,
        F: FnOnce(usize) -> T + Send,
    {
        if tasks.len() <= 1 {
            return tasks.into_iter().enumerate().map(|(i, f)| f(i)).collect();
        }
        std::thread::scope(|scope| {
            let handles: Vec<_> = tasks
                .into_iter()
                .enumerate()
                .map(|(i, f)| scope.spawn(move || f(i)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        })
    }
}

/// A lock-free, monotonically tightening lower bound shared by all workers
/// of one parallel query.
///
/// Stores an `f64` as its IEEE-754 bits in an `AtomicU64` and raises it
/// with a compare-and-swap loop that compares in the *float* domain, so
/// the published value only ever increases. Workers publish their local
/// K-th-best lower bounds here; every worker prunes against
/// `max(local floor, shared.get())`, so pruning progress made by one
/// worker immediately tightens all the others.
///
/// Relaxed ordering is sufficient: the bound is a pruning hint, and a
/// stale read only means a worker prunes slightly later than it could
/// have — never incorrectly (see DESIGN.md §9 for the soundness argument).
#[derive(Debug)]
pub struct SharedBound {
    bits: AtomicU64,
}

impl SharedBound {
    /// A bound starting at negative infinity (nothing excluded yet).
    pub fn new() -> Self {
        SharedBound {
            bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }

    /// Raises the bound to `value` if it is higher than the current one.
    pub fn offer(&self, value: f64) {
        if value.is_nan() {
            return;
        }
        let mut current = self.bits.load(Ordering::Relaxed);
        loop {
            if value <= f64::from_bits(current) {
                return;
            }
            match self.bits.compare_exchange_weak(
                current,
                value.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(observed) => current = observed,
            }
        }
    }

    /// The current bound (`-inf` until the first offer).
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

impl Default for SharedBound {
    fn default() -> Self {
        SharedBound::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_clamps_to_one_thread() {
        assert_eq!(WorkerPool::new(0).threads(), 1);
        assert_eq!(WorkerPool::new(4).threads(), 4);
    }

    #[test]
    fn run_preserves_task_order() {
        let pool = WorkerPool::new(4);
        let tasks: Vec<_> = (0..8).map(|_| move |i: usize| i * 10).collect();
        assert_eq!(pool.run(tasks), (0..8).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn single_task_runs_inline() {
        let pool = WorkerPool::new(8);
        let id = std::thread::current().id();
        let got = pool.run(vec![move |_i: usize| std::thread::current().id()]);
        assert_eq!(got, vec![id]);
    }

    #[test]
    fn shared_bound_is_monotone() {
        let b = SharedBound::new();
        assert_eq!(b.get(), f64::NEG_INFINITY);
        b.offer(3.5);
        assert_eq!(b.get(), 3.5);
        b.offer(2.0); // lower: ignored
        assert_eq!(b.get(), 3.5);
        b.offer(7.25);
        assert_eq!(b.get(), 7.25);
        b.offer(f64::NAN); // never poisons the bound
        assert_eq!(b.get(), 7.25);
    }

    #[test]
    fn shared_bound_races_keep_the_max() {
        let b = SharedBound::new();
        std::thread::scope(|scope| {
            for t in 0..8u32 {
                let b = &b;
                scope.spawn(move || {
                    for i in 0..1000u32 {
                        b.offer(f64::from(t * 1000 + i));
                    }
                });
            }
        });
        assert_eq!(b.get(), 7999.0);
    }
}
