//! Fallible base-level cell access for the progressive engines.
//!
//! The aggregate pyramids are a *resident index*: small, precomputed,
//! always available. The base-resolution data they summarize lives in the
//! paged archive, and reading it can fail — a page may be faulty or
//! quarantined (see [`mbir_archive::fault`]). [`CellSource`] is the seam
//! between the two: engines descend the index freely but pull exact
//! base-level values through a source, so archive failures surface as
//! `Result`s the engine can either propagate (strict execution) or absorb
//! (resilient execution, [`crate::resilient`]).
//!
//! Two implementations cover the repository's regimes:
//!
//! * [`PyramidSource`] — reads level 0 of the pyramids themselves. It is
//!   infallible in practice and makes the source-parameterized engines
//!   behave bit-for-bit like the original in-memory ones.
//! * [`TileSource`] — reads through per-attribute [`TileStore`]s, with
//!   page accounting, fault injection, retries, and quarantine.

use crate::error::CoreError;
use mbir_archive::error::ArchiveError;
use mbir_archive::tile::TileStore;
use mbir_progressive::pyramid::AggregatePyramid;

/// Fallible access to base-resolution attribute values.
///
/// `attr` indexes the model attribute (one pyramid / store per attribute);
/// `(row, col)` is a base-level cell. The accounting methods let execution
/// budgets observe I/O without threading a stats handle separately; sources
/// without paged backing return zeros.
pub trait CellSource {
    /// Base-level value of attribute `attr` at `(row, col)`.
    ///
    /// # Errors
    ///
    /// Returns the archive error for out-of-bounds coordinates, failed
    /// page reads ([`ArchiveError::PageIo`]), or quarantined pages
    /// ([`ArchiveError::PageQuarantined`]).
    fn base_cell(&self, attr: usize, row: usize, col: usize) -> Result<f64, ArchiveError>;

    /// Page index backing `(row, col)`, when the source is paged.
    fn page_of(&self, _row: usize, _col: usize) -> Option<usize> {
        None
    }

    /// Pages read so far through this source (budget accounting).
    fn pages_read(&self) -> u64 {
        0
    }

    /// Virtual I/O ticks elapsed so far (budget deadline clock).
    fn ticks_elapsed(&self) -> u64 {
        0
    }
}

/// In-memory source reading level 0 of the attribute pyramids.
///
/// This is the fault-free fast path: the source-parameterized engines run
/// bit-for-bit identically to the original in-memory implementations.
#[derive(Debug, Clone, Copy)]
pub struct PyramidSource<'a> {
    pyramids: &'a [AggregatePyramid],
}

impl<'a> PyramidSource<'a> {
    /// Wraps the attribute pyramids.
    pub fn new(pyramids: &'a [AggregatePyramid]) -> Self {
        PyramidSource { pyramids }
    }
}

impl CellSource for PyramidSource<'_> {
    fn base_cell(&self, attr: usize, row: usize, col: usize) -> Result<f64, ArchiveError> {
        self.pyramids[attr].cell(0, row, col).map(|s| s.mean)
    }
}

/// Paged source reading through one [`TileStore`] per attribute.
///
/// All stores must share the base shape and tile size, so a page index
/// means the same region in every attribute. Budget accounting
/// (`pages_read`, `ticks_elapsed`) is taken from the **first** store's
/// stats handle; share one [`AccessStats`](mbir_archive::stats::AccessStats)
/// across the stores (via [`TileStore::with_stats`]) when aggregate
/// accounting across attributes is wanted.
#[derive(Debug)]
pub struct TileSource<'a> {
    stores: &'a [TileStore],
}

impl<'a> TileSource<'a> {
    /// Wraps per-attribute stores.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Query`] when no stores are supplied or their
    /// shapes / tile sizes disagree.
    pub fn new(stores: &'a [TileStore]) -> Result<Self, CoreError> {
        let first = stores
            .first()
            .ok_or_else(|| CoreError::Query("no tile stores supplied".into()))?;
        for s in &stores[1..] {
            if s.rows() != first.rows()
                || s.cols() != first.cols()
                || s.tile_size() != first.tile_size()
            {
                return Err(CoreError::Query(
                    "tile stores must share shape and tile size".into(),
                ));
            }
        }
        Ok(TileSource { stores })
    }

    /// The wrapped stores.
    pub fn stores(&self) -> &[TileStore] {
        self.stores
    }
}

impl CellSource for TileSource<'_> {
    fn base_cell(&self, attr: usize, row: usize, col: usize) -> Result<f64, ArchiveError> {
        self.stores[attr].read(row, col)
    }

    fn page_of(&self, row: usize, col: usize) -> Option<usize> {
        Some(self.stores[0].page_of(row, col))
    }

    fn pages_read(&self) -> u64 {
        self.stores[0].stats().pages_read()
    }

    fn ticks_elapsed(&self) -> u64 {
        self.stores[0].stats().ticks_elapsed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbir_archive::grid::Grid2;
    use mbir_archive::stats::AccessStats;

    fn grid(seed: u64) -> Grid2<f64> {
        Grid2::from_fn(8, 8, |r, c| (seed as f64) + (r * 8 + c) as f64)
    }

    #[test]
    fn pyramid_source_reads_base_means() {
        let pyr = AggregatePyramid::build(&grid(0));
        let pyrs = vec![pyr];
        let src = PyramidSource::new(&pyrs);
        assert_eq!(src.base_cell(0, 1, 5).unwrap(), 13.0);
        assert_eq!(src.page_of(1, 5), None);
        assert_eq!(src.pages_read(), 0);
        assert!(src.base_cell(0, 9, 0).is_err());
    }

    #[test]
    fn tile_source_validates_and_accounts() {
        let stats = AccessStats::new();
        let stores: Vec<TileStore> = (0..2)
            .map(|i| {
                TileStore::new(grid(i), 4)
                    .unwrap()
                    .with_stats(stats.clone())
            })
            .collect();
        let src = TileSource::new(&stores).unwrap();
        assert_eq!(src.base_cell(1, 0, 0).unwrap(), 1.0);
        assert_eq!(src.page_of(5, 5), Some(3));
        assert_eq!(src.pages_read(), 1);
        assert!(src.ticks_elapsed() >= 1);

        assert!(TileSource::new(&[]).is_err());
        let odd = vec![
            TileStore::new(grid(0), 4).unwrap(),
            TileStore::new(grid(0), 2).unwrap(),
        ];
        assert!(TileSource::new(&odd).is_err());
    }
}
