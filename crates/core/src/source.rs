//! Fallible base-level cell access for the progressive engines.
//!
//! The aggregate pyramids are a *resident index*: small, precomputed,
//! always available. The base-resolution data they summarize lives in the
//! paged archive, and reading it can fail — a page may be faulty or
//! quarantined (see [`mbir_archive::fault`]). [`CellSource`] is the seam
//! between the two: engines descend the index freely but pull exact
//! base-level values through a source, so archive failures surface as
//! `Result`s the engine can either propagate (strict execution) or absorb
//! (resilient execution, [`crate::resilient`]).
//!
//! Three implementations cover the repository's regimes:
//!
//! * [`PyramidSource`] — reads level 0 of the pyramids themselves. It is
//!   infallible in practice and makes the source-parameterized engines
//!   behave bit-for-bit like the original in-memory ones.
//! * [`TileSource`] — reads through per-attribute [`TileStore`]s, with
//!   page accounting, fault injection, retries, and quarantine.
//! * [`CachedTileSource`] — a [`TileSource`] behind a small shared LRU
//!   page cache, safe for concurrent readers: batched queries
//!   ([`crate::parallel::QueryBatch`]) and parallel engines dedup their
//!   page reads through it.

use crate::error::CoreError;
use mbir_archive::error::ArchiveError;
use mbir_archive::tile::TileStore;
use mbir_progressive::pyramid::AggregatePyramid;
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

/// Fallible access to base-resolution attribute values.
///
/// `attr` indexes the model attribute (one pyramid / store per attribute);
/// `(row, col)` is a base-level cell. The accounting methods let execution
/// budgets observe I/O without threading a stats handle separately; sources
/// without paged backing return zeros.
pub trait CellSource {
    /// Base-level value of attribute `attr` at `(row, col)`.
    ///
    /// # Errors
    ///
    /// Returns the archive error for out-of-bounds coordinates, failed
    /// page reads ([`ArchiveError::PageIo`]), or quarantined pages
    /// ([`ArchiveError::PageQuarantined`]).
    fn base_cell(&self, attr: usize, row: usize, col: usize) -> Result<f64, ArchiveError>;

    /// Page index backing `(row, col)`, when the source is paged.
    fn page_of(&self, _row: usize, _col: usize) -> Option<usize> {
        None
    }

    /// Pages read so far through this source (budget accounting).
    fn pages_read(&self) -> u64 {
        0
    }

    /// Virtual I/O ticks elapsed so far (budget deadline clock).
    fn ticks_elapsed(&self) -> u64 {
        0
    }
}

/// In-memory source reading level 0 of the attribute pyramids.
///
/// This is the fault-free fast path: the source-parameterized engines run
/// bit-for-bit identically to the original in-memory implementations.
#[derive(Debug, Clone, Copy)]
pub struct PyramidSource<'a> {
    pyramids: &'a [AggregatePyramid],
}

impl<'a> PyramidSource<'a> {
    /// Wraps the attribute pyramids.
    pub fn new(pyramids: &'a [AggregatePyramid]) -> Self {
        PyramidSource { pyramids }
    }
}

impl CellSource for PyramidSource<'_> {
    fn base_cell(&self, attr: usize, row: usize, col: usize) -> Result<f64, ArchiveError> {
        self.pyramids[attr].cell(0, row, col).map(|s| s.mean)
    }
}

/// Paged source reading through one [`TileStore`] per attribute.
///
/// All stores must share the base shape and tile size, so a page index
/// means the same region in every attribute. Budget accounting
/// (`pages_read`, `ticks_elapsed`) is taken from the **first** store's
/// stats handle; share one [`AccessStats`](mbir_archive::stats::AccessStats)
/// across the stores (via [`TileStore::with_stats`]) when aggregate
/// accounting across attributes is wanted.
#[derive(Debug)]
pub struct TileSource<'a> {
    stores: &'a [TileStore],
}

impl<'a> TileSource<'a> {
    /// Wraps per-attribute stores.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Query`] when no stores are supplied or their
    /// shapes / tile sizes disagree.
    pub fn new(stores: &'a [TileStore]) -> Result<Self, CoreError> {
        let first = stores
            .first()
            .ok_or_else(|| CoreError::Query("no tile stores supplied".into()))?;
        for s in &stores[1..] {
            if s.rows() != first.rows()
                || s.cols() != first.cols()
                || s.tile_size() != first.tile_size()
            {
                return Err(CoreError::Query(
                    "tile stores must share shape and tile size".into(),
                ));
            }
        }
        Ok(TileSource { stores })
    }

    /// The wrapped stores.
    pub fn stores(&self) -> &[TileStore] {
        self.stores
    }
}

/// Sources whose per-page quarantine ledger can be scrubbed.
///
/// Quarantine is keyed by *page id within the owning store*, so it is
/// only meaningful for the band layout the store was built for. After a
/// topology change hands a row band to a new owner, the retired side's
/// quarantine entries describe pages nobody routes to anymore — and if
/// the stores are later re-banded or reused, a stale entry would
/// suppress reads of perfectly healthy data. The reshard coordinator
/// scrubs retired sources through this trait at the `Retired`
/// transition (see [`crate::reshard`]).
pub trait QuarantineScrub {
    /// Clears every quarantined page so future reads attempt the page
    /// again (healing transient faults, re-verifying checksums).
    fn clear_quarantine(&self);

    /// Pages currently quarantined, summed over the source's stores.
    fn quarantined_pages(&self) -> u64;
}

impl QuarantineScrub for TileSource<'_> {
    fn clear_quarantine(&self) {
        for store in self.stores {
            store.clear_quarantine();
        }
    }

    fn quarantined_pages(&self) -> u64 {
        self.stores
            .iter()
            .map(|s| s.quarantined_pages().count() as u64)
            .sum()
    }
}

impl QuarantineScrub for CachedTileSource<'_> {
    fn clear_quarantine(&self) {
        for store in self.stores {
            store.clear_quarantine();
        }
    }

    fn quarantined_pages(&self) -> u64 {
        self.stores
            .iter()
            .map(|s| s.quarantined_pages().count() as u64)
            .sum()
    }
}

impl CellSource for TileSource<'_> {
    fn base_cell(&self, attr: usize, row: usize, col: usize) -> Result<f64, ArchiveError> {
        self.stores[attr].read(row, col)
    }

    fn page_of(&self, row: usize, col: usize) -> Option<usize> {
        Some(self.stores[0].page_of(row, col))
    }

    fn pages_read(&self) -> u64 {
        self.stores[0].stats().pages_read()
    }

    fn ticks_elapsed(&self) -> u64 {
        self.stores[0].stats().ticks_elapsed()
    }
}

/// One cached page: every attribute's values over the page's cell extent.
#[derive(Debug)]
struct PageBlock {
    r0: usize,
    c0: usize,
    width: usize,
    /// `values[attr][(row - r0) * width + (col - c0)]`.
    values: Vec<Vec<f64>>,
}

#[derive(Debug)]
enum Slot {
    /// Some reader is materializing this page; wait instead of re-reading.
    Loading,
    /// Materialized page with its LRU recency stamp.
    Ready { block: Arc<PageBlock>, recency: u64 },
}

#[derive(Debug, Default)]
struct CacheState {
    slots: HashMap<usize, Slot>,
    clock: u64,
    /// Bumped by [`CachedTileSource::advance_epoch`]. Loads that straddle
    /// an advance are served to their caller but never inserted, so a
    /// block materialized against a pre-advance view cannot shadow the
    /// post-advance contents of a dirtied page.
    epoch: u64,
    /// Smallest `first_dirty_page` across all epoch advances — the
    /// original high-water mark. Materializations at or past it are
    /// append-side reads and counted as `appended_pages_seen`.
    appended_from: Option<usize>,
}

/// A [`TileSource`] behind a small shared LRU page cache.
///
/// Cell reads materialize the whole page (every attribute) once and serve
/// subsequent reads from memory. The cache is safe for concurrent readers
/// and *dedups in-flight reads*: while one thread materializes a page,
/// others asking for it block on a condvar instead of re-reading it from
/// the stores. Hits and misses are counted on the first store's
/// [`AccessStats`](mbir_archive::stats::AccessStats) (see
/// [`cache_hit_rate`](mbir_archive::stats::AccessStats::cache_hit_rate));
/// budget accounting (`pages_read`, `ticks_elapsed`) keeps reflecting the
/// backing stores, so cache hits are free I/O — exactly the effect the
/// cache exists to buy.
///
/// Failed page reads are **not** cached: a later read attempts the page
/// again, preserving the stores' transient-fault-healing and quarantine
/// semantics. The same invariant covers checksum failures — pages are
/// materialized through
/// [`read_page_verified`](TileStore::read_page_verified), so a payload
/// that fails verification surfaces as
/// [`ArchiveError::PageCorrupt`] and is never inserted into the LRU.
/// (The plain [`TileSource`] stays a trusting legacy reader.)
#[derive(Debug)]
pub struct CachedTileSource<'a> {
    stores: &'a [TileStore],
    capacity: usize,
    state: Mutex<CacheState>,
    loaded: Condvar,
}

impl<'a> CachedTileSource<'a> {
    /// Wraps per-attribute stores with an LRU cache of `capacity` pages
    /// (clamped to at least 1).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Query`] when no stores are supplied or their
    /// shapes / tile sizes disagree (the same validation as
    /// [`TileSource::new`]).
    pub fn new(stores: &'a [TileStore], capacity: usize) -> Result<Self, CoreError> {
        TileSource::new(stores)?;
        Ok(CachedTileSource {
            stores,
            capacity: capacity.max(1),
            state: Mutex::new(CacheState::default()),
            loaded: Condvar::new(),
        })
    }

    /// The wrapped stores.
    pub fn stores(&self) -> &[TileStore] {
        self.stores
    }

    /// Maximum number of resident pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of epoch advances this cache has observed.
    pub fn epoch(&self) -> u64 {
        self.state.lock().expect("cache lock").epoch
    }

    /// Publishes a snapshot-epoch advance to the cache: every cached page
    /// at or past `first_dirty_page` is dropped, and any load currently in
    /// flight is demoted to serve-without-caching (its block was
    /// materialized against the pre-advance view). Returns the number of
    /// resident pages dropped; the count is also recorded on the first
    /// store's stats as
    /// [`cache_invalidations`](mbir_archive::stats::AccessStats::cache_invalidations).
    ///
    /// Appends are tile-row aligned, so committed pages below the dirty
    /// boundary are immutable and stay cached; only the append frontier
    /// (and, after crash recovery, any truncated tail) is invalidated.
    pub fn advance_epoch(&self, first_dirty_page: usize) -> usize {
        let mut state = self.state.lock().expect("cache lock");
        state.epoch += 1;
        state.appended_from = Some(match state.appended_from {
            Some(prev) => prev.min(first_dirty_page),
            None => first_dirty_page,
        });
        let stale: Vec<usize> = state
            .slots
            .iter()
            .filter(|(&page, slot)| page >= first_dirty_page && matches!(slot, Slot::Ready { .. }))
            .map(|(&page, _)| page)
            .collect();
        for &page in &stale {
            state.slots.remove(&page);
        }
        if !stale.is_empty() {
            self.stores[0]
                .stats()
                .record_cache_invalidations(stale.len() as u64);
        }
        stale.len()
    }

    /// Returns the cached page, materializing it (all attributes) on a
    /// miss. Blocks while another thread is materializing the same page.
    fn fetch_page(&self, page: usize) -> Result<Arc<PageBlock>, ArchiveError> {
        let stats = self.stores[0].stats();
        let mut state = self.state.lock().expect("cache lock");
        // Whether this lookup observed another reader materializing the
        // page and parked on the condvar — counted once per lookup, not
        // once per spurious wakeup.
        let mut deduped = false;
        loop {
            match state.slots.get(&page) {
                Some(Slot::Ready { .. }) => {
                    state.clock += 1;
                    let clock = state.clock;
                    let Some(Slot::Ready { block, recency }) = state.slots.get_mut(&page) else {
                        unreachable!("slot was just observed ready");
                    };
                    *recency = clock;
                    let block = Arc::clone(block);
                    stats.record_cache_hits(1);
                    if deduped {
                        stats.record_cache_dedup_waits(1);
                    }
                    return Ok(block);
                }
                Some(Slot::Loading) => {
                    deduped = true;
                    state = self.loaded.wait(state).expect("cache lock");
                }
                None => {
                    state.slots.insert(page, Slot::Loading);
                    stats.record_cache_misses(1);
                    if state.appended_from.is_some_and(|from| page >= from) {
                        stats.record_appended_pages_seen(1);
                    }
                    break;
                }
            }
        }
        let epoch_at_load = state.epoch;
        drop(state);
        // Read from the stores *without* holding the cache lock: page
        // reads may retry, back off, or block on the stores' own fault
        // state, and other pages' readers must not wait on that.
        let loaded = self.load_page(page);
        let mut state = self.state.lock().expect("cache lock");
        match loaded {
            Ok(block) => {
                let block = Arc::new(block);
                if state.epoch == epoch_at_load {
                    state.clock += 1;
                    let recency = state.clock;
                    state.slots.insert(
                        page,
                        Slot::Ready {
                            block: Arc::clone(&block),
                            recency,
                        },
                    );
                    self.evict_excess(&mut state);
                } else {
                    // An epoch advance landed while this page was in
                    // flight: the block reflects the pre-advance view, so
                    // serve it to the caller that started the read but do
                    // not cache it. Later readers re-materialize.
                    state.slots.remove(&page);
                }
                self.loaded.notify_all();
                Ok(block)
            }
            Err(e) => {
                // Failures are not cached: clear the Loading marker so a
                // later read retries the page (transient faults heal).
                state.slots.remove(&page);
                self.loaded.notify_all();
                Err(e)
            }
        }
    }

    fn load_page(&self, page: usize) -> Result<PageBlock, ArchiveError> {
        let (r0, c0, _r1, c1) = self.stores[0].page_extent(page)?;
        let width = c1 - c0;
        let mut values = Vec::with_capacity(self.stores.len());
        for store in self.stores {
            // Verified read: corrupt payloads error out (and are therefore
            // never cached) instead of poisoning the LRU.
            let tuples = store.read_page_verified(page)?;
            values.push(tuples.into_iter().map(|(_, v)| v).collect());
        }
        Ok(PageBlock {
            r0,
            c0,
            width,
            values,
        })
    }

    /// Drops least-recently-used ready pages until at most `capacity`
    /// remain. Loading slots are never evicted (their readers hold no
    /// block yet).
    fn evict_excess(&self, state: &mut CacheState) {
        loop {
            let mut ready = 0usize;
            let mut victim: Option<(u64, usize)> = None;
            for (&page, slot) in &state.slots {
                if let Slot::Ready { recency, .. } = slot {
                    ready += 1;
                    let older = match victim {
                        None => true,
                        Some((r, _)) => *recency < r,
                    };
                    if older {
                        victim = Some((*recency, page));
                    }
                }
            }
            if ready <= self.capacity {
                return;
            }
            let Some((_, page)) = victim else { return };
            state.slots.remove(&page);
        }
    }
}

impl CellSource for CachedTileSource<'_> {
    fn base_cell(&self, attr: usize, row: usize, col: usize) -> Result<f64, ArchiveError> {
        let store = &self.stores[0];
        if row >= store.rows() || col >= store.cols() {
            return Err(ArchiveError::OutOfBounds {
                row,
                col,
                rows: store.rows(),
                cols: store.cols(),
            });
        }
        let page = store.page_of(row, col);
        let block = self.fetch_page(page)?;
        Ok(block.values[attr][(row - block.r0) * block.width + (col - block.c0)])
    }

    fn page_of(&self, row: usize, col: usize) -> Option<usize> {
        Some(self.stores[0].page_of(row, col))
    }

    fn pages_read(&self) -> u64 {
        self.stores[0].stats().pages_read()
    }

    fn ticks_elapsed(&self) -> u64 {
        self.stores[0].stats().ticks_elapsed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbir_archive::grid::Grid2;
    use mbir_archive::stats::AccessStats;

    fn grid(seed: u64) -> Grid2<f64> {
        Grid2::from_fn(8, 8, |r, c| (seed as f64) + (r * 8 + c) as f64)
    }

    #[test]
    fn pyramid_source_reads_base_means() {
        let pyr = AggregatePyramid::build(&grid(0));
        let pyrs = vec![pyr];
        let src = PyramidSource::new(&pyrs);
        assert_eq!(src.base_cell(0, 1, 5).unwrap(), 13.0);
        assert_eq!(src.page_of(1, 5), None);
        assert_eq!(src.pages_read(), 0);
        assert!(src.base_cell(0, 9, 0).is_err());
    }

    #[test]
    fn tile_source_validates_and_accounts() {
        let stats = AccessStats::new();
        let stores: Vec<TileStore> = (0..2)
            .map(|i| {
                TileStore::new(grid(i), 4)
                    .unwrap()
                    .with_stats(stats.clone())
            })
            .collect();
        let src = TileSource::new(&stores).unwrap();
        assert_eq!(src.base_cell(1, 0, 0).unwrap(), 1.0);
        assert_eq!(src.page_of(5, 5), Some(3));
        assert_eq!(src.pages_read(), 1);
        assert!(src.ticks_elapsed() >= 1);

        assert!(TileSource::new(&[]).is_err());
        let odd = vec![
            TileStore::new(grid(0), 4).unwrap(),
            TileStore::new(grid(0), 2).unwrap(),
        ];
        assert!(TileSource::new(&odd).is_err());
    }

    fn cached_world() -> (Vec<TileStore>, AccessStats) {
        let stats = AccessStats::new();
        let stores: Vec<TileStore> = (0..2)
            .map(|i| {
                TileStore::new(grid(i), 4)
                    .unwrap()
                    .with_stats(stats.clone())
            })
            .collect();
        (stores, stats)
    }

    #[test]
    fn cached_source_serves_repeat_reads_from_memory() {
        let (stores, stats) = cached_world();
        let src = CachedTileSource::new(&stores, 4).unwrap();
        assert_eq!(src.base_cell(0, 1, 1).unwrap(), 9.0);
        // Same page, both attributes: served from the cached block.
        assert_eq!(src.base_cell(1, 0, 2).unwrap(), 3.0);
        assert_eq!(stats.cache_misses(), 1);
        assert_eq!(stats.cache_hits(), 1);
        // One materialization = one page read per attribute store.
        assert_eq!(stats.pages_read(), 2);
        assert_eq!(src.pages_read(), 2);
        assert!(src.base_cell(0, 8, 0).is_err(), "out of bounds");
        assert_eq!(src.page_of(5, 5), Some(3));
    }

    #[test]
    fn cached_source_matches_uncached_values() {
        let (stores, _) = cached_world();
        let cached = CachedTileSource::new(&stores, 2).unwrap();
        let plain = TileSource::new(&stores).unwrap();
        for attr in 0..2 {
            for r in 0..8 {
                for c in 0..8 {
                    assert_eq!(
                        cached.base_cell(attr, r, c).unwrap(),
                        plain.base_cell(attr, r, c).unwrap()
                    );
                }
            }
        }
    }

    #[test]
    fn lru_eviction_keeps_capacity_and_recency() {
        let (stores, stats) = cached_world();
        let src = CachedTileSource::new(&stores, 1).unwrap();
        assert_eq!(src.capacity(), 1);
        src.base_cell(0, 0, 0).unwrap(); // page 0: miss
        src.base_cell(0, 0, 0).unwrap(); // hit
        src.base_cell(0, 4, 4).unwrap(); // page 3: miss, evicts page 0
        src.base_cell(0, 0, 0).unwrap(); // page 0 again: miss
        assert_eq!(stats.cache_misses(), 3);
        assert_eq!(stats.cache_hits(), 1);
        // Capacity 0 clamps to 1.
        assert_eq!(CachedTileSource::new(&stores, 0).unwrap().capacity(), 1);
    }

    #[test]
    fn failed_pages_are_not_cached_so_transients_heal() {
        use mbir_archive::fault::FaultProfile;
        let (stores, stats) = cached_world();
        // Fault only the first store: a page load reads every store, and
        // each store advances its own transient counter.
        let stores: Vec<TileStore> = stores
            .into_iter()
            .enumerate()
            .map(|(i, s)| {
                if i == 0 {
                    s.with_faults(FaultProfile::new(0).transient(0, 1))
                } else {
                    s
                }
            })
            .collect();
        let src = CachedTileSource::new(&stores, 4).unwrap();
        // First touch fails (no retries configured)...
        assert!(src.base_cell(0, 0, 0).is_err());
        // ...but the failure was not cached, so the healed page reads fine.
        assert_eq!(src.base_cell(0, 0, 0).unwrap(), 0.0);
        assert_eq!(src.base_cell(1, 0, 0).unwrap(), 1.0);
        assert_eq!(stats.cache_misses(), 2, "both attempts were misses");
    }

    #[test]
    fn corrupted_pages_are_never_cached() {
        use mbir_archive::fault::FaultProfile;
        let (stores, stats) = cached_world();
        // Persistently corrupt page 0 of the first store.
        let stores: Vec<TileStore> = stores
            .into_iter()
            .enumerate()
            .map(|(i, s)| {
                if i == 0 {
                    s.with_faults(FaultProfile::new(0).corrupt(0))
                } else {
                    s
                }
            })
            .collect();
        let src = CachedTileSource::new(&stores, 4).unwrap();
        // Every touch of page 0 detects the corruption and errors; nothing
        // is inserted, so every attempt is a fresh miss.
        for _ in 0..3 {
            assert_eq!(
                src.base_cell(0, 0, 0),
                Err(ArchiveError::PageCorrupt { page: 0 })
            );
        }
        assert_eq!(stats.cache_misses(), 3);
        assert_eq!(stats.cache_hits(), 0);
        assert_eq!(stats.corruptions(), 3);
        // Healthy pages still verify and cache normally.
        assert_eq!(src.base_cell(0, 4, 4).unwrap(), 36.0);
        assert_eq!(src.base_cell(1, 4, 4).unwrap(), 37.0);
        assert_eq!(stats.cache_hits(), 1);
    }

    #[test]
    fn cache_hits_do_not_touch_store_fault_state() {
        use mbir_archive::fault::FaultProfile;
        let (stores, stats) = cached_world();
        // Page 0 of the first store heals after one failure; with the page
        // cached, the store must never see the extra accesses that would
        // advance its transient counter or reset breaker runs.
        let stores: Vec<TileStore> = stores
            .into_iter()
            .enumerate()
            .map(|(i, s)| {
                if i == 0 {
                    s.with_faults(FaultProfile::new(0).transient(0, 1))
                } else {
                    s
                }
            })
            .collect();
        let src = CachedTileSource::new(&stores, 4).unwrap();
        assert!(src.base_cell(0, 0, 0).is_err());
        assert_eq!(src.base_cell(0, 0, 0).unwrap(), 0.0);
        let pages_after_fill = stats.pages_read();
        let ticks_after_fill = stats.ticks_elapsed();
        // A burst of cache hits: values flow, but the stores observe
        // nothing — no page reads, no ticks, no fault-state movement.
        for _ in 0..16 {
            assert_eq!(src.base_cell(1, 1, 1).unwrap(), 10.0);
        }
        assert_eq!(stats.pages_read(), pages_after_fill);
        assert_eq!(stats.ticks_elapsed(), ticks_after_fill);
        assert_eq!(stats.failures(), 1, "only the original transient failure");
        assert_eq!(stats.cache_hits(), 16);
    }

    #[test]
    fn epoch_advance_drops_only_pages_past_the_dirty_boundary() {
        let (stores, stats) = cached_world();
        let src = CachedTileSource::new(&stores, 4).unwrap();
        src.base_cell(0, 0, 0).unwrap(); // page 0
        src.base_cell(0, 4, 4).unwrap(); // page 3
        assert_eq!(src.epoch(), 0);
        // Pages >= 2 dirtied: page 3 drops, page 0 stays resident.
        assert_eq!(src.advance_epoch(2), 1);
        assert_eq!(src.epoch(), 1);
        assert_eq!(stats.cache_invalidations(), 1);
        let hits_before = stats.cache_hits();
        src.base_cell(1, 0, 0).unwrap();
        assert_eq!(stats.cache_hits(), hits_before + 1, "page 0 still cached");
        let misses_before = stats.cache_misses();
        src.base_cell(1, 4, 4).unwrap();
        assert_eq!(stats.cache_misses(), misses_before + 1, "page 3 re-read");
        // The re-materialization was past the original high-water mark.
        assert_eq!(stats.appended_pages_seen(), 1);
        // Nothing resident past page 4: a further advance drops nothing.
        assert_eq!(src.advance_epoch(4), 0);
        assert_eq!(stats.cache_invalidations(), 1);
    }

    #[test]
    fn epoch_advance_leaves_in_flight_loads_to_their_readers() {
        let (stores, stats) = cached_world();
        let src = CachedTileSource::new(&stores, 4).unwrap();
        // Mark page 0 as in flight, exactly as fetch_page does before it
        // releases the lock to read the stores.
        src.state.lock().unwrap().slots.insert(0, Slot::Loading);
        // The advance must not drop the Loading marker (its readers hold
        // no block yet) and must not count it as an invalidation...
        assert_eq!(src.advance_epoch(0), 0);
        assert_eq!(stats.cache_invalidations(), 0);
        let st = src.state.lock().unwrap();
        assert!(matches!(st.slots.get(&0), Some(Slot::Loading)));
        // ...but the epoch bump demotes the straddling load: fetch_page
        // compares its pre-load epoch on completion and skips the insert.
        assert_eq!(st.epoch, 1);
    }

    #[test]
    fn concurrent_readers_dedup_in_flight_page_reads() {
        let (stores, stats) = cached_world();
        let src = CachedTileSource::new(&stores, 4).unwrap();
        std::thread::scope(|scope| {
            for t in 0..8usize {
                let src = &src;
                scope.spawn(move || {
                    // All threads hammer page 0 cells.
                    let v = src.base_cell(t % 2, t / 4, t % 4).unwrap();
                    assert!(v.is_finite());
                });
            }
        });
        assert_eq!(stats.cache_misses(), 1, "one materialization total");
        assert_eq!(stats.cache_hits(), 7);
        assert_eq!(stats.pages_read(), 2, "one read per attribute store");
        // Threads that arrived while the page was in flight are counted
        // as dedup waits; the rest hit the already-ready slot. Either way
        // every wait resolved into a hit, never a duplicate store read.
        assert!(
            stats.cache_dedup_waits() <= stats.cache_hits(),
            "dedup waits {} exceed hits {}",
            stats.cache_dedup_waits(),
            stats.cache_hits()
        );
    }
}
