//! Unified error type for the retrieval framework.

use mbir_archive::error::ArchiveError;
use mbir_models::error::ModelError;
use std::error::Error;
use std::fmt;

/// Error raised by the retrieval engine, metrics, or workflow.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// An archive-layer failure (I/O, bounds, missing datasets).
    Archive(ArchiveError),
    /// A model-layer failure (arity, calibration, invalid values).
    Model(ModelError),
    /// Query specification problem (zero K, misaligned inputs, ...).
    Query(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Archive(e) => write!(f, "archive error: {e}"),
            CoreError::Model(e) => write!(f, "model error: {e}"),
            CoreError::Query(what) => write!(f, "query error: {what}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Archive(e) => Some(e),
            CoreError::Model(e) => Some(e),
            CoreError::Query(_) => None,
        }
    }
}

impl From<ArchiveError> for CoreError {
    fn from(e: ArchiveError) -> Self {
        CoreError::Archive(e)
    }
}

impl From<ModelError> for CoreError {
    fn from(e: ModelError) -> Self {
        CoreError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: CoreError = ArchiveError::EmptyDimension.into();
        assert!(e.to_string().contains("archive error"));
        let e: CoreError = ModelError::Empty.into();
        assert!(e.to_string().contains("model error"));
        assert!(Error::source(&e).is_some());
        let e = CoreError::Query("k must be >= 1".into());
        assert!(e.to_string().contains("k must be"));
        assert!(Error::source(&e).is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
