//! Replicated, integrity-checked page access with per-replica circuit
//! breakers and ordered failover.
//!
//! Production archives are redundant and untrusted: every page exists on
//! N replicas, and any single replica can serve it late, corrupted, or
//! not at all. [`ReplicatedSource`] makes that redundancy transparent to
//! the engines:
//!
//! * **Ordered failover.** A page is loaded from the lowest-indexed
//!   healthy replica; a read that faults — or comes back with a payload
//!   failing checksum verification ([`mbir_archive::integrity`]) — is
//!   retried on the next replica *before* any error surfaces. The PR-1
//!   retry/quarantine machinery inside each store never has to fire for a
//!   fault another replica can mask.
//! * **Per-replica health.** Each replica carries an EWMA failure rate
//!   and a consecutive-error count, feeding a three-state circuit breaker
//!   (Closed → Open → HalfOpen): after [`ReplicaConfig::open_after`]
//!   consecutive errors the replica is skipped entirely, and after
//!   [`ReplicaConfig::cooldown_ticks`] on the simulated tick clock a
//!   single HalfOpen trial decides whether it closes again. The cooldown
//!   clock is the replicas' own virtual I/O tick sum, so breaker behavior
//!   is exactly reproducible in tests — no wall time involved.
//! * **A page cache that is not a health signal.** Loaded pages (all
//!   attributes) sit in a small LRU; cache hits never touch replica
//!   health or replica stores — a replica cannot earn health credit for
//!   I/O it never performed. In-flight loads are dedup'd through a
//!   condvar, so concurrent workers materialize each page once.
//! * **Hedged reads against stragglers.** With
//!   [`ReplicaConfig::hedge_after_ticks`] set, a primary load that runs
//!   past the hedge delay on the simulated I/O clock races a duplicate
//!   issued to the next healthy replica; the first success wins and the
//!   loser is cancelled. A cancelled load leaves no health record (no
//!   double counting), a failed hedge is charged to its replica like any
//!   failure, and only verified winners reach the cache — the
//!   never-cache-corrupt invariant is untouched.
//!
//! With every replica healthy and verification on, the source returns
//! exactly the bytes a direct [`TileSource`](crate::source::TileSource)
//! would: the engines' results are bit-identical. Only when *all*
//! replicas fail for a page does an error escape to the engine — which
//! then degrades with sound bounds like any other lost page.

use crate::error::CoreError;
use crate::source::CellSource;
use mbir_archive::error::ArchiveError;
use mbir_archive::tile::TileStore;
use std::collections::HashMap;
use std::sync::{Condvar, Mutex};

/// Tuning for a [`ReplicatedSource`]: breaker thresholds, health decay,
/// cache size, and whether payloads are checksum-verified.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplicaConfig {
    /// EWMA smoothing factor for the per-replica failure rate, in
    /// `(0, 1]`. Higher reacts faster; 0.2 is a conventional default.
    pub ewma_alpha: f64,
    /// Consecutive failures that flip a replica's breaker Closed → Open.
    pub open_after: u32,
    /// Ticks (on the replicas' simulated I/O clock) an Open breaker waits
    /// before allowing one HalfOpen trial.
    pub cooldown_ticks: u64,
    /// LRU page-cache capacity, in pages (clamped to at least 1).
    pub cache_pages: usize,
    /// Whether page payloads are checksum-verified. Disabling this turns
    /// the source into a trusting reader — corruption flows through
    /// silently — and exists so the chaos benchmark can isolate the cost
    /// of verification itself.
    pub verify: bool,
    /// Hedged-read delay in ticks: when a primary page load runs longer
    /// than this on the simulated I/O clock, the same page is issued to
    /// the next healthy replica and the first success wins (the loser is
    /// cancelled and leaves no health record). `None` disables hedging.
    pub hedge_after_ticks: Option<u64>,
}

impl Default for ReplicaConfig {
    fn default() -> Self {
        ReplicaConfig {
            ewma_alpha: 0.2,
            open_after: 3,
            cooldown_ticks: 64,
            cache_pages: 32,
            verify: true,
            hedge_after_ticks: None,
        }
    }
}

impl ReplicaConfig {
    /// Disables checksum verification (builder style); see
    /// [`verify`](Self::verify).
    pub fn without_verification(mut self) -> Self {
        self.verify = false;
        self
    }

    /// Sets the breaker's open threshold (builder style).
    pub fn with_open_after(mut self, consecutive: u32) -> Self {
        self.open_after = consecutive.max(1);
        self
    }

    /// Sets the breaker cooldown in ticks (builder style).
    pub fn with_cooldown_ticks(mut self, ticks: u64) -> Self {
        self.cooldown_ticks = ticks;
        self
    }

    /// Sets the LRU capacity in pages (builder style).
    pub fn with_cache_pages(mut self, pages: usize) -> Self {
        self.cache_pages = pages;
        self
    }

    /// Enables hedged reads after `ticks` on the simulated I/O clock
    /// (builder style); see [`hedge_after_ticks`](Self::hedge_after_ticks).
    pub fn with_hedge_after_ticks(mut self, ticks: u64) -> Self {
        self.hedge_after_ticks = Some(ticks);
        self
    }
}

/// Circuit-breaker state of one replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: the replica is tried in failover order.
    Closed,
    /// Tripped: the replica is skipped until its cooldown elapses.
    Open,
    /// Cooldown elapsed: the next load is a trial — success closes the
    /// breaker, failure re-opens it.
    HalfOpen,
}

/// Public snapshot of one replica's health.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplicaHealth {
    /// Current breaker state.
    pub state: BreakerState,
    /// Exponentially weighted failure rate in `[0, 1]` (1 = every recent
    /// load failed).
    pub failure_ewma: f64,
    /// Consecutive failed loads (reset by any success).
    pub consecutive_errors: u32,
    /// Page loads this replica served successfully.
    pub pages_served: u64,
    /// Page loads this replica failed (I/O fault or checksum mismatch).
    pub failures: u64,
}

/// Internal mutable health record for one replica.
#[derive(Debug, Clone, Copy)]
struct ReplicaState {
    state: BreakerState,
    /// Tick-clock reading when the breaker last opened.
    opened_at_ticks: u64,
    ewma: f64,
    consecutive: u32,
    pages_served: u64,
    failures: u64,
}

impl ReplicaState {
    fn new() -> Self {
        ReplicaState {
            state: BreakerState::Closed,
            opened_at_ticks: 0,
            ewma: 0.0,
            consecutive: 0,
            pages_served: 0,
            failures: 0,
        }
    }
}

/// One cached page: every attribute's values over the page's cell extent.
#[derive(Debug)]
struct PageBlock {
    r0: usize,
    c0: usize,
    width: usize,
    /// `values[attr][(row - r0) * width + (col - c0)]`.
    values: Vec<Vec<f64>>,
}

#[derive(Debug)]
enum Slot {
    /// Some reader is loading this page; wait instead of re-loading.
    Loading,
    /// Materialized page with its LRU recency stamp.
    Ready {
        block: std::sync::Arc<PageBlock>,
        recency: u64,
    },
}

#[derive(Debug, Default)]
struct CacheState {
    slots: HashMap<usize, Slot>,
    clock: u64,
    /// Bumped by [`ReplicatedSource::advance_epoch`]; loads that straddle
    /// an advance are served but not cached (see
    /// [`crate::source::CachedTileSource`], which shares the protocol).
    epoch: u64,
    /// Smallest `first_dirty_page` across epoch advances — the original
    /// append high-water mark for `appended_pages_seen` accounting.
    appended_from: Option<usize>,
}

/// N-way replicated [`CellSource`] with checksum verification, ordered
/// failover, per-replica circuit breakers, and an LRU page cache.
///
/// Each replica is a full set of per-attribute [`TileStore`]s (the same
/// shape a [`TileSource`](crate::source::TileSource) wraps); replica 0 is
/// the preferred copy. See the module docs for the failover and breaker
/// contract.
///
/// # Examples
///
/// ```
/// use mbir_archive::grid::Grid2;
/// use mbir_archive::tile::TileStore;
/// use mbir_core::replica::{ReplicaConfig, ReplicatedSource};
/// use mbir_core::source::CellSource;
///
/// let grid = Grid2::from_fn(8, 8, |r, c| (r * 8 + c) as f64);
/// let a = vec![TileStore::new(grid.clone(), 4).unwrap()];
/// let b = vec![TileStore::new(grid, 4).unwrap()];
/// let src = ReplicatedSource::new(vec![&a, &b], ReplicaConfig::default()).unwrap();
/// assert_eq!(src.base_cell(0, 1, 5).unwrap(), 13.0);
/// ```
#[derive(Debug)]
pub struct ReplicatedSource<'a> {
    replicas: Vec<&'a [TileStore]>,
    config: ReplicaConfig,
    health: Mutex<Vec<ReplicaState>>,
    cache: Mutex<CacheState>,
    loaded: Condvar,
}

impl<'a> ReplicatedSource<'a> {
    /// Wraps N replica store-sets.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Query`] when no replicas are supplied, a
    /// replica is empty, or the replicas disagree on shape, tile size, or
    /// attribute count — a page index must mean the same region on every
    /// copy.
    pub fn new(replicas: Vec<&'a [TileStore]>, config: ReplicaConfig) -> Result<Self, CoreError> {
        let first = replicas
            .first()
            .ok_or_else(|| CoreError::Query("no replicas supplied".into()))?;
        if first.is_empty() {
            return Err(CoreError::Query("replica has no tile stores".into()));
        }
        if !(0.0..=1.0).contains(&config.ewma_alpha) || config.ewma_alpha == 0.0 {
            return Err(CoreError::Query("ewma_alpha must be in (0, 1]".into()));
        }
        let reference = &first[0];
        for (i, replica) in replicas.iter().enumerate() {
            if replica.len() != first.len() {
                return Err(CoreError::Query(format!(
                    "replica {i} has {} attributes, expected {}",
                    replica.len(),
                    first.len()
                )));
            }
            for store in replica.iter() {
                if store.rows() != reference.rows()
                    || store.cols() != reference.cols()
                    || store.tile_size() != reference.tile_size()
                {
                    return Err(CoreError::Query(format!(
                        "replica {i} disagrees on shape or tile size"
                    )));
                }
            }
        }
        let n = replicas.len();
        Ok(ReplicatedSource {
            replicas,
            config,
            health: Mutex::new(vec![ReplicaState::new(); n]),
            cache: Mutex::new(CacheState::default()),
            loaded: Condvar::new(),
        })
    }

    /// Number of replicas.
    pub fn replica_count(&self) -> usize {
        self.replicas.len()
    }

    /// The active configuration.
    pub fn config(&self) -> ReplicaConfig {
        self.config
    }

    /// Current health snapshot of every replica, in failover order.
    pub fn replica_health(&self) -> Vec<ReplicaHealth> {
        self.health
            .lock()
            .expect("replica health lock")
            .iter()
            .map(|s| ReplicaHealth {
                state: s.state,
                failure_ewma: s.ewma,
                consecutive_errors: s.consecutive,
                pages_served: s.pages_served,
                failures: s.failures,
            })
            .collect()
    }

    /// Current breaker state of every replica, in failover order — the
    /// lightweight companion to [`replica_health`](Self::replica_health)
    /// for harnesses that only steer on Closed/Open/HalfOpen.
    pub fn breaker_states(&self) -> Vec<BreakerState> {
        self.health
            .lock()
            .expect("replica health lock")
            .iter()
            .map(|s| s.state)
            .collect()
    }

    /// Resets every replica's breaker and health record to the initial
    /// Closed state (EWMA, consecutive-error count, and served/failed
    /// tallies included), so one source can be reused across harness
    /// scenarios without carrying breaker history over.
    pub fn reset_breakers(&self) {
        let mut health = self.health.lock().expect("replica health lock");
        for s in health.iter_mut() {
            *s = ReplicaState::new();
        }
    }

    /// Hedged page reads issued so far, summed across replicas (each
    /// hedge is recorded on the backup replica it was issued to).
    pub fn hedged_reads(&self) -> u64 {
        self.replicas.iter().map(|r| r[0].stats().hedges()).sum()
    }

    /// Pages currently quarantined, summed over every store of every
    /// replica. Feeds the per-shard page ledger that
    /// [`merge_shard_summaries`](crate::metrics::merge_shard_summaries)
    /// conserves across a sharded merge.
    pub fn quarantined_pages(&self) -> u64 {
        self.replicas
            .iter()
            .flat_map(|r| r.iter())
            .map(|s| s.quarantined_pages().count() as u64)
            .sum()
    }

    /// Clears the per-page quarantine of every store of every replica,
    /// so future reads attempt the pages again. Invoked through
    /// [`QuarantineScrub`] when a topology change retires this source's
    /// band from its shard: quarantine page ids are only meaningful for
    /// the band layout they were recorded under, and a stale entry would
    /// otherwise suppress reads of healthy data when the stores are
    /// reused. Circuit breakers are a *replica*-level ledger and keep
    /// their state — see [`reset_breakers`](Self::reset_breakers).
    pub fn clear_quarantine(&self) {
        for store in self.replicas.iter().flat_map(|r| r.iter()) {
            store.clear_quarantine();
        }
    }

    /// Publishes a snapshot-epoch advance to the replica cache: cached
    /// pages at or past `first_dirty_page` are dropped and in-flight
    /// loads are demoted to serve-without-caching, exactly like
    /// [`CachedTileSource::advance_epoch`](crate::source::CachedTileSource::advance_epoch).
    /// Returns the number of resident pages dropped; the count is also
    /// recorded on the preferred replica's stats.
    pub fn advance_epoch(&self, first_dirty_page: usize) -> usize {
        let mut state = self.cache.lock().expect("replica cache lock");
        state.epoch += 1;
        state.appended_from = Some(match state.appended_from {
            Some(prev) => prev.min(first_dirty_page),
            None => first_dirty_page,
        });
        let stale: Vec<usize> = state
            .slots
            .iter()
            .filter(|(&page, slot)| page >= first_dirty_page && matches!(slot, Slot::Ready { .. }))
            .map(|(&page, _)| page)
            .collect();
        for &page in &stale {
            state.slots.remove(&page);
        }
        if !stale.is_empty() {
            self.replicas[0][0]
                .stats()
                .record_cache_invalidations(stale.len() as u64);
        }
        stale.len()
    }

    /// Cached pages dropped by epoch advances so far, summed across
    /// replicas. Feeds
    /// [`DegradationSummary::with_append`](crate::metrics::DegradationSummary::with_append)
    /// so append churn shows up on the chaos scorecard next to the
    /// fault-degradation fields.
    pub fn epoch_invalidated_cache_entries(&self) -> u64 {
        self.replicas
            .iter()
            .map(|r| r[0].stats().cache_invalidations())
            .sum()
    }

    /// Page materializations past the original append high-water mark so
    /// far, summed across replicas — the other half of the
    /// [`with_append`](crate::metrics::DegradationSummary::with_append)
    /// fold.
    pub fn appended_pages_seen(&self) -> u64 {
        self.replicas
            .iter()
            .map(|r| r[0].stats().appended_pages_seen())
            .sum()
    }

    /// The breaker cooldown clock: total virtual I/O ticks accrued across
    /// all replicas (each replica's first store carries its group's
    /// shared stats). Deterministic under deterministic fault profiles.
    pub fn now_ticks(&self) -> u64 {
        self.replicas
            .iter()
            .map(|r| r[0].stats().ticks_elapsed())
            .sum()
    }

    /// Whether `replica` may be tried now: Closed and HalfOpen always,
    /// Open only once its cooldown has elapsed (which transitions it to
    /// HalfOpen for a single trial).
    fn replica_eligible(&self, replica: usize, now: u64) -> bool {
        let mut health = self.health.lock().expect("replica health lock");
        let s = &mut health[replica];
        match s.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open => {
                if now.saturating_sub(s.opened_at_ticks) >= self.config.cooldown_ticks {
                    s.state = BreakerState::HalfOpen;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Feeds one load outcome into `replica`'s health and breaker.
    fn record_outcome(&self, replica: usize, ok: bool, now: u64) {
        let mut health = self.health.lock().expect("replica health lock");
        let s = &mut health[replica];
        let alpha = self.config.ewma_alpha;
        s.ewma = (1.0 - alpha) * s.ewma + alpha * if ok { 0.0 } else { 1.0 };
        if ok {
            s.pages_served += 1;
            s.consecutive = 0;
            s.state = BreakerState::Closed;
        } else {
            s.failures += 1;
            s.consecutive += 1;
            let reopen = s.state == BreakerState::HalfOpen;
            if reopen || s.consecutive >= self.config.open_after {
                s.state = BreakerState::Open;
                s.opened_at_ticks = now;
            }
        }
    }

    /// Loads `page` (every attribute) from one replica, verifying each
    /// attribute's checksum when configured.
    fn load_from(&self, replica: usize, page: usize) -> Result<PageBlock, ArchiveError> {
        let stores = self.replicas[replica];
        let (r0, c0, _r1, c1) = stores[0].page_extent(page)?;
        let width = c1 - c0;
        let mut values = Vec::with_capacity(stores.len());
        for store in stores {
            let env = store.read_page_envelope(page)?;
            if self.config.verify && !env.verify() {
                // Detected silent corruption on this replica: count it on
                // the replica's own stats and fail over.
                store.stats().record_corruptions(1);
                return Err(ArchiveError::PageCorrupt { page });
            }
            values.push(env.into_payload().into_iter().map(|(_, v)| v).collect());
        }
        Ok(PageBlock {
            r0,
            c0,
            width,
            values,
        })
    }

    /// Ordered failover: tries each eligible replica in index order,
    /// recording health outcomes, until one serves the page.
    ///
    /// When *every* breaker is open and cooling down there is no eligible
    /// replica left — but refusing service outright would let one dead
    /// page (whose repeated failures opened all the breakers) take down
    /// pages other replicas could still serve. In that case the source
    /// runs a last-resort pass over all replicas in order: a success
    /// closes that replica's breaker immediately, restoring fail-fast
    /// behavior for the rest of the query.
    fn load_page(&self, page: usize) -> Result<PageBlock, ArchiveError> {
        let eligible: Vec<usize> = (0..self.replicas.len())
            .filter(|&r| self.replica_eligible(r, self.now_ticks()))
            .collect();
        let order: Vec<usize> = if eligible.is_empty() {
            (0..self.replicas.len()).collect()
        } else {
            eligible
        };
        let mut last_err: Option<ArchiveError> = None;
        for (attempt, &replica) in order.iter().enumerate() {
            let before = self.now_ticks();
            match self.load_from(replica, page) {
                Ok(block) => {
                    // Hedging races only the *primary* attempt: failover
                    // attempts are already a retry and never hedge.
                    if attempt == 0 {
                        if let Some(delay) = self.config.hedge_after_ticks {
                            let elapsed = self.now_ticks().saturating_sub(before);
                            if elapsed > delay {
                                if let Some(&backup) = order.get(1) {
                                    return Ok(self
                                        .hedge_race(page, replica, block, elapsed, backup, delay));
                                }
                            }
                        }
                    }
                    self.record_outcome(replica, true, self.now_ticks());
                    return Ok(block);
                }
                Err(e) => {
                    self.record_outcome(replica, false, self.now_ticks());
                    last_err = Some(e);
                }
            }
        }
        Err(last_err.unwrap_or(ArchiveError::PageQuarantined { page }))
    }

    /// Resolves a hedged read: the primary's result arrived after the
    /// hedge delay, so the same page was issued to `backup` and the two
    /// race on the simulated timeline — the primary completing at
    /// `primary_ticks`, the hedge at `delay` (its launch time) plus its
    /// own load cost. First success wins; the loser is cancelled, and a
    /// cancelled load leaves *no* health record, so neither replica is
    /// ever credited or charged twice for one page. A hedge that comes
    /// back failing was not cancelled — it completed, and is charged to
    /// the backup like any failed load. Replicas agree bit-for-bit on
    /// verified payloads, so either winner returns identical data.
    fn hedge_race(
        &self,
        page: usize,
        primary: usize,
        primary_block: PageBlock,
        primary_ticks: u64,
        backup: usize,
        delay: u64,
    ) -> PageBlock {
        self.replicas[backup][0].stats().record_hedges(1);
        let before = self.now_ticks();
        match self.load_from(backup, page) {
            Ok(hedge_block) => {
                let hedge_done = delay + self.now_ticks().saturating_sub(before);
                if hedge_done < primary_ticks {
                    // Hedge wins: the primary's slow result is cancelled.
                    self.record_outcome(backup, true, self.now_ticks());
                    hedge_block
                } else {
                    // Primary wins: the hedge is cancelled.
                    self.record_outcome(primary, true, self.now_ticks());
                    primary_block
                }
            }
            Err(_) => {
                // The hedge completed as a failure; the primary's success
                // stands and the backup's failure feeds its breaker. A
                // corrupt hedge payload lands here (`load_from` verifies
                // before returning), so it can never win the race — and
                // `fetch_page` caches only what this function returns, so
                // a corrupt hedge is never cached either.
                self.record_outcome(backup, false, self.now_ticks());
                self.record_outcome(primary, true, self.now_ticks());
                primary_block
            }
        }
    }

    /// Returns the cached page, materializing it through failover on a
    /// miss. Cache hits touch neither replica health nor replica stores.
    fn fetch_page(&self, page: usize) -> Result<std::sync::Arc<PageBlock>, ArchiveError> {
        let stats = self.replicas[0][0].stats();
        let mut state = self.cache.lock().expect("replica cache lock");
        loop {
            match state.slots.get(&page) {
                Some(Slot::Ready { .. }) => {
                    state.clock += 1;
                    let clock = state.clock;
                    let Some(Slot::Ready { block, recency }) = state.slots.get_mut(&page) else {
                        unreachable!("slot was just observed ready");
                    };
                    *recency = clock;
                    let block = std::sync::Arc::clone(block);
                    stats.record_cache_hits(1);
                    return Ok(block);
                }
                Some(Slot::Loading) => {
                    state = self.loaded.wait(state).expect("replica cache lock");
                }
                None => {
                    state.slots.insert(page, Slot::Loading);
                    stats.record_cache_misses(1);
                    if state.appended_from.is_some_and(|from| page >= from) {
                        stats.record_appended_pages_seen(1);
                    }
                    break;
                }
            }
        }
        let epoch_at_load = state.epoch;
        drop(state);
        // Failover runs without the cache lock: replica loads may retry
        // and back off, and readers of other pages must not wait on that.
        let loaded = self.load_page(page);
        let mut state = self.cache.lock().expect("replica cache lock");
        match loaded {
            Ok(block) => {
                let block = std::sync::Arc::new(block);
                if state.epoch == epoch_at_load {
                    state.clock += 1;
                    let recency = state.clock;
                    state.slots.insert(
                        page,
                        Slot::Ready {
                            block: std::sync::Arc::clone(&block),
                            recency,
                        },
                    );
                    self.evict_excess(&mut state);
                } else {
                    // Epoch advanced mid-load: serve without caching.
                    state.slots.remove(&page);
                }
                self.loaded.notify_all();
                Ok(block)
            }
            Err(e) => {
                // Total failures are not cached: a later read re-runs the
                // failover (replicas heal, breakers cool down).
                state.slots.remove(&page);
                self.loaded.notify_all();
                Err(e)
            }
        }
    }

    /// Drops least-recently-used ready pages down to capacity.
    fn evict_excess(&self, state: &mut CacheState) {
        let capacity = self.config.cache_pages.max(1);
        loop {
            let mut ready = 0usize;
            let mut victim: Option<(u64, usize)> = None;
            for (&page, slot) in &state.slots {
                if let Slot::Ready { recency, .. } = slot {
                    ready += 1;
                    let older = match victim {
                        None => true,
                        Some((r, _)) => *recency < r,
                    };
                    if older {
                        victim = Some((*recency, page));
                    }
                }
            }
            if ready <= capacity {
                return;
            }
            let Some((_, page)) = victim else { return };
            state.slots.remove(&page);
        }
    }
}

impl crate::source::QuarantineScrub for ReplicatedSource<'_> {
    fn clear_quarantine(&self) {
        ReplicatedSource::clear_quarantine(self);
    }

    fn quarantined_pages(&self) -> u64 {
        ReplicatedSource::quarantined_pages(self)
    }
}

impl CellSource for ReplicatedSource<'_> {
    fn base_cell(&self, attr: usize, row: usize, col: usize) -> Result<f64, ArchiveError> {
        let reference = &self.replicas[0][0];
        if row >= reference.rows() || col >= reference.cols() {
            return Err(ArchiveError::OutOfBounds {
                row,
                col,
                rows: reference.rows(),
                cols: reference.cols(),
            });
        }
        let page = reference.page_of(row, col);
        let block = self.fetch_page(page)?;
        Ok(block.values[attr][(row - block.r0) * block.width + (col - block.c0)])
    }

    fn page_of(&self, row: usize, col: usize) -> Option<usize> {
        Some(self.replicas[0][0].page_of(row, col))
    }

    fn pages_read(&self) -> u64 {
        self.replicas
            .iter()
            .map(|r| r[0].stats().pages_read())
            .sum()
    }

    fn ticks_elapsed(&self) -> u64 {
        self.now_ticks()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbir_archive::fault::{FaultProfile, ResilienceConfig, RetryPolicy};
    use mbir_archive::grid::Grid2;
    use mbir_archive::stats::AccessStats;

    fn grid(seed: u64) -> Grid2<f64> {
        Grid2::from_fn(8, 8, |r, c| (seed as f64) + (r * 8 + c) as f64)
    }

    /// One replica group: `arity` stores sharing one stats handle.
    fn replica(arity: usize) -> (Vec<TileStore>, AccessStats) {
        let stats = AccessStats::new();
        let stores = (0..arity as u64)
            .map(|i| {
                TileStore::new(grid(i), 4)
                    .unwrap()
                    .with_stats(stats.clone())
            })
            .collect();
        (stores, stats)
    }

    #[test]
    fn validates_replica_agreement() {
        let (a, _) = replica(2);
        let (b, _) = replica(2);
        assert!(ReplicatedSource::new(vec![&a, &b], ReplicaConfig::default()).is_ok());
        assert!(ReplicatedSource::new(vec![], ReplicaConfig::default()).is_err());
        let (short, _) = replica(1);
        assert!(ReplicatedSource::new(vec![&a, &short], ReplicaConfig::default()).is_err());
        let odd = vec![
            TileStore::new(grid(0), 2).unwrap(),
            TileStore::new(grid(1), 2).unwrap(),
        ];
        assert!(ReplicatedSource::new(vec![&a, &odd], ReplicaConfig::default()).is_err());
        assert!(ReplicatedSource::new(
            vec![&a],
            ReplicaConfig {
                ewma_alpha: 0.0,
                ..ReplicaConfig::default()
            }
        )
        .is_err());
    }

    #[test]
    fn epoch_advance_invalidates_and_counts_append_side_reads() {
        let (a, a_stats) = replica(2);
        let (b, _) = replica(2);
        let src = ReplicatedSource::new(vec![&a, &b], ReplicaConfig::default()).unwrap();
        src.base_cell(0, 0, 0).unwrap(); // page 0
        src.base_cell(0, 4, 4).unwrap(); // page 3
        assert_eq!(src.advance_epoch(2), 1, "page 3 dropped, page 0 kept");
        assert_eq!(src.epoch_invalidated_cache_entries(), 1);
        let hits = a_stats.cache_hits();
        src.base_cell(1, 0, 0).unwrap();
        assert_eq!(a_stats.cache_hits(), hits + 1, "page 0 still resident");
        src.base_cell(1, 4, 4).unwrap();
        assert_eq!(src.appended_pages_seen(), 1, "page 3 re-read past the mark");
        // The re-materialized page caches normally again.
        let hits = a_stats.cache_hits();
        src.base_cell(0, 4, 4).unwrap();
        assert_eq!(a_stats.cache_hits(), hits + 1);
    }

    #[test]
    fn healthy_replicas_serve_from_the_first() {
        let (a, a_stats) = replica(2);
        let (b, b_stats) = replica(2);
        let src = ReplicatedSource::new(vec![&a, &b], ReplicaConfig::default()).unwrap();
        assert_eq!(src.base_cell(0, 1, 5).unwrap(), 13.0);
        assert_eq!(src.base_cell(1, 1, 5).unwrap(), 14.0);
        assert_eq!(a_stats.pages_read(), 2, "one per attribute");
        assert_eq!(b_stats.pages_read(), 0, "replica 1 never touched");
        let health = src.replica_health();
        assert_eq!(health[0].state, BreakerState::Closed);
        assert_eq!(health[0].pages_served, 1);
        assert_eq!(health[1].pages_served, 0);
    }

    #[test]
    fn io_fault_fails_over_transparently() {
        let (a, _) = replica(2);
        let a: Vec<TileStore> = a
            .into_iter()
            .map(|s| s.with_faults(FaultProfile::new(0).permanent(0)))
            .collect();
        let (b, _) = replica(2);
        let src = ReplicatedSource::new(vec![&a, &b], ReplicaConfig::default()).unwrap();
        // Page 0 faults on replica 0, is served by replica 1 — no error.
        assert_eq!(src.base_cell(0, 0, 0).unwrap(), 0.0);
        let health = src.replica_health();
        assert_eq!(health[0].failures, 1);
        assert_eq!(health[1].pages_served, 1);
        assert!(health[0].failure_ewma > 0.0);
    }

    #[test]
    fn corruption_fails_over_and_counts_on_the_bad_replica() {
        let (a, a_stats) = replica(2);
        let a: Vec<TileStore> = a
            .into_iter()
            .map(|s| s.with_faults(FaultProfile::new(0).corrupt(0)))
            .collect();
        let (b, _) = replica(2);
        let src = ReplicatedSource::new(vec![&a, &b], ReplicaConfig::default()).unwrap();
        // The corrupted copy is detected and replica 1's clean copy wins.
        assert_eq!(src.base_cell(0, 0, 0).unwrap(), 0.0);
        assert_eq!(a_stats.corruptions(), 1);
        assert_eq!(src.replica_health()[0].failures, 1);
    }

    #[test]
    fn verification_off_delivers_corrupt_bits() {
        use mbir_archive::integrity::corrupt_value;
        let (a, _) = replica(1);
        let a: Vec<TileStore> = a
            .into_iter()
            .map(|s| s.with_faults(FaultProfile::new(0).corrupt(0)))
            .collect();
        let (b, _) = replica(1);
        let src = ReplicatedSource::new(
            vec![&a, &b],
            ReplicaConfig::default().without_verification(),
        )
        .unwrap();
        // Trusting mode: the corrupted first replica is believed.
        assert_eq!(src.base_cell(0, 0, 0).unwrap(), corrupt_value(0.0));
    }

    #[test]
    fn breaker_opens_after_threshold_and_skips_the_replica() {
        let (a, a_stats) = replica(1);
        let a: Vec<TileStore> = a
            .into_iter()
            .map(|s| s.with_faults(FaultProfile::new(0).permanent(0).permanent(1).permanent(2)))
            .collect();
        let (b, _) = replica(1);
        let config = ReplicaConfig::default()
            .with_open_after(2)
            .with_cooldown_ticks(u64::MAX) // never cools down in this test
            .with_cache_pages(1); // tiny cache: every new page hits replicas
        let src = ReplicatedSource::new(vec![&a, &b], config).unwrap();

        // Two failing loads (distinct pages) open replica 0's breaker.
        assert_eq!(src.base_cell(0, 0, 0).unwrap(), 0.0);
        assert_eq!(src.replica_health()[0].state, BreakerState::Closed);
        assert_eq!(src.base_cell(0, 0, 4).unwrap(), 4.0);
        assert_eq!(src.replica_health()[0].state, BreakerState::Open);
        assert_eq!(src.replica_health()[0].consecutive_errors, 2);

        // Open: replica 0 is skipped entirely — no I/O, no new failures.
        let pages_before = a_stats.pages_read();
        assert_eq!(src.base_cell(0, 4, 0).unwrap(), 32.0);
        assert_eq!(src.replica_health()[0].failures, 2);
        assert_eq!(
            a_stats.pages_read(),
            pages_before,
            "open breaker fails fast"
        );
    }

    #[test]
    fn half_open_trial_success_closes_the_breaker() {
        let (a, _) = replica(1);
        // Page 0 fails exactly once; internal retries disabled so the
        // failure surfaces to the replica layer.
        let a: Vec<TileStore> = a
            .into_iter()
            .map(|s| {
                s.with_faults(FaultProfile::new(0).transient(0, 1))
                    .with_resilience(ResilienceConfig::new(RetryPolicy::none(), None))
            })
            .collect();
        let (b, _) = replica(1);
        let config = ReplicaConfig::default()
            .with_open_after(1)
            .with_cooldown_ticks(0) // cooldown elapses immediately
            .with_cache_pages(1);
        let src = ReplicatedSource::new(vec![&a, &b], config).unwrap();

        // First load trips the breaker (threshold 1); replica 1 covers.
        assert_eq!(src.base_cell(0, 0, 0).unwrap(), 0.0);
        assert_eq!(src.replica_health()[0].state, BreakerState::Open);

        // Next load is the HalfOpen trial on a healthy page: it succeeds
        // and the breaker closes.
        assert_eq!(src.base_cell(0, 0, 4).unwrap(), 4.0);
        let health = src.replica_health();
        assert_eq!(health[0].state, BreakerState::Closed);
        assert_eq!(health[0].consecutive_errors, 0);
        assert_eq!(health[0].pages_served, 1);
    }

    #[test]
    fn half_open_trial_failure_reopens_the_breaker() {
        let (a, _) = replica(1);
        let a: Vec<TileStore> = a
            .into_iter()
            .map(|s| s.with_faults(FaultProfile::new(0).permanent(0).permanent(1)))
            .collect();
        let (b, _) = replica(1);
        let config = ReplicaConfig::default()
            .with_open_after(1)
            .with_cooldown_ticks(0)
            .with_cache_pages(1);
        let src = ReplicatedSource::new(vec![&a, &b], config).unwrap();

        assert_eq!(src.base_cell(0, 0, 0).unwrap(), 0.0);
        assert_eq!(src.replica_health()[0].state, BreakerState::Open);

        // HalfOpen trial hits another dead page: breaker re-opens even
        // though a single failure would not normally re-trip from Closed.
        assert_eq!(src.base_cell(0, 0, 4).unwrap(), 4.0);
        let health = src.replica_health();
        assert_eq!(health[0].state, BreakerState::Open);
        assert_eq!(health[0].failures, 2);
    }

    #[test]
    fn all_replicas_failing_surfaces_an_error() {
        let (a, _) = replica(1);
        let a: Vec<TileStore> = a
            .into_iter()
            .map(|s| s.with_faults(FaultProfile::new(0).permanent(0)))
            .collect();
        let (b, _) = replica(1);
        let b: Vec<TileStore> = b
            .into_iter()
            .map(|s| s.with_faults(FaultProfile::new(0).corrupt(0)))
            .collect();
        let src = ReplicatedSource::new(vec![&a, &b], ReplicaConfig::default()).unwrap();
        // Replica 0: I/O fault. Replica 1: corruption. Nothing can serve
        // page 0; the last error (corruption) surfaces.
        assert_eq!(
            src.base_cell(0, 0, 0),
            Err(ArchiveError::PageCorrupt { page: 0 })
        );
        // Healthy pages are unaffected.
        assert_eq!(src.base_cell(0, 4, 4).unwrap(), 36.0);
    }

    #[test]
    fn cache_hits_do_not_touch_replica_health_or_stores() {
        let (a, a_stats) = replica(2);
        let (b, _) = replica(2);
        let src = ReplicatedSource::new(vec![&a, &b], ReplicaConfig::default()).unwrap();
        assert_eq!(src.base_cell(0, 0, 0).unwrap(), 0.0);
        let served = src.replica_health()[0].pages_served;
        let pages = a_stats.pages_read();
        let ticks = src.now_ticks();
        for _ in 0..10 {
            assert_eq!(src.base_cell(1, 1, 1).unwrap(), 10.0);
        }
        assert_eq!(src.replica_health()[0].pages_served, served);
        assert_eq!(a_stats.pages_read(), pages);
        assert_eq!(src.now_ticks(), ticks, "hits are free I/O");
        assert_eq!(a_stats.cache_hits(), 10);
    }

    #[test]
    fn failed_loads_are_not_cached_so_failover_reruns() {
        let (a, _) = replica(1);
        let a: Vec<TileStore> = a
            .into_iter()
            .map(|s| {
                s.with_faults(FaultProfile::new(0).permanent(0))
                    .with_resilience(ResilienceConfig::new(RetryPolicy::none(), None))
            })
            .collect();
        let (b, _) = replica(1);
        let b: Vec<TileStore> = b
            .into_iter()
            .map(|s| s.with_faults(FaultProfile::new(0).transient(0, 1)))
            .collect();
        let src = ReplicatedSource::new(vec![&a, &b], ReplicaConfig::default()).unwrap();
        // Both replicas fail the first time (permanent / transient)...
        assert!(src.base_cell(0, 0, 0).is_err());
        // ...but the failure was not cached and replica 1 healed.
        assert_eq!(src.base_cell(0, 0, 0).unwrap(), 0.0);
    }

    #[test]
    fn concurrent_readers_dedup_page_loads() {
        let (a, a_stats) = replica(2);
        let (b, _) = replica(2);
        let src = ReplicatedSource::new(vec![&a, &b], ReplicaConfig::default()).unwrap();
        std::thread::scope(|scope| {
            for t in 0..8usize {
                let src = &src;
                scope.spawn(move || {
                    let v = src.base_cell(t % 2, t / 4, t % 4).unwrap();
                    assert!(v.is_finite());
                });
            }
        });
        assert_eq!(a_stats.cache_misses(), 1, "one materialization total");
        assert_eq!(a_stats.cache_hits(), 7);
        assert_eq!(src.replica_health()[0].pages_served, 1);
    }

    #[test]
    fn hedge_fires_on_slow_primary_and_faster_backup_wins() {
        let (a, _) = replica(1);
        // 10 extra ticks of injected latency on page 0: the primary load
        // costs 11 ticks, far past the 2-tick hedge delay.
        let a: Vec<TileStore> = a
            .into_iter()
            .map(|s| s.with_faults(FaultProfile::new(0).latency(0, 10)))
            .collect();
        let (b, b_stats) = replica(1);
        let config = ReplicaConfig::default().with_hedge_after_ticks(2);
        let src = ReplicatedSource::new(vec![&a, &b], config).unwrap();
        assert_eq!(src.base_cell(0, 0, 0).unwrap(), 0.0);
        assert_eq!(src.hedged_reads(), 1);
        assert_eq!(b_stats.hedges(), 1, "the hedge is charged to the backup");
        let health = src.replica_health();
        // Hedge completes at 2 + 1 < 11: the backup wins, the primary's
        // in-flight result is cancelled and leaves no health record.
        assert_eq!(health[1].pages_served, 1);
        assert_eq!(health[0].pages_served, 0, "cancelled loser not credited");
        assert_eq!(health[0].failures, 0, "cancelled loser not charged");
    }

    #[test]
    fn slow_primary_still_wins_when_the_hedge_is_slower() {
        let (a, _) = replica(1);
        let a: Vec<TileStore> = a
            .into_iter()
            .map(|s| s.with_faults(FaultProfile::new(0).latency(0, 3)))
            .collect();
        let (b, _) = replica(1);
        let b: Vec<TileStore> = b
            .into_iter()
            .map(|s| s.with_faults(FaultProfile::new(0).latency(0, 10)))
            .collect();
        let config = ReplicaConfig::default().with_hedge_after_ticks(2);
        let src = ReplicatedSource::new(vec![&a, &b], config).unwrap();
        // Primary completes at 4 ticks; the hedge launched at 2 would
        // finish at 2 + 11 = 13. The primary wins, the hedge is cancelled.
        assert_eq!(src.base_cell(0, 0, 0).unwrap(), 0.0);
        assert_eq!(src.hedged_reads(), 1);
        let health = src.replica_health();
        assert_eq!(health[0].pages_served, 1);
        assert_eq!(health[1].pages_served, 0, "cancelled hedge not credited");
        assert_eq!(health[1].failures, 0, "cancelled hedge not charged");
    }

    #[test]
    fn fast_primary_never_hedges() {
        let (a, _) = replica(1);
        let (b, b_stats) = replica(1);
        let config = ReplicaConfig::default().with_hedge_after_ticks(100);
        let src = ReplicatedSource::new(vec![&a, &b], config).unwrap();
        assert_eq!(src.base_cell(0, 0, 0).unwrap(), 0.0);
        assert_eq!(src.hedged_reads(), 0);
        assert_eq!(b_stats.pages_read(), 0, "backup never touched");
        assert_eq!(src.replica_health()[0].pages_served, 1);
    }

    #[test]
    fn failed_hedge_is_charged_and_the_primary_result_stands() {
        let (a, _) = replica(1);
        let a: Vec<TileStore> = a
            .into_iter()
            .map(|s| s.with_faults(FaultProfile::new(0).latency(0, 5)))
            .collect();
        let (b, b_stats) = replica(1);
        // The hedge target serves silent corruption: verification fails,
        // the hedge completes as a failure, and the clean primary result
        // is returned (and is the only thing that can be cached).
        let b: Vec<TileStore> = b
            .into_iter()
            .map(|s| s.with_faults(FaultProfile::new(0).corrupt(0)))
            .collect();
        let config = ReplicaConfig::default().with_hedge_after_ticks(2);
        let src = ReplicatedSource::new(vec![&a, &b], config).unwrap();
        assert_eq!(src.base_cell(0, 0, 0).unwrap(), 0.0, "clean bits win");
        assert_eq!(src.hedged_reads(), 1);
        assert_eq!(b_stats.corruptions(), 1);
        let health = src.replica_health();
        assert_eq!(health[0].pages_served, 1);
        assert_eq!(health[1].failures, 1, "completed hedge failure counts");
        // The cached copy is the verified primary payload.
        assert_eq!(src.base_cell(0, 0, 1).unwrap(), 1.0);
    }

    #[test]
    fn breaker_states_snapshot_and_reset() {
        let (a, _) = replica(1);
        let a: Vec<TileStore> = a
            .into_iter()
            .map(|s| s.with_faults(FaultProfile::new(0).permanent(0).permanent(1)))
            .collect();
        let (b, _) = replica(1);
        let config = ReplicaConfig::default()
            .with_open_after(1)
            .with_cooldown_ticks(u64::MAX)
            .with_cache_pages(1);
        let src = ReplicatedSource::new(vec![&a, &b], config).unwrap();
        assert_eq!(
            src.breaker_states(),
            vec![BreakerState::Closed, BreakerState::Closed]
        );
        // One failing load trips replica 0 (threshold 1).
        assert_eq!(src.base_cell(0, 0, 0).unwrap(), 0.0);
        assert_eq!(
            src.breaker_states(),
            vec![BreakerState::Open, BreakerState::Closed]
        );
        src.reset_breakers();
        assert_eq!(
            src.breaker_states(),
            vec![BreakerState::Closed, BreakerState::Closed]
        );
        let health = src.replica_health();
        assert_eq!(health[0].failures, 0, "reset clears tallies");
        assert_eq!(health[1].pages_served, 0);
        // The reset source is fully reusable: the next failing load walks
        // the same Closed → Open transition from scratch.
        assert_eq!(src.base_cell(0, 0, 4).unwrap(), 4.0);
        assert_eq!(
            src.breaker_states(),
            vec![BreakerState::Open, BreakerState::Closed]
        );
    }
}
