//! Fault-domain sharded scatter-gather retrieval.
//!
//! The paper's "large archives" premise implies data that outgrows one
//! store. This module partitions the grid into contiguous *row-band
//! shards*, each an independent failure domain with its own resident
//! aggregate pyramids and its own [`CellSource`] (typically a
//! [`ReplicatedSource`](crate::replica::ReplicatedSource) with its own
//! circuit breakers, cache, and quarantine). [`scatter_gather_top_k`]
//! fans one top-K query out across the shards through the
//! [`WorkerPool`], and gathers a merged answer that stays *provably
//! sound* no matter which shards degrade, straggle, or die:
//!
//! * **Cross-shard bound propagation.** Every shard descent prunes
//!   against `max(local K-th floor, shared bound)` and publishes its
//!   floors through one [`SharedBound`], exactly like the parallel
//!   engine's workers — a hot shard's floor makes a lagging shard skip
//!   whole subtrees. Because a published floor is the K-th best of a
//!   *subset* of the evaluated cells, it never exceeds the true global
//!   K-th score, so no true top-K cell is ever pruned and the healthy
//!   merged answer is bit-identical to the unsharded resilient engine
//!   at every shard count and thread count (absent exact score ties at
//!   the K-th boundary; DESIGN.md §13).
//! * **Per-shard fault domains.** A shard's lost pages, quarantine, and
//!   corruption degrade only that shard's contribution. The gather step
//!   resolves each shard's lost cells and unrefined frontier against the
//!   deterministic merged K-th floor — the same exclusion rule as the
//!   unsharded engines — so the degradation report is reproducible.
//! * **Straggler mitigation.** [`ScatterPolicy::shard_soft_deadline_ticks`]
//!   imposes a per-shard soft deadline on the shard's own virtual tick
//!   clock. A shard that trips it is re-dispatched once with the soft
//!   deadline lifted (PR 5's hedging discipline: the first clean finish
//!   wins and the losing attempt's output is discarded wholesale — it
//!   leaves no state in the merge).
//! * **Quorum semantics.** [`CompletionPolicy`] decides how many shards
//!   must respond: `RequireAll`, `Quorum(m)`, or `BestEffort`. A shard
//!   that errored, or whose every attempted page read failed, counts as
//!   *failed*; when fewer than the required number respond the query
//!   returns a typed [`InsufficientShards`] error instead of a silently
//!   truncated answer.
//! * **Sound partial results.** A failed shard's whole band is carried
//!   as a degraded candidate bounded by its resident root aggregate (or
//!   its lost cells' parent aggregates), widening the merged score
//!   bounds, and its unaccounted cells lower the merged
//!   [`completeness`](ShardedTopK::completeness) — a degraded shard can
//!   never silently flip the fused top-K.

use crate::batched::CELL_MEMO_WINDOW;
use crate::batched::{cell_key, BoundMemo, CellSlot, MemoGovernor, MemoMap, Selector};
use crate::coarse::CoarseGrid;
use crate::engine::{
    read_base_vector_into, region_bound_into, validate_grid_inputs, EffortReport, QueryScratch,
    Region,
};
use crate::error::CoreError;
use crate::lifecycle::CancelToken;
use crate::parallel::{SharedBound, WorkerPool};
use crate::resilient::{
    checkpoint_stop, region_candidate, BudgetStop, ExecutionBudget, ResilientHit, ScoreBounds,
    WallDeadline,
};
use crate::source::CellSource;
use mbir_archive::error::ArchiveError;
use mbir_archive::extent::CellCoord;
use mbir_archive::shard::TopologyEpoch;
use mbir_index::scan::TopKHeap;
use mbir_index::stats::{sort_desc, ScoredItem};
use mbir_models::linear::LinearModel;
use mbir_progressive::pyramid::AggregatePyramid;
use std::collections::{BTreeSet, BinaryHeap};
use std::error::Error;
use std::fmt;

/// One shard of a [`ShardedArchive`]: a contiguous row band of the global
/// grid, with its own resident attribute pyramids (built over the band)
/// and its own fallible page source.
#[derive(Debug, Clone, Copy)]
pub struct ArchiveShard<'a, S> {
    pyramids: &'a [AggregatePyramid],
    source: &'a S,
    row_offset: usize,
    coarse: Option<&'a CoarseGrid>,
}

impl<'a, S: CellSource> ArchiveShard<'a, S> {
    /// Wraps one shard's band pyramids and source. `row_offset` is the
    /// global row of the band's first local row.
    pub fn new(pyramids: &'a [AggregatePyramid], source: &'a S, row_offset: usize) -> Self {
        ArchiveShard {
            pyramids,
            source,
            row_offset,
            coarse: None,
        }
    }

    /// Attaches a quantized [`CoarseGrid`] built over this shard's own
    /// band pyramids (builder style). The shard's descent then rejects
    /// child regions strictly below its pruning bound from the i8 side
    /// structure before computing any exact bound — prune-only (see
    /// [`crate::coarse`]), so merged answers are unchanged bit-for-bit.
    pub fn with_coarse(mut self, coarse: &'a CoarseGrid) -> Self {
        self.coarse = Some(coarse);
        self
    }

    /// The shard's resident attribute pyramids (one per model attribute).
    pub fn pyramids(&self) -> &'a [AggregatePyramid] {
        self.pyramids
    }

    /// The shard's page source.
    pub fn source(&self) -> &'a S {
        self.source
    }

    /// Global row of the band's first local row.
    pub fn row_offset(&self) -> usize {
        self.row_offset
    }

    /// Band height in rows (0 if the shard has no pyramids).
    pub fn rows(&self) -> usize {
        self.pyramids.first().map_or(0, |p| p.base_shape().0)
    }

    /// Band width in columns (0 if the shard has no pyramids).
    pub fn cols(&self) -> usize {
        self.pyramids.first().map_or(0, |p| p.base_shape().1)
    }

    /// Base cells in the band.
    pub fn cells(&self) -> u64 {
        (self.rows() * self.cols()) as u64
    }
}

/// A grid archive partitioned into contiguous row-band shards, each an
/// independent failure domain. Validated on construction: bands must
/// tile the global row range contiguously and share one column count.
#[derive(Debug)]
pub struct ShardedArchive<'a, S> {
    shards: Vec<ArchiveShard<'a, S>>,
    rows: usize,
    cols: usize,
    epoch: TopologyEpoch,
}

impl<'a, S: CellSource> ShardedArchive<'a, S> {
    /// Builds the sharded archive from per-shard handles.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Query`] when no shards are given, a shard has
    /// no pyramids, column counts differ, or the row bands are not
    /// contiguous from row 0 (topology bugs, not runtime faults).
    pub fn new(shards: Vec<ArchiveShard<'a, S>>) -> Result<Self, CoreError> {
        if shards.is_empty() {
            return Err(CoreError::Query(
                "sharded archive needs at least one shard".into(),
            ));
        }
        let cols = shards[0].cols();
        let mut next_row = 0usize;
        for (i, shard) in shards.iter().enumerate() {
            if shard.pyramids.is_empty() {
                return Err(CoreError::Query(format!(
                    "shard {i} has no attribute pyramids"
                )));
            }
            if shard.cols() != cols {
                return Err(CoreError::Query(format!(
                    "shard {i} has {} columns, shard 0 has {cols}",
                    shard.cols()
                )));
            }
            if shard.row_offset != next_row {
                return Err(CoreError::Query(format!(
                    "shard {i} starts at row {} but the previous band ends at row {next_row}",
                    shard.row_offset
                )));
            }
            next_row += shard.rows();
        }
        Ok(ShardedArchive {
            shards,
            rows: next_row,
            cols,
            epoch: TopologyEpoch::ZERO,
        })
    }

    /// Stamps the archive with the [`TopologyEpoch`] it serves (builder
    /// style). Queries whose [`ScatterPolicy`] pins a different epoch are
    /// rejected with a typed [`EpochMismatch`] before any shard is
    /// touched. A fresh archive serves [`TopologyEpoch::ZERO`].
    pub fn with_epoch(mut self, epoch: TopologyEpoch) -> Self {
        self.epoch = epoch;
        self
    }

    /// The topology epoch this archive serves.
    pub fn epoch(&self) -> TopologyEpoch {
        self.epoch
    }

    /// The per-shard handles, in band order.
    pub fn shards(&self) -> &[ArchiveShard<'a, S>] {
        &self.shards
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Global grid shape `(rows, cols)` covered by the bands.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total base cells across all shards.
    pub fn total_cells(&self) -> u64 {
        (self.rows * self.cols) as u64
    }
}

/// How many shards must respond before a scatter-gather answer is
/// returned at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompletionPolicy {
    /// Every shard must respond; any failed shard fails the query.
    RequireAll,
    /// At least `m` shards must respond (clamped to the shard count).
    Quorum(usize),
    /// Answer with whatever responded, even if every shard failed.
    BestEffort,
}

impl CompletionPolicy {
    /// Responding shards required out of `total` under this policy.
    pub fn required(&self, total: usize) -> usize {
        match self {
            CompletionPolicy::RequireAll => total,
            CompletionPolicy::Quorum(m) => (*m).min(total),
            CompletionPolicy::BestEffort => 0,
        }
    }
}

impl fmt::Display for CompletionPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompletionPolicy::RequireAll => f.write_str("require-all"),
            CompletionPolicy::Quorum(m) => write!(f, "quorum({m})"),
            CompletionPolicy::BestEffort => f.write_str("best-effort"),
        }
    }
}

/// Scatter-gather execution policy: completion quorum plus straggler
/// mitigation knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScatterPolicy {
    /// Shards required for an answer (see [`CompletionPolicy`]).
    pub completion: CompletionPolicy,
    /// Per-shard soft deadline in virtual I/O ticks, measured on each
    /// shard's own tick clock from its attempt start. A shard stopping on
    /// this deadline is a *straggler*; with
    /// [`hedge_stragglers`](Self::hedge_stragglers) it is re-dispatched
    /// once without the soft deadline. `None` disables the soft deadline.
    /// Only engaged when it is tighter than the caller budget's own
    /// [`deadline_ticks`](ExecutionBudget::deadline_ticks).
    pub shard_soft_deadline_ticks: Option<u64>,
    /// Whether shards that trip the soft deadline get one hedged
    /// re-dispatch (first clean finish wins; the loser's output is
    /// discarded wholesale).
    pub hedge_stragglers: bool,
    /// The [`TopologyEpoch`] the query was planned against. When set,
    /// the scatter step rejects an archive serving any other epoch with
    /// a typed [`EpochMismatch`] — the live-resharding fence that keeps
    /// a query from silently spanning two topologies mid-migration.
    /// `None` accepts whatever epoch the archive serves.
    pub epoch_fence: Option<TopologyEpoch>,
}

impl ScatterPolicy {
    /// `RequireAll`, no soft deadline, no hedging, no epoch fence.
    pub fn require_all() -> Self {
        ScatterPolicy {
            completion: CompletionPolicy::RequireAll,
            shard_soft_deadline_ticks: None,
            hedge_stragglers: false,
            epoch_fence: None,
        }
    }

    /// Quorum of `m` responding shards, no soft deadline, no hedging.
    pub fn quorum(m: usize) -> Self {
        ScatterPolicy {
            completion: CompletionPolicy::Quorum(m),
            ..ScatterPolicy::require_all()
        }
    }

    /// Best-effort completion, no soft deadline, no hedging.
    pub fn best_effort() -> Self {
        ScatterPolicy {
            completion: CompletionPolicy::BestEffort,
            ..ScatterPolicy::require_all()
        }
    }

    /// Sets the per-shard soft tick deadline (builder style).
    pub fn with_soft_deadline_ticks(mut self, ticks: u64) -> Self {
        self.shard_soft_deadline_ticks = Some(ticks);
        self
    }

    /// Enables hedged re-dispatch of soft-deadline stragglers (builder
    /// style).
    pub fn with_hedged_stragglers(mut self) -> Self {
        self.hedge_stragglers = true;
        self
    }

    /// Pins the query to a [`TopologyEpoch`] (builder style); the query
    /// fails with [`EpochMismatch`] unless the archive serves exactly
    /// that epoch.
    pub fn at_epoch(mut self, epoch: TopologyEpoch) -> Self {
        self.epoch_fence = Some(epoch);
        self
    }
}

impl Default for ScatterPolicy {
    fn default() -> Self {
        ScatterPolicy::require_all()
    }
}

/// Typed quorum failure: fewer shards responded than the completion
/// policy requires. Carries the full tally so callers can log, retry, or
/// relax the policy — mirroring the structured context of
/// [`Overloaded`](crate::lifecycle::Overloaded).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InsufficientShards {
    /// Shards that produced a usable response (during a dual-read this
    /// includes migrating source shards whose rows were fully covered by
    /// responding destination copies).
    pub responded: usize,
    /// Responding shards the completion policy requires.
    pub required: usize,
    /// Total shards queried.
    pub total: usize,
    /// Indices of the failed shards, ascending. During a dual-read a
    /// shard only lands here when its destination cover failed too.
    pub failed: Vec<usize>,
    /// The topology epoch the tally was taken against, so a caller
    /// retrying around a live migration can tell a quorum loss at the
    /// source epoch from one at the destination epoch.
    pub epoch: TopologyEpoch,
}

impl fmt::Display for InsufficientShards {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "only {} of {} shards responded at epoch {} ({} required); failed shards: {:?}",
            self.responded, self.total, self.epoch, self.required, self.failed
        )
    }
}

impl Error for InsufficientShards {}

/// Typed epoch-fence rejection: the query pinned a [`TopologyEpoch`]
/// that the archive does not serve. Raised before any shard is touched,
/// so a fenced query never mixes answers from two topologies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochMismatch {
    /// The epoch the query pinned via [`ScatterPolicy::at_epoch`].
    pub requested: TopologyEpoch,
    /// The epoch the archive currently serves.
    pub serving: TopologyEpoch,
}

impl fmt::Display for EpochMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "query pinned topology epoch {} but the archive serves {}",
            self.requested, self.serving
        )
    }
}

impl Error for EpochMismatch {}

/// Error from a scatter-gather query: a typed quorum failure, a typed
/// epoch-fence rejection, or a propagated engine error.
#[derive(Debug)]
pub enum ShardError {
    /// Fewer shards responded than the completion policy requires.
    Insufficient(InsufficientShards),
    /// The query pinned a topology epoch the archive does not serve.
    Epoch(EpochMismatch),
    /// An engine error that is not a shard fault (e.g. invalid inputs).
    Core(CoreError),
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::Insufficient(e) => e.fmt(f),
            ShardError::Epoch(e) => e.fmt(f),
            ShardError::Core(e) => e.fmt(f),
        }
    }
}

impl Error for ShardError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ShardError::Insufficient(e) => Some(e),
            ShardError::Epoch(e) => Some(e),
            ShardError::Core(e) => Some(e),
        }
    }
}

impl From<InsufficientShards> for ShardError {
    fn from(e: InsufficientShards) -> Self {
        ShardError::Insufficient(e)
    }
}

impl From<EpochMismatch> for ShardError {
    fn from(e: EpochMismatch) -> Self {
        ShardError::Epoch(e)
    }
}

impl From<CoreError> for ShardError {
    fn from(e: CoreError) -> Self {
        ShardError::Core(e)
    }
}

/// How one shard fared in a scatter-gather run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardOutcome {
    /// Fully resolved its band: no losses, no early stop.
    Complete,
    /// Responded, but with lost pages or an early budget stop.
    Degraded,
    /// Stopped on the per-shard soft deadline (straggler), and no hedge
    /// attempt cleared it.
    TimedOut,
    /// Dual-read only: the shard's rows were served by the responding
    /// destination copies of its migration group instead (its own
    /// attempt's output was discarded wholesale). Counts as responded.
    Covered,
    /// Errored, or every attempted page read failed: contributed no
    /// evaluated data. Counts against the completion quorum.
    Failed,
}

impl fmt::Display for ShardOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ShardOutcome::Complete => "complete",
            ShardOutcome::Degraded => "degraded",
            ShardOutcome::TimedOut => "timed-out",
            ShardOutcome::Covered => "covered",
            ShardOutcome::Failed => "failed",
        })
    }
}

/// Per-shard accounting of one scatter-gather run (the winning attempt's
/// numbers when the shard was hedged).
#[derive(Debug, Clone, PartialEq)]
pub struct ShardReport {
    /// Shard index (band order).
    pub shard: usize,
    /// Outcome classification.
    pub outcome: ShardOutcome,
    /// Fraction of the shard's base cells provably accounted for.
    pub completeness: f64,
    /// Exact candidates this shard contributed to the merge pool.
    pub exact_hits: usize,
    /// Shard-local pages whose failed reads left cells unresolved.
    pub skipped_pages: Vec<usize>,
    /// The shard's own early-stop reason, if any.
    pub budget_stop: Option<BudgetStop>,
    /// Pages read by the winning attempt.
    pub pages_read: u64,
    /// Virtual ticks the winning attempt spent on the shard's clock.
    pub ticks: u64,
    /// Whether a hedged re-dispatch was issued for this shard.
    pub hedged: bool,
    /// Whether the hedge attempt won (its output replaced the primary's).
    pub hedge_won: bool,
    /// Base cells in the shard's band.
    pub cells: u64,
}

/// Compact markdown table over a slice of [`ShardReport`]s, one row per
/// shard — the shared per-shard rendering of the r6 and r9 repro
/// harnesses (and anything else that wants to log a scatter verdict).
///
/// ```
/// # use mbir_core::shard::{ShardOutcome, ShardReport, ShardTable};
/// let reports = vec![ShardReport {
///     shard: 0,
///     outcome: ShardOutcome::Complete,
///     completeness: 1.0,
///     exact_hits: 5,
///     skipped_pages: vec![],
///     budget_stop: None,
///     pages_read: 12,
///     ticks: 48,
///     hedged: false,
///     hedge_won: false,
///     cells: 4096,
/// }];
/// let table = ShardTable::new(&reports).to_string();
/// assert!(table.contains("| 0 | complete | 1.000 | 5 | 0 | 12 | 48 | no |"));
/// ```
pub struct ShardTable<'a>(&'a [ShardReport]);

impl<'a> ShardTable<'a> {
    /// Wraps the reports to render (typically [`ShardedTopK::shards`]).
    pub fn new(reports: &'a [ShardReport]) -> Self {
        ShardTable(reports)
    }
}

impl fmt::Display for ShardTable<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "| shard | outcome | completeness | exact hits | skipped pages | pages read | ticks | hedged |"
        )?;
        writeln!(f, "|---|---|---|---|---|---|---|---|")?;
        for r in self.0 {
            let hedged = if r.hedge_won {
                "won"
            } else if r.hedged {
                "lost"
            } else {
                "no"
            };
            writeln!(
                f,
                "| {} | {} | {:.3} | {} | {} | {} | {} | {} |",
                r.shard,
                r.outcome,
                r.completeness,
                r.exact_hits,
                r.skipped_pages.len(),
                r.pages_read,
                r.ticks,
                hedged,
            )?;
        }
        Ok(())
    }
}

/// Merged scatter-gather result: a sound top-K with per-shard
/// degradation accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedTopK {
    /// Up to K entries in global grid coordinates, ranked like the
    /// unsharded resilient engine (upper bound, then score, then cell).
    pub results: Vec<ResilientHit>,
    /// Work accounting summed over winning shard attempts and the gather
    /// step (`naive_multiply_adds` covers the whole global grid).
    pub effort: EffortReport,
    /// Fraction of all base cells provably accounted for (1.0 = exact).
    pub completeness: f64,
    /// `(shard, shard-local page)` pairs whose failed reads left cells
    /// unresolved, ascending.
    pub skipped_pages: Vec<(usize, usize)>,
    /// The most severe early-stop reason across winning shard attempts
    /// (Cancelled > WallClock > Deadline > PageReads > MultiplyAdds).
    pub budget_stop: Option<BudgetStop>,
    /// Per-shard reports, in band order.
    pub shards: Vec<ShardReport>,
}

impl ShardedTopK {
    /// Whether anything separates this answer from the exact one.
    pub fn is_degraded(&self) -> bool {
        self.completeness < 1.0
            || self.budget_stop.is_some()
            || self.results.iter().any(|h| !h.exact)
    }

    /// Shards that responded (outcome other than
    /// [`ShardOutcome::Failed`]).
    pub fn responded(&self) -> usize {
        self.shards
            .iter()
            .filter(|r| r.outcome != ShardOutcome::Failed)
            .count()
    }
}

/// Output of one shard descent attempt.
struct ShardOut {
    /// Exact items with *global* cell indices (`row * cols + col`).
    items: Vec<ScoredItem>,
    /// Shard-local level-0 regions whose page read failed, with the page.
    lost: Vec<(Region, usize)>,
    /// Shard-local regions an early stop left unrefined.
    leftover: Vec<Region>,
    effort: EffortReport,
    budget_stop: Option<BudgetStop>,
    /// Successful base reads — zero with losses means a dead shard.
    resolved_reads: u64,
}

/// One attempt (primary or hedge) at a shard, with its I/O window.
struct ShardAttempt {
    out: Result<ShardOut, CoreError>,
    pages: u64,
    ticks: u64,
}

/// Read-only context shared by every shard attempt of one wave.
struct ScatterCtx<'a> {
    model: &'a LinearModel,
    k: usize,
    /// Global column count (bands all share it).
    cols: usize,
    /// Effective budget for this wave (soft deadline merged in for the
    /// primary wave, the caller's own budget for the hedge wave).
    budget: ExecutionBudget,
    deadline: &'a WallDeadline,
    cancel: Option<&'a CancelToken>,
    bound: &'a SharedBound,
}

/// One shard's best-first descent: the resilient engine's loop over the
/// shard's own band pyramids and source, pruning against
/// `max(local floor, shared bound)` and publishing floors back.
fn shard_descent<S: CellSource>(
    ctx: &ScatterCtx<'_>,
    shard: &ArchiveShard<'_, S>,
) -> Result<ShardOut, CoreError> {
    let model = ctx.model;
    let n = model.arity() as u64;
    let levels = shard.pyramids[0].levels();
    let mut effort = EffortReport {
        multiply_adds: 0,
        naive_multiply_adds: n * shard.cells(),
    };
    let pages_at_entry = shard.source.pages_read();
    let ticks_at_entry = shard.source.ticks_elapsed();

    let mut scratch = QueryScratch::new();
    let QueryScratch {
        children,
        x,
        ranges,
        frontier,
        qcoeff,
        qmeta,
        ..
    } = &mut scratch;
    frontier.clear();
    if let Some(cg) = shard.coarse {
        cg.prepare_into(model, qcoeff, qmeta)?;
    }
    let mut heap = TopKHeap::new(ctx.k);
    let top = levels - 1;
    let root = region_bound_into(model, shard.pyramids, top, 0, 0, ranges, &mut effort)?;
    frontier.push(Region {
        ub: root,
        level: top,
        row: 0,
        col: 0,
    });

    let mut lost: Vec<(Region, usize)> = Vec::new();
    let mut leftover: Vec<Region> = Vec::new();
    let mut budget_stop: Option<BudgetStop> = None;
    let mut resolved_reads = 0u64;

    while let Some(region) = frontier.pop() {
        let mut floor = ctx.bound.get();
        if let Some(f) = heap.floor() {
            floor = floor.max(f);
        }
        if floor >= region.ub {
            break; // Sound exclusion of this band's remainder.
        }
        let stop = checkpoint_stop(
            ctx.cancel,
            ctx.deadline,
            &ctx.budget,
            effort.multiply_adds,
            shard.source.pages_read().saturating_sub(pages_at_entry),
            shard.source.ticks_elapsed().saturating_sub(ticks_at_entry),
        );
        if let Some(stop) = stop {
            budget_stop = Some(stop);
            leftover.push(region);
            leftover.extend(frontier.drain());
            break;
        }
        if region.level == 0 {
            match read_base_vector_into(shard.source, model.arity(), region.row, region.col, x) {
                Ok(()) => {
                    resolved_reads += 1;
                    effort.multiply_adds += n;
                    heap.offer(ScoredItem {
                        index: (region.row + shard.row_offset) * ctx.cols + region.col,
                        score: model.evaluate(x),
                    });
                    if let Some(f) = heap.floor() {
                        ctx.bound.offer(f);
                    }
                }
                Err(CoreError::Archive(
                    ArchiveError::PageIo { page }
                    | ArchiveError::PageQuarantined { page }
                    | ArchiveError::PageCorrupt { page },
                )) => {
                    let page = shard.source.page_of(region.row, region.col).unwrap_or(page);
                    lost.push((region, page));
                }
                Err(e) => return Err(e),
            }
            continue;
        }
        shard.pyramids[0].children_into(region.level, region.row, region.col, children);
        for child in children.iter() {
            // Coarse pass against the pop-time pruning bound (shared
            // cross-shard bound merged with the local floor — both sound
            // K-th floors of evaluated subsets, both only rising), so a
            // strict `cub < floor` rejection can never touch a true top-K
            // cell. Prune-only: survivors get the exact bound unchanged.
            // No multiply-adds charged — pure i8 side-structure work.
            if let Some(cg) = shard.coarse {
                if floor > f64::NEG_INFINITY
                    && cg.cell_upper_bound(qcoeff, qmeta, region.level - 1, child.row, child.col)
                        < floor
                {
                    continue;
                }
            }
            let ub = region_bound_into(
                model,
                shard.pyramids,
                region.level - 1,
                child.row,
                child.col,
                ranges,
                &mut effort,
            )?;
            frontier.push(Region {
                ub,
                level: region.level - 1,
                row: child.row,
                col: child.col,
            });
        }
    }

    Ok(ShardOut {
        items: heap.into_sorted(),
        lost,
        leftover,
        effort,
        budget_stop,
        resolved_reads,
    })
}

/// Runs one attempt at a shard and measures its I/O window on the
/// shard's own clock.
fn run_attempt<S: CellSource>(ctx: &ScatterCtx<'_>, shard: &ArchiveShard<'_, S>) -> ShardAttempt {
    let pages_at_entry = shard.source.pages_read();
    let ticks_at_entry = shard.source.ticks_elapsed();
    let out = shard_descent(ctx, shard);
    ShardAttempt {
        out,
        pages: shard.source.pages_read().saturating_sub(pages_at_entry),
        ticks: shard.source.ticks_elapsed().saturating_sub(ticks_at_entry),
    }
}

/// Fans `which` shard indices out over the pool (round-robin, at most one
/// worker per shard) and returns `(shard index, attempt)` pairs.
fn scatter_wave<S: CellSource + Sync>(
    ctx: &ScatterCtx<'_>,
    shards: &[ArchiveShard<'_, S>],
    which: &[usize],
    pool: &WorkerPool,
) -> Vec<(usize, ShardAttempt)> {
    let workers = pool.threads().min(which.len()).max(1);
    let mut assignments: Vec<Vec<usize>> = vec![Vec::new(); workers];
    for (slot, &shard_index) in which.iter().enumerate() {
        assignments[slot % workers].push(shard_index);
    }
    pool.run(
        assignments
            .into_iter()
            .map(|own| {
                move |_w: usize| {
                    own.into_iter()
                        .map(|i| (i, run_attempt(ctx, &shards[i])))
                        .collect::<Vec<_>>()
                }
            })
            .collect(),
    )
    .into_iter()
    .flatten()
    .collect()
}

/// Rejects a query whose pinned epoch differs from the one the archive
/// serves — checked before any shard attempt runs.
fn check_epoch_fence<S>(
    policy: &ScatterPolicy,
    archive: &ShardedArchive<'_, S>,
) -> Result<(), ShardError> {
    if let Some(requested) = policy.epoch_fence {
        if requested != archive.epoch {
            return Err(EpochMismatch {
                requested,
                serving: archive.epoch,
            }
            .into());
        }
    }
    Ok(())
}

/// Severity order used to merge per-shard stop reasons into one:
/// Cancelled > WallClock > Deadline > PageReads > MultiplyAdds.
fn stop_severity(stop: BudgetStop) -> u8 {
    match stop {
        BudgetStop::MultiplyAdds => 1,
        BudgetStop::PageReads => 2,
        BudgetStop::Deadline => 3,
        BudgetStop::WallClock => 4,
        BudgetStop::Cancelled => 5,
    }
}

/// Scatter-gather top-K over a sharded archive. See the module docs for
/// the soundness and quorum contract; on a healthy archive with an
/// unlimited budget the merged results are bit-identical to
/// [`resilient_top_k`](crate::resilient::resilient_top_k) over the
/// unsharded grid, at every shard count and thread count.
///
/// The `budget` is enforced *per shard attempt*, each dimension measured
/// against the attempt's own source clocks (wall-clock expiry is shared:
/// one latch stops every shard at its next checkpoint).
///
/// # Errors
///
/// [`ShardError::Core`] for invalid inputs (any shard failing the same
/// validation as the unsharded engines); [`ShardError::Insufficient`]
/// when fewer shards respond than `policy.completion` requires.
pub fn scatter_gather_top_k<S: CellSource + Sync>(
    model: &LinearModel,
    archive: &ShardedArchive<'_, S>,
    k: usize,
    budget: &ExecutionBudget,
    policy: &ScatterPolicy,
    pool: &WorkerPool,
) -> Result<ShardedTopK, ShardError> {
    scatter_gather_inner(model, archive, k, budget, policy, None, pool)
}

/// [`scatter_gather_top_k`] polling a [`CancelToken`] at every shard's
/// page-granular checkpoints. Cancellation stops every shard at its next
/// checkpoint and the merged answer degrades with sound bounds, exactly
/// like the unsharded cancellable engines. A token that is never
/// cancelled changes nothing.
///
/// # Errors
///
/// Same as [`scatter_gather_top_k`].
pub fn scatter_gather_top_k_cancellable<S: CellSource + Sync>(
    model: &LinearModel,
    archive: &ShardedArchive<'_, S>,
    k: usize,
    budget: &ExecutionBudget,
    policy: &ScatterPolicy,
    cancel: &CancelToken,
    pool: &WorkerPool,
) -> Result<ShardedTopK, ShardError> {
    scatter_gather_inner(model, archive, k, budget, policy, Some(cancel), pool)
}

fn scatter_gather_inner<S: CellSource + Sync>(
    model: &LinearModel,
    archive: &ShardedArchive<'_, S>,
    k: usize,
    budget: &ExecutionBudget,
    policy: &ScatterPolicy,
    cancel: Option<&CancelToken>,
    pool: &WorkerPool,
) -> Result<ShardedTopK, ShardError> {
    check_epoch_fence(policy, archive)?;
    let shards = archive.shards();
    for shard in shards {
        validate_grid_inputs(model, shard.pyramids, k).map_err(ShardError::Core)?;
    }
    let n = model.arity() as u64;
    let total_cells = archive.total_cells();
    let cols = archive.shape().1;
    let deadline = WallDeadline::starting_now(budget);
    let bound = SharedBound::new();

    // The soft deadline only engages when it is tighter than the caller's
    // own tick deadline — otherwise a Deadline stop is the caller's
    // ceiling, not a straggler signal.
    let soft_engaged = policy
        .shard_soft_deadline_ticks
        .is_some_and(|soft| budget.deadline_ticks.is_none_or(|d| soft < d));
    let primary_budget = if soft_engaged {
        ExecutionBudget {
            deadline_ticks: policy.shard_soft_deadline_ticks,
            ..*budget
        }
    } else {
        *budget
    };

    let primary_ctx = ScatterCtx {
        model,
        k,
        cols,
        budget: primary_budget,
        deadline: &deadline,
        cancel,
        bound: &bound,
    };
    let all: Vec<usize> = (0..shards.len()).collect();
    let mut attempts: Vec<Option<ShardAttempt>> = (0..shards.len()).map(|_| None).collect();
    for (i, attempt) in scatter_wave(&primary_ctx, shards, &all, pool) {
        attempts[i] = Some(attempt);
    }

    // Hedged re-dispatch of stragglers: one retry without the soft
    // deadline. First clean finish wins; the losing attempt's output is
    // discarded wholesale so it leaves no state in the merge.
    let mut hedged = vec![false; shards.len()];
    let mut hedge_won = vec![false; shards.len()];
    if policy.hedge_stragglers && soft_engaged && !cancel.is_some_and(CancelToken::is_cancelled) {
        let stragglers: Vec<usize> = attempts
            .iter()
            .enumerate()
            .filter(|(_, a)| {
                a.as_ref().is_some_and(|a| match &a.out {
                    Ok(o) => o.budget_stop == Some(BudgetStop::Deadline),
                    Err(_) => false,
                })
            })
            .map(|(i, _)| i)
            .collect();
        if !stragglers.is_empty() {
            let hedge_ctx = ScatterCtx {
                budget: *budget,
                ..primary_ctx
            };
            for (i, hedge) in scatter_wave(&hedge_ctx, shards, &stragglers, pool) {
                hedged[i] = true;
                let primary = attempts[i].as_ref().expect("primary attempt present");
                let wins = match (&primary.out, &hedge.out) {
                    (_, Err(_)) => false,
                    (Err(_), Ok(_)) => true,
                    (Ok(p), Ok(h)) => {
                        h.budget_stop.is_none()
                            || h.lost.len() + h.leftover.len() < p.lost.len() + p.leftover.len()
                    }
                };
                if wins {
                    hedge_won[i] = true;
                    attempts[i] = Some(hedge);
                }
            }
        }
    }

    // Quorum check before any merging: a failed shard is one that errored
    // or whose every attempted page read failed (no evaluated data).
    let failed: Vec<usize> = attempts
        .iter()
        .enumerate()
        .filter(|(_, a)| {
            let attempt = a.as_ref().expect("attempt present");
            match &attempt.out {
                Err(_) => true,
                Ok(o) => o.resolved_reads == 0 && !o.lost.is_empty(),
            }
        })
        .map(|(i, _)| i)
        .collect();
    let responded = shards.len() - failed.len();
    let required = policy.completion.required(shards.len());
    if responded < required {
        return Err(InsufficientShards {
            responded,
            required,
            total: shards.len(),
            failed,
            epoch: archive.epoch,
        }
        .into());
    }

    // Degraded candidates cross pyramid boundaries: a band pyramid sums
    // its aggregates in a different floating-point order than a global
    // evaluation of the same cells, so a mathematically sound bound can
    // round a few ulps inside the true supremum. The merge widens every
    // inexact candidate by a relative guard so "the true score lies
    // inside the reported bounds" holds in floating point too. Exact hits
    // are never widened, and exclusion still uses the raw bounds.
    let widen = |bounds: ScoreBounds| -> ScoreBounds {
        let pad = bounds.hi.abs().max(bounds.lo.abs()).max(1.0) * f64::EPSILON * 16.0;
        ScoreBounds {
            lo: bounds.lo - pad,
            hi: bounds.hi + pad,
        }
    };

    // Gather: merge exact items with the shared rank order, derive the
    // deterministic global K-th floor, then resolve every shard's lost
    // and leftover regions against it.
    let mut effort = EffortReport {
        multiply_adds: 0,
        naive_multiply_adds: n * total_cells,
    };
    let mut items: Vec<ScoredItem> = Vec::new();
    for attempt in attempts.iter().flatten() {
        if let Ok(o) = &attempt.out {
            effort.multiply_adds += o.effort.multiply_adds;
            items.extend(o.items.iter().copied());
        }
    }
    sort_desc(&mut items);
    items.truncate(k);
    // Only a full merged heap yields a sound exclusion floor.
    let floor = if items.len() == k {
        items.last().map(|i| i.score)
    } else {
        None
    };
    let excluded = |hi: f64| floor.is_some_and(|f| f >= hi);

    let mut hits: Vec<ResilientHit> = items
        .into_iter()
        .map(|item| ResilientHit {
            cell: CellCoord::new(item.index / cols, item.index % cols),
            level: 0,
            score: item.score,
            bounds: ScoreBounds::exact(item.score),
            exact: true,
        })
        .collect();

    let mut unresolved = 0u64;
    let mut skipped: Vec<(usize, usize)> = Vec::new();
    let mut reports: Vec<ShardReport> = Vec::with_capacity(shards.len());
    let mut merged_stop: Option<BudgetStop> = None;

    for (i, shard) in shards.iter().enumerate() {
        let attempt = attempts[i].as_ref().expect("attempt present");
        let shard_cells = shard.cells();
        let mut shard_unresolved = 0u64;
        let mut shard_skipped: BTreeSet<usize> = BTreeSet::new();
        let mut exact_hits = 0usize;
        let mut shard_stop = None;
        match &attempt.out {
            Ok(o) => {
                exact_hits = o.items.len();
                shard_stop = o.budget_stop;
                for region in &o.leftover {
                    let (mut candidate, count) = region_candidate(
                        model,
                        shard.pyramids,
                        region.level,
                        region.row,
                        region.col,
                        &mut effort,
                    )
                    .map_err(ShardError::Core)?;
                    candidate.cell =
                        CellCoord::new(candidate.cell.row + shard.row_offset, candidate.cell.col);
                    if excluded(candidate.bounds.hi) {
                        continue; // Provably outside the top-K: resolved.
                    }
                    shard_unresolved += count;
                    candidate.bounds = widen(candidate.bounds);
                    hits.push(candidate);
                }
                let parent_level = 1.min(shard.pyramids[0].levels() - 1);
                for (region, page) in &o.lost {
                    if excluded(region.ub) {
                        continue; // Resolved by the deterministic bound.
                    }
                    shard_skipped.insert(*page);
                    let (mut candidate, _) = region_candidate(
                        model,
                        shard.pyramids,
                        parent_level,
                        region.row >> parent_level,
                        region.col >> parent_level,
                        &mut effort,
                    )
                    .map_err(ShardError::Core)?;
                    candidate.cell = CellCoord::new(region.row + shard.row_offset, region.col);
                    candidate.level = 0;
                    shard_unresolved += 1;
                    candidate.bounds = widen(candidate.bounds);
                    hits.push(candidate);
                }
            }
            Err(_) => {
                // The whole band degrades to its resident root aggregate:
                // the deepest bound that depends on no page data. If even
                // the root bound falls under the merged floor, the band
                // is provably irrelevant and nothing was lost.
                let top = shard.pyramids[0].levels() - 1;
                let (mut candidate, count) =
                    region_candidate(model, shard.pyramids, top, 0, 0, &mut effort)
                        .map_err(ShardError::Core)?;
                candidate.cell = CellCoord::new(shard.row_offset, 0);
                if !excluded(candidate.bounds.hi) {
                    shard_unresolved += count;
                    candidate.bounds = widen(candidate.bounds);
                    hits.push(candidate);
                }
            }
        }
        if let Some(stop) = shard_stop {
            if merged_stop.is_none_or(|m| stop_severity(stop) > stop_severity(m)) {
                merged_stop = Some(stop);
            }
        }
        let outcome = if failed.contains(&i) {
            ShardOutcome::Failed
        } else if soft_engaged && !hedge_won[i] && shard_stop == Some(BudgetStop::Deadline) {
            ShardOutcome::TimedOut
        } else if shard_unresolved > 0 || shard_stop.is_some() {
            ShardOutcome::Degraded
        } else {
            ShardOutcome::Complete
        };
        unresolved += shard_unresolved;
        skipped.extend(shard_skipped.iter().map(|&p| (i, p)));
        reports.push(ShardReport {
            shard: i,
            outcome,
            completeness: 1.0 - shard_unresolved as f64 / shard_cells as f64,
            exact_hits,
            skipped_pages: shard_skipped.into_iter().collect(),
            budget_stop: shard_stop,
            pages_read: attempt.pages,
            ticks: attempt.ticks,
            hedged: hedged[i],
            hedge_won: hedge_won[i],
            cells: shard_cells,
        });
    }

    // Rank by upper bound first — the shared final comparator of the
    // resilient engines: exact hits have hi == score, and truncation can
    // never drop the only candidate that might still be the true winner.
    hits.sort_by(|a, b| {
        b.bounds
            .hi
            .total_cmp(&a.bounds.hi)
            .then_with(|| b.score.total_cmp(&a.score))
            .then_with(|| a.cell.cmp(&b.cell))
    });
    hits.truncate(k);

    Ok(ShardedTopK {
        results: hits,
        effort,
        completeness: 1.0 - unresolved as f64 / total_cells as f64,
        skipped_pages: skipped,
        budget_stop: merged_stop,
        shards: reports,
    })
}

/// One migration group of a dual-read: the source shards whose rows are
/// migrating, and the destination shards (band copies) covering exactly
/// the same contiguous row range. Produced by
/// [`ReshardCoordinator::dual_read_groups`](crate::reshard::ReshardCoordinator::dual_read_groups);
/// the row-coverage invariant is validated again by the dual-read
/// scatter before any shard runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DualReadGroup {
    /// Indices into the source archive's shards, in band order.
    pub source_shards: Vec<usize>,
    /// Indices into the dual-read destination slice, in band order.
    pub dest_shards: Vec<usize>,
}

/// Validates the dual-read group structure: indices in range and used at
/// most once, every destination shard claimed by exactly one group, and
/// each group's source rows covering exactly its destination rows.
fn validate_dual_groups<S: CellSource, D: CellSource>(
    archive: &ShardedArchive<'_, S>,
    dest: &[ArchiveShard<'_, D>],
    groups: &[DualReadGroup],
) -> Result<(), ShardError> {
    let invalid = |msg: String| ShardError::Core(CoreError::Query(msg));
    let shards = archive.shards();
    let mut source_used = vec![false; shards.len()];
    let mut dest_used = vec![false; dest.len()];
    for (g, group) in groups.iter().enumerate() {
        if group.source_shards.is_empty() || group.dest_shards.is_empty() {
            return Err(invalid(format!("dual-read group {g} is one-sided")));
        }
        let range =
            |offset: usize, rows: usize, lo: &mut usize, hi: &mut usize, sum: &mut usize| {
                *lo = (*lo).min(offset);
                *hi = (*hi).max(offset + rows);
                *sum += rows;
            };
        let (mut s_lo, mut s_hi, mut s_sum) = (usize::MAX, 0usize, 0usize);
        for &s in &group.source_shards {
            let shard = shards
                .get(s)
                .ok_or_else(|| invalid(format!("group {g}: source shard {s} out of range")))?;
            if std::mem::replace(&mut source_used[s], true) {
                return Err(invalid(format!("source shard {s} appears in two groups")));
            }
            range(
                shard.row_offset,
                shard.rows(),
                &mut s_lo,
                &mut s_hi,
                &mut s_sum,
            );
        }
        let (mut d_lo, mut d_hi, mut d_sum) = (usize::MAX, 0usize, 0usize);
        for &d in &group.dest_shards {
            let shard = dest
                .get(d)
                .ok_or_else(|| invalid(format!("group {g}: dest shard {d} out of range")))?;
            if std::mem::replace(&mut dest_used[d], true) {
                return Err(invalid(format!("dest shard {d} appears in two groups")));
            }
            range(
                shard.row_offset,
                shard.rows(),
                &mut d_lo,
                &mut d_hi,
                &mut d_sum,
            );
        }
        if s_sum != s_hi - s_lo || d_sum != d_hi - d_lo {
            return Err(invalid(format!("dual-read group {g} has a row gap")));
        }
        if (s_lo, s_hi) != (d_lo, d_hi) {
            return Err(invalid(format!(
                "dual-read group {g} covers source rows {s_lo}..{s_hi} but dest rows {d_lo}..{d_hi}"
            )));
        }
    }
    if let Some(d) = dest_used.iter().position(|used| !used) {
        return Err(invalid(format!("dest shard {d} belongs to no group")));
    }
    Ok(())
}

/// Dual-read scatter-gather: [`scatter_gather_top_k`] over the *source*
/// topology, additionally fanning out to the destination band copies of
/// an in-flight migration (state `DualRead` of
/// [`crate::reshard::ReshardCoordinator`]). Per migration group, the
/// merge uses the source shards' contributions — so a healthy dual-read
/// stays bit-identical to the plain pre-migration scatter — unless a
/// migrating source shard fails *and* every destination copy of its
/// group responded, in which case the whole group's rows are served from
/// the destination side instead. Group substitution is wholesale (the
/// suppressed source attempts leave no state in the merge, like a
/// hedging loser), and a group's destination rows equal its source rows,
/// so no cell is merged twice and every lost or unrefined destination
/// region degrades through the same ulp-guarded candidate machinery as
/// any other shard: bounds stay sound no matter which side served a row.
///
/// Quorum accounting is epoch-aware: a migrating source shard served by
/// its destination cover counts as responded, and only uncovered
/// failures appear in [`InsufficientShards::failed`], stamped with the
/// source epoch.
///
/// # Errors
///
/// [`ShardError::Core`] for invalid inputs or malformed groups;
/// [`ShardError::Epoch`] when `policy` pins an epoch the archive does
/// not serve; [`ShardError::Insufficient`] on a quorum miss after
/// destination covers are credited.
#[allow(clippy::too_many_arguments)]
pub fn scatter_gather_top_k_dual<S: CellSource + Sync, D: CellSource + Sync>(
    model: &LinearModel,
    archive: &ShardedArchive<'_, S>,
    dest: &[ArchiveShard<'_, D>],
    groups: &[DualReadGroup],
    k: usize,
    budget: &ExecutionBudget,
    policy: &ScatterPolicy,
    pool: &WorkerPool,
) -> Result<ShardedTopK, ShardError> {
    scatter_gather_dual_inner(model, archive, dest, groups, k, budget, policy, None, pool)
}

/// [`scatter_gather_top_k_dual`] polling a [`CancelToken`] at every
/// attempt's page-granular checkpoints — source and destination alike —
/// so a query cancelled mid-migration degrades with sound bounds on
/// both sides.
///
/// # Errors
///
/// Same as [`scatter_gather_top_k_dual`].
#[allow(clippy::too_many_arguments)]
pub fn scatter_gather_top_k_dual_cancellable<S: CellSource + Sync, D: CellSource + Sync>(
    model: &LinearModel,
    archive: &ShardedArchive<'_, S>,
    dest: &[ArchiveShard<'_, D>],
    groups: &[DualReadGroup],
    k: usize,
    budget: &ExecutionBudget,
    policy: &ScatterPolicy,
    cancel: &CancelToken,
    pool: &WorkerPool,
) -> Result<ShardedTopK, ShardError> {
    scatter_gather_dual_inner(
        model,
        archive,
        dest,
        groups,
        k,
        budget,
        policy,
        Some(cancel),
        pool,
    )
}

#[allow(clippy::too_many_arguments)]
fn scatter_gather_dual_inner<S: CellSource + Sync, D: CellSource + Sync>(
    model: &LinearModel,
    archive: &ShardedArchive<'_, S>,
    dest: &[ArchiveShard<'_, D>],
    groups: &[DualReadGroup],
    k: usize,
    budget: &ExecutionBudget,
    policy: &ScatterPolicy,
    cancel: Option<&CancelToken>,
    pool: &WorkerPool,
) -> Result<ShardedTopK, ShardError> {
    check_epoch_fence(policy, archive)?;
    let shards = archive.shards();
    for shard in shards {
        validate_grid_inputs(model, shard.pyramids, k).map_err(ShardError::Core)?;
    }
    for shard in dest {
        validate_grid_inputs(model, shard.pyramids, k).map_err(ShardError::Core)?;
        if shard.cols() != archive.shape().1 {
            return Err(ShardError::Core(CoreError::Query(format!(
                "dest shard has {} columns, the archive has {}",
                shard.cols(),
                archive.shape().1
            ))));
        }
    }
    validate_dual_groups(archive, dest, groups)?;

    let n = model.arity() as u64;
    let total_cells = archive.total_cells();
    let cols = archive.shape().1;
    let deadline = WallDeadline::starting_now(budget);
    let bound = SharedBound::new();

    let soft_engaged = policy
        .shard_soft_deadline_ticks
        .is_some_and(|soft| budget.deadline_ticks.is_none_or(|d| soft < d));
    let primary_budget = if soft_engaged {
        ExecutionBudget {
            deadline_ticks: policy.shard_soft_deadline_ticks,
            ..*budget
        }
    } else {
        *budget
    };

    // Source wave + hedged straggler re-dispatch: exactly the plain
    // scatter's discipline.
    let primary_ctx = ScatterCtx {
        model,
        k,
        cols,
        budget: primary_budget,
        deadline: &deadline,
        cancel,
        bound: &bound,
    };
    let all: Vec<usize> = (0..shards.len()).collect();
    let mut attempts: Vec<Option<ShardAttempt>> = (0..shards.len()).map(|_| None).collect();
    for (i, attempt) in scatter_wave(&primary_ctx, shards, &all, pool) {
        attempts[i] = Some(attempt);
    }
    let mut hedged = vec![false; shards.len()];
    let mut hedge_won = vec![false; shards.len()];
    if policy.hedge_stragglers && soft_engaged && !cancel.is_some_and(CancelToken::is_cancelled) {
        let stragglers: Vec<usize> = attempts
            .iter()
            .enumerate()
            .filter(|(_, a)| {
                a.as_ref().is_some_and(|a| match &a.out {
                    Ok(o) => o.budget_stop == Some(BudgetStop::Deadline),
                    Err(_) => false,
                })
            })
            .map(|(i, _)| i)
            .collect();
        if !stragglers.is_empty() {
            let hedge_ctx = ScatterCtx {
                budget: *budget,
                ..primary_ctx
            };
            for (i, hedge) in scatter_wave(&hedge_ctx, shards, &stragglers, pool) {
                hedged[i] = true;
                let primary = attempts[i].as_ref().expect("primary attempt present");
                let wins = match (&primary.out, &hedge.out) {
                    (_, Err(_)) => false,
                    (Err(_), Ok(_)) => true,
                    (Ok(p), Ok(h)) => {
                        h.budget_stop.is_none()
                            || h.lost.len() + h.leftover.len() < p.lost.len() + p.leftover.len()
                    }
                };
                if wins {
                    hedge_won[i] = true;
                    attempts[i] = Some(hedge);
                }
            }
        }
    }

    // Destination wave: after the source wave, against the caller's own
    // budget (no soft deadline — the copies are fresh and local), with
    // the same shared bound. The mature cross-shard floors make most
    // healthy destination descents exclude their band near the root, so
    // the dual fan-out costs little extra when nothing is failing.
    let dest_ctx = ScatterCtx {
        model,
        k,
        cols,
        budget: *budget,
        deadline: &deadline,
        cancel,
        bound: &bound,
    };
    let all_dest: Vec<usize> = (0..dest.len()).collect();
    let mut dest_attempts: Vec<Option<ShardAttempt>> = (0..dest.len()).map(|_| None).collect();
    for (i, attempt) in scatter_wave(&dest_ctx, dest, &all_dest, pool) {
        dest_attempts[i] = Some(attempt);
    }

    // Per-group substitution verdicts.
    let attempt_failed = |a: &ShardAttempt| match &a.out {
        Err(_) => true,
        Ok(o) => o.resolved_reads == 0 && !o.lost.is_empty(),
    };
    let source_failed: Vec<bool> = attempts
        .iter()
        .map(|a| attempt_failed(a.as_ref().expect("attempt present")))
        .collect();
    let dest_failed: Vec<bool> = dest_attempts
        .iter()
        .map(|a| attempt_failed(a.as_ref().expect("attempt present")))
        .collect();
    let mut covered_group = vec![false; groups.len()];
    let mut suppressed = vec![false; shards.len()];
    let mut group_of_source: Vec<Option<usize>> = vec![None; shards.len()];
    for (g, group) in groups.iter().enumerate() {
        for &s in &group.source_shards {
            group_of_source[s] = Some(g);
        }
        let any_source_failed = group.source_shards.iter().any(|&s| source_failed[s]);
        let all_dest_ok = group.dest_shards.iter().all(|&d| !dest_failed[d]);
        if any_source_failed && all_dest_ok {
            covered_group[g] = true;
            for &s in &group.source_shards {
                suppressed[s] = true;
            }
        }
    }

    // Epoch-aware quorum: a migrating shard whose rows the destination
    // copies fully served counts as responded; only uncovered failures
    // count against the policy.
    let failed: Vec<usize> = (0..shards.len())
        .filter(|&i| source_failed[i] && !suppressed[i])
        .collect();
    let responded = shards.len() - failed.len();
    let required = policy.completion.required(shards.len());
    if responded < required {
        return Err(InsufficientShards {
            responded,
            required,
            total: shards.len(),
            failed,
            epoch: archive.epoch,
        }
        .into());
    }

    let widen = |bounds: ScoreBounds| -> ScoreBounds {
        let pad = bounds.hi.abs().max(bounds.lo.abs()).max(1.0) * f64::EPSILON * 16.0;
        ScoreBounds {
            lo: bounds.lo - pad,
            hi: bounds.hi + pad,
        }
    };

    // Merge pool: every non-suppressed source contribution plus the
    // destination contributions of covered groups. A group's rows come
    // from exactly one side, so no cell can be merged twice.
    let mut effort = EffortReport {
        multiply_adds: 0,
        naive_multiply_adds: n * total_cells,
    };
    let mut items: Vec<ScoredItem> = Vec::new();
    for (i, attempt) in attempts.iter().enumerate() {
        if suppressed[i] {
            continue;
        }
        if let Ok(o) = &attempt.as_ref().expect("attempt present").out {
            effort.multiply_adds += o.effort.multiply_adds;
            items.extend(o.items.iter().copied());
        }
    }
    for (g, group) in groups.iter().enumerate() {
        if !covered_group[g] {
            continue;
        }
        for &d in &group.dest_shards {
            if let Ok(o) = &dest_attempts[d].as_ref().expect("attempt present").out {
                effort.multiply_adds += o.effort.multiply_adds;
                items.extend(o.items.iter().copied());
            }
        }
    }
    sort_desc(&mut items);
    items.truncate(k);
    let floor = if items.len() == k {
        items.last().map(|i| i.score)
    } else {
        None
    };
    let excluded = |hi: f64| floor.is_some_and(|f| f >= hi);

    let mut hits: Vec<ResilientHit> = items
        .into_iter()
        .map(|item| ResilientHit {
            cell: CellCoord::new(item.index / cols, item.index % cols),
            level: 0,
            score: item.score,
            bounds: ScoreBounds::exact(item.score),
            exact: true,
        })
        .collect();

    let mut unresolved = 0u64;
    let mut skipped: Vec<(usize, usize)> = Vec::new();
    let mut merged_stop: Option<BudgetStop> = None;
    let bump_stop = |merged: &mut Option<BudgetStop>, stop: Option<BudgetStop>| {
        if let Some(stop) = stop {
            if merged.is_none_or(|m| stop_severity(stop) > stop_severity(m)) {
                *merged = Some(stop);
            }
        }
    };

    // Destination-side accounting, one ledger per covered group; its
    // losses and leftovers degrade through the same candidate machinery
    // as any shard's. During cover, skipped page ids are
    // destination-local (the source pages were never the ones read).
    struct GroupLedger {
        unresolved: u64,
        skipped: BTreeSet<usize>,
        exact_hits: usize,
        pages: u64,
        ticks: u64,
        stop: Option<BudgetStop>,
        cells: u64,
    }
    let mut ledgers: Vec<Option<GroupLedger>> = (0..groups.len()).map(|_| None).collect();
    for (g, group) in groups.iter().enumerate() {
        if !covered_group[g] {
            continue;
        }
        let mut ledger = GroupLedger {
            unresolved: 0,
            skipped: BTreeSet::new(),
            exact_hits: 0,
            pages: 0,
            ticks: 0,
            stop: None,
            cells: group.source_shards.iter().map(|&s| shards[s].cells()).sum(),
        };
        for &d in &group.dest_shards {
            let attempt = dest_attempts[d].as_ref().expect("attempt present");
            ledger.pages += attempt.pages;
            ledger.ticks += attempt.ticks;
            let shard = &dest[d];
            let Ok(o) = &attempt.out else {
                continue; // Covered groups have no errored dest attempts.
            };
            ledger.exact_hits += o.items.len();
            bump_stop(&mut ledger.stop, o.budget_stop);
            for region in &o.leftover {
                let (mut candidate, count) = region_candidate(
                    model,
                    shard.pyramids,
                    region.level,
                    region.row,
                    region.col,
                    &mut effort,
                )
                .map_err(ShardError::Core)?;
                candidate.cell =
                    CellCoord::new(candidate.cell.row + shard.row_offset, candidate.cell.col);
                if excluded(candidate.bounds.hi) {
                    continue;
                }
                ledger.unresolved += count;
                candidate.bounds = widen(candidate.bounds);
                hits.push(candidate);
            }
            let parent_level = 1.min(shard.pyramids[0].levels() - 1);
            for (region, page) in &o.lost {
                if excluded(region.ub) {
                    continue;
                }
                ledger.skipped.insert(*page);
                let (mut candidate, _) = region_candidate(
                    model,
                    shard.pyramids,
                    parent_level,
                    region.row >> parent_level,
                    region.col >> parent_level,
                    &mut effort,
                )
                .map_err(ShardError::Core)?;
                candidate.cell = CellCoord::new(region.row + shard.row_offset, region.col);
                candidate.level = 0;
                ledger.unresolved += 1;
                candidate.bounds = widen(candidate.bounds);
                hits.push(candidate);
            }
        }
        unresolved += ledger.unresolved;
        bump_stop(&mut merged_stop, ledger.stop);
        ledgers[g] = Some(ledger);
    }

    let mut reports: Vec<ShardReport> = Vec::with_capacity(shards.len());
    for (i, shard) in shards.iter().enumerate() {
        let attempt = attempts[i].as_ref().expect("attempt present");
        let shard_cells = shard.cells();
        if suppressed[i] {
            // The group ledger lands on the group's first band; every
            // member shares the group's completeness (cell-weighted, the
            // per-shard fractions sum back to the group's).
            let g = group_of_source[i].expect("suppressed shard has a group");
            let group = &groups[g];
            let ledger = ledgers[g].as_ref().expect("covered group has a ledger");
            let first = group.source_shards.iter().min() == Some(&i);
            if first {
                skipped.extend(ledger.skipped.iter().map(|&p| (i, p)));
            }
            reports.push(ShardReport {
                shard: i,
                outcome: ShardOutcome::Covered,
                completeness: 1.0 - ledger.unresolved as f64 / ledger.cells as f64,
                exact_hits: if first { ledger.exact_hits } else { 0 },
                skipped_pages: if first {
                    ledger.skipped.iter().copied().collect()
                } else {
                    Vec::new()
                },
                budget_stop: if first { ledger.stop } else { None },
                pages_read: if first { ledger.pages } else { 0 },
                ticks: if first { ledger.ticks } else { 0 },
                hedged: hedged[i],
                hedge_won: hedge_won[i],
                cells: shard_cells,
            });
            continue;
        }
        let mut shard_unresolved = 0u64;
        let mut shard_skipped: BTreeSet<usize> = BTreeSet::new();
        let mut exact_hits = 0usize;
        let mut shard_stop = None;
        match &attempt.out {
            Ok(o) => {
                exact_hits = o.items.len();
                shard_stop = o.budget_stop;
                for region in &o.leftover {
                    let (mut candidate, count) = region_candidate(
                        model,
                        shard.pyramids,
                        region.level,
                        region.row,
                        region.col,
                        &mut effort,
                    )
                    .map_err(ShardError::Core)?;
                    candidate.cell =
                        CellCoord::new(candidate.cell.row + shard.row_offset, candidate.cell.col);
                    if excluded(candidate.bounds.hi) {
                        continue;
                    }
                    shard_unresolved += count;
                    candidate.bounds = widen(candidate.bounds);
                    hits.push(candidate);
                }
                let parent_level = 1.min(shard.pyramids[0].levels() - 1);
                for (region, page) in &o.lost {
                    if excluded(region.ub) {
                        continue;
                    }
                    shard_skipped.insert(*page);
                    let (mut candidate, _) = region_candidate(
                        model,
                        shard.pyramids,
                        parent_level,
                        region.row >> parent_level,
                        region.col >> parent_level,
                        &mut effort,
                    )
                    .map_err(ShardError::Core)?;
                    candidate.cell = CellCoord::new(region.row + shard.row_offset, region.col);
                    candidate.level = 0;
                    shard_unresolved += 1;
                    candidate.bounds = widen(candidate.bounds);
                    hits.push(candidate);
                }
            }
            Err(_) => {
                let top = shard.pyramids[0].levels() - 1;
                let (mut candidate, count) =
                    region_candidate(model, shard.pyramids, top, 0, 0, &mut effort)
                        .map_err(ShardError::Core)?;
                candidate.cell = CellCoord::new(shard.row_offset, 0);
                if !excluded(candidate.bounds.hi) {
                    shard_unresolved += count;
                    candidate.bounds = widen(candidate.bounds);
                    hits.push(candidate);
                }
            }
        }
        bump_stop(&mut merged_stop, shard_stop);
        let outcome = if source_failed[i] {
            ShardOutcome::Failed
        } else if soft_engaged && !hedge_won[i] && shard_stop == Some(BudgetStop::Deadline) {
            ShardOutcome::TimedOut
        } else if shard_unresolved > 0 || shard_stop.is_some() {
            ShardOutcome::Degraded
        } else {
            ShardOutcome::Complete
        };
        unresolved += shard_unresolved;
        skipped.extend(shard_skipped.iter().map(|&p| (i, p)));
        reports.push(ShardReport {
            shard: i,
            outcome,
            completeness: 1.0 - shard_unresolved as f64 / shard_cells as f64,
            exact_hits,
            skipped_pages: shard_skipped.into_iter().collect(),
            budget_stop: shard_stop,
            pages_read: attempt.pages,
            ticks: attempt.ticks,
            hedged: hedged[i],
            hedge_won: hedge_won[i],
            cells: shard_cells,
        });
    }

    hits.sort_by(|a, b| {
        b.bounds
            .hi
            .total_cmp(&a.bounds.hi)
            .then_with(|| b.score.total_cmp(&a.score))
            .then_with(|| a.cell.cmp(&b.cell))
    });
    hits.truncate(k);

    Ok(ShardedTopK {
        results: hits,
        effort,
        completeness: 1.0 - unresolved as f64 / total_cells as f64,
        skipped_pages: skipped,
        budget_stop: merged_stop,
        shards: reports,
    })
}

/// Result of one batched scatter-gather run: per-query sharded answers
/// plus the batch-wide physical-work accounting that shows what the
/// shared per-shard descents amortized.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchedShardedTopK {
    /// Per-query merged answers, in batch order — on a healthy archive
    /// each is result-identical to that query's solo
    /// [`scatter_gather_top_k`] run under the same policy.
    pub queries: Vec<ShardedTopK>,
    /// Physical pages read by the winning attempts across all shards.
    pub pages_read: u64,
    /// Distinct level-0 cells materialized through the shard sources
    /// (winning attempts).
    pub cells_fetched: u64,
    /// Logical per-query cell reads served (≥ `cells_fetched`; the ratio
    /// is the batch's read amortization factor).
    pub cell_requests: u64,
    /// Distinct region bound-vector computations across winning attempts
    /// (one pyramid range fetch each).
    pub bound_evals: u64,
    /// Logical per-query bound requests served (≥ `bound_evals`).
    pub bound_requests: u64,
}

/// Output of one *batched* shard descent attempt: the per-query fields of
/// [`ShardOut`] plus the shard's physical sharing counters.
struct BatchShardOut {
    /// Per-query exact items with *global* cell indices.
    items: Vec<Vec<ScoredItem>>,
    /// Per-query shard-local lost regions, with the failed page.
    lost: Vec<Vec<(Region, usize)>>,
    /// Per-query shard-local regions an early stop left unrefined.
    leftover: Vec<Vec<Region>>,
    efforts: Vec<EffortReport>,
    /// Per-query stop reasons: the batch-wide stop lands on every query
    /// still open in this shard; queries already closed keep `None`.
    stops: Vec<Option<BudgetStop>>,
    /// Distinct successful base reads — zero with losses means a dead
    /// shard (for the whole batch: reads are physical).
    resolved_reads: u64,
    cells_fetched: u64,
    cell_requests: u64,
    bound_evals: u64,
    bound_requests: u64,
}

/// One attempt (primary or hedge) at a shard, with its I/O window.
struct BatchShardAttempt {
    out: Result<BatchShardOut, CoreError>,
    pages: u64,
    ticks: u64,
}

/// Read-only context shared by every batched shard attempt of one wave:
/// [`ScatterCtx`] with the model and shared bound vectorized over the
/// batch.
struct BatchScatterCtx<'a> {
    models: &'a [LinearModel],
    k: usize,
    cols: usize,
    budget: ExecutionBudget,
    deadline: &'a WallDeadline,
    cancel: Option<&'a CancelToken>,
    /// One cross-shard bound per query, in batch order.
    bounds: &'a [SharedBound],
}

/// One shard's *batched* best-first descent: the shared-frontier loop of
/// [`crate::batched`] run over the shard's own band pyramids and source.
/// Each query prunes against `max(its shared cross-shard bound, its local
/// K-th floor)` and publishes its floors back — restricted to any one
/// query this is exactly [`shard_descent`] for that query alone, while
/// page reads and pyramid range fetches are memoized across the batch.
fn batched_shard_descent<S: CellSource>(
    ctx: &BatchScatterCtx<'_>,
    shard: &ArchiveShard<'_, S>,
) -> Result<BatchShardOut, CoreError> {
    let models = ctx.models;
    let m = models.len();
    let arity = models[0].arity();
    let n = arity as u64;
    let levels = shard.pyramids[0].levels();
    let pages_at_entry = shard.source.pages_read();
    let ticks_at_entry = shard.source.ticks_elapsed();

    let mut efforts: Vec<EffortReport> = (0..m)
        .map(|_| EffortReport {
            multiply_adds: 0,
            naive_multiply_adds: n * shard.cells(),
        })
        .collect();
    let mut total_ma = 0u64;
    let mut selector = Selector::for_width(m);
    let mut frontiers: Vec<BinaryHeap<Region>> = (0..m).map(|_| BinaryHeap::new()).collect();
    let mut children: Vec<CellCoord> = Vec::new();
    let mut ranges: Vec<(f64, f64)> = Vec::new();
    let mut x: Vec<f64> = Vec::new();
    let mut cell_memo: MemoMap<CellSlot> = MemoMap::default();
    let mut cell_gov = MemoGovernor::new(CELL_MEMO_WINDOW);
    let mut bound_memo = BoundMemo::new();
    let mut cell_arena: Vec<f64> = Vec::new();
    let mut coarse_bufs: Vec<(Vec<f64>, Vec<f64>)> = Vec::new();
    if let Some(cg) = shard.coarse {
        coarse_bufs.resize_with(m, Default::default);
        for (q, model) in models.iter().enumerate() {
            let (qc, qm) = &mut coarse_bufs[q];
            cg.prepare_into(model, qc, qm)?;
        }
    }
    let mut heaps: Vec<TopKHeap> = (0..m).map(|_| TopKHeap::new(ctx.k)).collect();
    let mut done = vec![false; m];
    let mut done_count = 0usize;
    let mut lost: Vec<Vec<(Region, usize)>> = (0..m).map(|_| Vec::new()).collect();
    let mut leftover: Vec<Vec<Region>> = (0..m).map(|_| Vec::new()).collect();
    let mut stops: Vec<Option<BudgetStop>> = vec![None; m];
    let mut resolved_reads = 0u64;
    let mut cells_fetched = 0u64;
    let mut cell_requests = 0u64;
    let mut bound_evals = 0u64;
    let mut bound_requests = 0u64;

    let top = levels - 1;
    for q in 0..m {
        let ub = bound_memo.bound(models, shard.pyramids, top, 0, 0, q, &mut bound_evals)?;
        efforts[q].multiply_adds += n;
        total_ma += n;
        bound_requests += 1;
        frontiers[q].push(Region {
            ub,
            level: top,
            row: 0,
            col: 0,
        });
        selector.arm(q, &frontiers);
    }

    // Selector-over-frontiers interleave, as in [`crate::batched`]: one
    // solo-sized frontier per query, one live top each in the selector.
    while let Some((q, e)) = selector.next(&mut frontiers) {
        if bound_memo.is_off() {
            selector.go_serial();
        }
        let mut floor = ctx.bounds[q].get();
        if let Some(f) = heaps[q].floor() {
            floor = floor.max(f);
        }
        if floor >= e.ub {
            // Sound exclusion of this query's band remainder — the solo
            // descent's break; its frontier is abandoned wholesale.
            done[q] = true;
            done_count += 1;
            if done_count == m {
                break;
            }
            continue;
        }
        let checked = checkpoint_stop(
            ctx.cancel,
            ctx.deadline,
            &ctx.budget,
            total_ma,
            shard.source.pages_read().saturating_sub(pages_at_entry),
            shard.source.ticks_elapsed().saturating_sub(ticks_at_entry),
        );
        if let Some(stop) = checked {
            leftover[q].push(e);
            stops[q] = Some(stop);
            for (rq, f) in frontiers.iter_mut().enumerate() {
                if done[rq] || (rq != q && f.is_empty()) {
                    continue;
                }
                stops[rq] = Some(stop);
                leftover[rq].extend(f.drain());
            }
            break;
        }
        if e.level == 0 {
            cell_requests += 1;
            if cell_gov.live() {
                let ck = cell_key(e.row as u32, e.col as u32);
                let slot = match cell_memo.get(&ck) {
                    Some(s) => {
                        cell_gov.record(true);
                        *s
                    }
                    None => {
                        cell_gov.record(false);
                        let s = match read_base_vector_into(
                            shard.source,
                            arity,
                            e.row,
                            e.col,
                            &mut x,
                        ) {
                            Ok(()) => {
                                resolved_reads += 1;
                                cells_fetched += 1;
                                let off = cell_arena.len();
                                cell_arena.extend_from_slice(&x);
                                CellSlot::Loaded(off)
                            }
                            Err(CoreError::Archive(
                                ArchiveError::PageIo { page }
                                | ArchiveError::PageQuarantined { page }
                                | ArchiveError::PageCorrupt { page },
                            )) => {
                                let page = shard.source.page_of(e.row, e.col).unwrap_or(page);
                                CellSlot::Lost(page)
                            }
                            Err(err) => return Err(err),
                        };
                        cell_memo.insert(ck, s);
                        s
                    }
                };
                match slot {
                    CellSlot::Loaded(off) => {
                        efforts[q].multiply_adds += n;
                        total_ma += n;
                        heaps[q].offer(ScoredItem {
                            index: (e.row + shard.row_offset) * ctx.cols + e.col,
                            score: models[q].evaluate(&cell_arena[off..off + arity]),
                        });
                        if let Some(f) = heaps[q].floor() {
                            ctx.bounds[q].offer(f);
                        }
                    }
                    CellSlot::Lost(page) => lost[q].push((e, page)),
                }
            } else {
                // Governed off: the solo shard descent's read-and-score
                // path, with no arena copy and no table insert.
                match read_base_vector_into(shard.source, arity, e.row, e.col, &mut x) {
                    Ok(()) => {
                        resolved_reads += 1;
                        cells_fetched += 1;
                        efforts[q].multiply_adds += n;
                        total_ma += n;
                        heaps[q].offer(ScoredItem {
                            index: (e.row + shard.row_offset) * ctx.cols + e.col,
                            score: models[q].evaluate(&x),
                        });
                        if let Some(f) = heaps[q].floor() {
                            ctx.bounds[q].offer(f);
                        }
                    }
                    Err(CoreError::Archive(
                        ArchiveError::PageIo { page }
                        | ArchiveError::PageQuarantined { page }
                        | ArchiveError::PageCorrupt { page },
                    )) => {
                        let page = shard.source.page_of(e.row, e.col).unwrap_or(page);
                        lost[q].push((e, page));
                    }
                    Err(err) => return Err(err),
                }
            }
            selector.arm(q, &frontiers);
            continue;
        }
        let level = e.level;
        shard.pyramids[0].children_into(level, e.row, e.col, &mut children);
        for &child in children.iter() {
            // Per-query coarse pass against this query's pop-time pruning
            // bound — the same prune-only gate as [`shard_descent`].
            if let Some(cg) = shard.coarse {
                if floor > f64::NEG_INFINITY {
                    let (qc, qm) = &coarse_bufs[q];
                    if cg.cell_upper_bound(qc, qm, level - 1, child.row, child.col) < floor {
                        continue;
                    }
                }
            }
            bound_requests += 1;
            let ub = if bound_memo.is_off() {
                // Retired memo: the solo engine's bound path, inlined.
                bound_evals += 1;
                region_bound_into(
                    &models[q],
                    shard.pyramids,
                    level - 1,
                    child.row,
                    child.col,
                    &mut ranges,
                    &mut efforts[q],
                )?
            } else {
                let ub = bound_memo.bound(
                    models,
                    shard.pyramids,
                    level - 1,
                    child.row,
                    child.col,
                    q,
                    &mut bound_evals,
                )?;
                efforts[q].multiply_adds += n;
                ub
            };
            total_ma += n;
            frontiers[q].push(Region {
                ub,
                level: level - 1,
                row: child.row,
                col: child.col,
            });
        }
        selector.arm(q, &frontiers);
    }

    Ok(BatchShardOut {
        items: heaps.into_iter().map(TopKHeap::into_sorted).collect(),
        lost,
        leftover,
        efforts,
        stops,
        resolved_reads,
        cells_fetched,
        cell_requests,
        bound_evals,
        bound_requests,
    })
}

/// Runs one batched attempt at a shard and measures its I/O window on
/// the shard's own clock.
fn run_batched_attempt<S: CellSource>(
    ctx: &BatchScatterCtx<'_>,
    shard: &ArchiveShard<'_, S>,
) -> BatchShardAttempt {
    let pages_at_entry = shard.source.pages_read();
    let ticks_at_entry = shard.source.ticks_elapsed();
    let out = batched_shard_descent(ctx, shard);
    BatchShardAttempt {
        out,
        pages: shard.source.pages_read().saturating_sub(pages_at_entry),
        ticks: shard.source.ticks_elapsed().saturating_sub(ticks_at_entry),
    }
}

/// Fans `which` shard indices out over the pool for one batched wave
/// (round-robin, at most one worker per shard).
fn batched_scatter_wave<S: CellSource + Sync>(
    ctx: &BatchScatterCtx<'_>,
    shards: &[ArchiveShard<'_, S>],
    which: &[usize],
    pool: &WorkerPool,
) -> Vec<(usize, BatchShardAttempt)> {
    let workers = pool.threads().min(which.len()).max(1);
    let mut assignments: Vec<Vec<usize>> = vec![Vec::new(); workers];
    for (slot, &shard_index) in which.iter().enumerate() {
        assignments[slot % workers].push(shard_index);
    }
    pool.run(
        assignments
            .into_iter()
            .map(|own| {
                move |_w: usize| {
                    own.into_iter()
                        .map(|i| (i, run_batched_attempt(ctx, &shards[i])))
                        .collect::<Vec<_>>()
                }
            })
            .collect(),
    )
    .into_iter()
    .flatten()
    .collect()
}

/// Batched scatter-gather top-K: one scatter wave serves every model in
/// `models` — each shard is descended *once* for the whole batch, with
/// page reads and pyramid range fetches shared across queries, instead of
/// once per query. Per query, the pruning, quorum, hedging, and gather
/// semantics are exactly those of [`scatter_gather_top_k`]; on a healthy
/// archive each query's merged answer is result-identical to its solo
/// scatter-gather run. The `budget` is enforced per shard attempt and is
/// *batch-wide* within the attempt (summed multiply-adds, shared source
/// clocks), like [`crate::batched::batched_top_k`].
///
/// # Errors
///
/// [`ShardError::Core`] for invalid inputs (including models that
/// disagree on arity); [`ShardError::Insufficient`] when fewer shards
/// respond than `policy.completion` requires — shard failure is physical,
/// so the quorum verdict is shared by every query in the batch.
pub fn batched_scatter_gather_top_k<S: CellSource + Sync>(
    models: &[LinearModel],
    archive: &ShardedArchive<'_, S>,
    k: usize,
    budget: &ExecutionBudget,
    policy: &ScatterPolicy,
    pool: &WorkerPool,
) -> Result<BatchedShardedTopK, ShardError> {
    batched_scatter_gather_inner(models, archive, k, budget, policy, None, pool)
}

/// [`batched_scatter_gather_top_k`] polling a [`CancelToken`] at every
/// shard's page-granular checkpoints. Cancellation stops every shard at
/// its next checkpoint and every still-open query degrades with sound
/// bounds.
///
/// # Errors
///
/// Same as [`batched_scatter_gather_top_k`].
pub fn batched_scatter_gather_top_k_cancellable<S: CellSource + Sync>(
    models: &[LinearModel],
    archive: &ShardedArchive<'_, S>,
    k: usize,
    budget: &ExecutionBudget,
    policy: &ScatterPolicy,
    cancel: &CancelToken,
    pool: &WorkerPool,
) -> Result<BatchedShardedTopK, ShardError> {
    batched_scatter_gather_inner(models, archive, k, budget, policy, Some(cancel), pool)
}

fn batched_scatter_gather_inner<S: CellSource + Sync>(
    models: &[LinearModel],
    archive: &ShardedArchive<'_, S>,
    k: usize,
    budget: &ExecutionBudget,
    policy: &ScatterPolicy,
    cancel: Option<&CancelToken>,
    pool: &WorkerPool,
) -> Result<BatchedShardedTopK, ShardError> {
    let m = models.len();
    if m == 0 {
        return Ok(BatchedShardedTopK {
            queries: Vec::new(),
            pages_read: 0,
            cells_fetched: 0,
            cell_requests: 0,
            bound_evals: 0,
            bound_requests: 0,
        });
    }
    check_epoch_fence(policy, archive)?;
    let shards = archive.shards();
    for shard in shards {
        validate_grid_inputs(&models[0], shard.pyramids, k).map_err(ShardError::Core)?;
    }
    for model in &models[1..] {
        if model.arity() != models[0].arity() {
            return Err(ShardError::Core(CoreError::Query(
                "batched queries must share the model arity".into(),
            )));
        }
    }
    let n = models[0].arity() as u64;
    let total_cells = archive.total_cells();
    let cols = archive.shape().1;
    let deadline = WallDeadline::starting_now(budget);
    let bounds: Vec<SharedBound> = (0..m).map(|_| SharedBound::new()).collect();

    let soft_engaged = policy
        .shard_soft_deadline_ticks
        .is_some_and(|soft| budget.deadline_ticks.is_none_or(|d| soft < d));
    let primary_budget = if soft_engaged {
        ExecutionBudget {
            deadline_ticks: policy.shard_soft_deadline_ticks,
            ..*budget
        }
    } else {
        *budget
    };

    let primary_ctx = BatchScatterCtx {
        models,
        k,
        cols,
        budget: primary_budget,
        deadline: &deadline,
        cancel,
        bounds: &bounds,
    };
    let all: Vec<usize> = (0..shards.len()).collect();
    let mut attempts: Vec<Option<BatchShardAttempt>> = (0..shards.len()).map(|_| None).collect();
    for (i, attempt) in batched_scatter_wave(&primary_ctx, shards, &all, pool) {
        attempts[i] = Some(attempt);
    }

    // Hedged re-dispatch of stragglers, exactly as in the solo path: the
    // batch-wide budget means a soft-deadline stop lands on every query
    // still open in the shard, so "any query stopped on Deadline" is the
    // straggler signal.
    let mut hedged = vec![false; shards.len()];
    let mut hedge_won = vec![false; shards.len()];
    if policy.hedge_stragglers && soft_engaged && !cancel.is_some_and(CancelToken::is_cancelled) {
        let stragglers: Vec<usize> = attempts
            .iter()
            .enumerate()
            .filter(|(_, a)| {
                a.as_ref().is_some_and(|a| match &a.out {
                    Ok(o) => o.stops.contains(&Some(BudgetStop::Deadline)),
                    Err(_) => false,
                })
            })
            .map(|(i, _)| i)
            .collect();
        if !stragglers.is_empty() {
            let hedge_ctx = BatchScatterCtx {
                budget: *budget,
                ..primary_ctx
            };
            for (i, hedge) in batched_scatter_wave(&hedge_ctx, shards, &stragglers, pool) {
                hedged[i] = true;
                let primary = attempts[i].as_ref().expect("primary attempt present");
                let unresolved = |o: &BatchShardOut| -> usize {
                    o.lost.iter().map(Vec::len).sum::<usize>()
                        + o.leftover.iter().map(Vec::len).sum::<usize>()
                };
                let wins = match (&primary.out, &hedge.out) {
                    (_, Err(_)) => false,
                    (Err(_), Ok(_)) => true,
                    (Ok(p), Ok(h)) => {
                        h.stops.iter().all(Option::is_none) || unresolved(h) < unresolved(p)
                    }
                };
                if wins {
                    hedge_won[i] = true;
                    attempts[i] = Some(hedge);
                }
            }
        }
    }

    // Quorum: shard failure is physical — it errored or evaluated no base
    // data for anyone — so the verdict is shared by every query.
    let failed: Vec<usize> = attempts
        .iter()
        .enumerate()
        .filter(|(_, a)| {
            let attempt = a.as_ref().expect("attempt present");
            match &attempt.out {
                Err(_) => true,
                Ok(o) => o.resolved_reads == 0 && o.lost.iter().any(|l| !l.is_empty()),
            }
        })
        .map(|(i, _)| i)
        .collect();
    let responded = shards.len() - failed.len();
    let required = policy.completion.required(shards.len());
    if responded < required {
        return Err(InsufficientShards {
            responded,
            required,
            total: shards.len(),
            failed,
            epoch: archive.epoch,
        }
        .into());
    }

    // Same floating-point guard as the solo gather (see the comment
    // there): widen inexact candidates, never exact hits, and exclude on
    // the raw bounds.
    let widen = |bounds: ScoreBounds| -> ScoreBounds {
        let pad = bounds.hi.abs().max(bounds.lo.abs()).max(1.0) * f64::EPSILON * 16.0;
        ScoreBounds {
            lo: bounds.lo - pad,
            hi: bounds.hi + pad,
        }
    };

    let mut pages_read = 0u64;
    let mut cells_fetched = 0u64;
    let mut cell_requests = 0u64;
    let mut bound_evals = 0u64;
    let mut bound_requests = 0u64;
    for attempt in attempts.iter().flatten() {
        pages_read += attempt.pages;
        if let Ok(o) = &attempt.out {
            cells_fetched += o.cells_fetched;
            cell_requests += o.cell_requests;
            bound_evals += o.bound_evals;
            bound_requests += o.bound_requests;
        }
    }

    // Gather, per query: the exact merge of `scatter_gather_inner` run
    // against that query's model, items, losses, and leftovers.
    let mut queries = Vec::with_capacity(m);
    for (q, model) in models.iter().enumerate() {
        let mut effort = EffortReport {
            multiply_adds: 0,
            naive_multiply_adds: n * total_cells,
        };
        let mut items: Vec<ScoredItem> = Vec::new();
        for attempt in attempts.iter().flatten() {
            if let Ok(o) = &attempt.out {
                effort.multiply_adds += o.efforts[q].multiply_adds;
                items.extend(o.items[q].iter().copied());
            }
        }
        sort_desc(&mut items);
        items.truncate(k);
        let floor = if items.len() == k {
            items.last().map(|i| i.score)
        } else {
            None
        };
        let excluded = |hi: f64| floor.is_some_and(|f| f >= hi);

        let mut hits: Vec<ResilientHit> = items
            .into_iter()
            .map(|item| ResilientHit {
                cell: CellCoord::new(item.index / cols, item.index % cols),
                level: 0,
                score: item.score,
                bounds: ScoreBounds::exact(item.score),
                exact: true,
            })
            .collect();

        let mut unresolved = 0u64;
        let mut skipped: Vec<(usize, usize)> = Vec::new();
        let mut reports: Vec<ShardReport> = Vec::with_capacity(shards.len());
        let mut merged_stop: Option<BudgetStop> = None;

        for (i, shard) in shards.iter().enumerate() {
            let attempt = attempts[i].as_ref().expect("attempt present");
            let shard_cells = shard.cells();
            let mut shard_unresolved = 0u64;
            let mut shard_skipped: BTreeSet<usize> = BTreeSet::new();
            let mut exact_hits = 0usize;
            let mut shard_stop = None;
            match &attempt.out {
                Ok(o) => {
                    exact_hits = o.items[q].len();
                    shard_stop = o.stops[q];
                    for region in &o.leftover[q] {
                        let (mut candidate, count) = region_candidate(
                            model,
                            shard.pyramids,
                            region.level,
                            region.row,
                            region.col,
                            &mut effort,
                        )
                        .map_err(ShardError::Core)?;
                        candidate.cell = CellCoord::new(
                            candidate.cell.row + shard.row_offset,
                            candidate.cell.col,
                        );
                        if excluded(candidate.bounds.hi) {
                            continue; // Provably outside the top-K: resolved.
                        }
                        shard_unresolved += count;
                        candidate.bounds = widen(candidate.bounds);
                        hits.push(candidate);
                    }
                    let parent_level = 1.min(shard.pyramids[0].levels() - 1);
                    for (region, page) in &o.lost[q] {
                        if excluded(region.ub) {
                            continue; // Resolved by the deterministic bound.
                        }
                        shard_skipped.insert(*page);
                        let (mut candidate, _) = region_candidate(
                            model,
                            shard.pyramids,
                            parent_level,
                            region.row >> parent_level,
                            region.col >> parent_level,
                            &mut effort,
                        )
                        .map_err(ShardError::Core)?;
                        candidate.cell = CellCoord::new(region.row + shard.row_offset, region.col);
                        candidate.level = 0;
                        shard_unresolved += 1;
                        candidate.bounds = widen(candidate.bounds);
                        hits.push(candidate);
                    }
                }
                Err(_) => {
                    // The whole band degrades to its resident root
                    // aggregate, per query, exactly as in the solo gather.
                    let top = shard.pyramids[0].levels() - 1;
                    let (mut candidate, count) =
                        region_candidate(model, shard.pyramids, top, 0, 0, &mut effort)
                            .map_err(ShardError::Core)?;
                    candidate.cell = CellCoord::new(shard.row_offset, 0);
                    if !excluded(candidate.bounds.hi) {
                        shard_unresolved += count;
                        candidate.bounds = widen(candidate.bounds);
                        hits.push(candidate);
                    }
                }
            }
            if let Some(stop) = shard_stop {
                if merged_stop.is_none_or(|ms| stop_severity(stop) > stop_severity(ms)) {
                    merged_stop = Some(stop);
                }
            }
            let outcome = if failed.contains(&i) {
                ShardOutcome::Failed
            } else if soft_engaged && !hedge_won[i] && shard_stop == Some(BudgetStop::Deadline) {
                ShardOutcome::TimedOut
            } else if shard_unresolved > 0 || shard_stop.is_some() {
                ShardOutcome::Degraded
            } else {
                ShardOutcome::Complete
            };
            unresolved += shard_unresolved;
            skipped.extend(shard_skipped.iter().map(|&p| (i, p)));
            reports.push(ShardReport {
                shard: i,
                outcome,
                completeness: 1.0 - shard_unresolved as f64 / shard_cells as f64,
                exact_hits,
                skipped_pages: shard_skipped.into_iter().collect(),
                budget_stop: shard_stop,
                pages_read: attempt.pages,
                ticks: attempt.ticks,
                hedged: hedged[i],
                hedge_won: hedge_won[i],
                cells: shard_cells,
            });
        }

        hits.sort_by(|a, b| {
            b.bounds
                .hi
                .total_cmp(&a.bounds.hi)
                .then_with(|| b.score.total_cmp(&a.score))
                .then_with(|| a.cell.cmp(&b.cell))
        });
        hits.truncate(k);

        queries.push(ShardedTopK {
            results: hits,
            effort,
            completeness: 1.0 - unresolved as f64 / total_cells as f64,
            skipped_pages: skipped,
            budget_stop: merged_stop,
            shards: reports,
        });
    }

    Ok(BatchedShardedTopK {
        queries,
        pages_read,
        cells_fetched,
        cell_requests,
        bound_evals,
        bound_requests,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resilient::resilient_top_k;
    use crate::source::TileSource;
    use mbir_archive::fault::FaultProfile;
    use mbir_archive::grid::Grid2;
    use mbir_archive::stats::AccessStats;
    use mbir_archive::tile::TileStore;

    fn smooth_grid(i: usize, rows: usize, cols: usize) -> Grid2<f64> {
        Grid2::from_fn(rows, cols, |r, c| {
            ((r as f64 / 9.0 + i as f64).sin() + (c as f64 / 11.0).cos()) * 50.0 + 100.0
        })
    }

    /// One shard's owned state: band pyramids, band stores, band stats.
    struct ShardWorld {
        pyramids: Vec<AggregatePyramid>,
        stores: Vec<TileStore>,
        stats: AccessStats,
        row_offset: usize,
    }

    /// A global smooth world plus its row-band sharding. `rows` must be
    /// divisible by `shards` with tile-aligned bands.
    fn sharded_world(
        arity: usize,
        rows: usize,
        cols: usize,
        tile: usize,
        shards: usize,
    ) -> (LinearModel, Vec<AggregatePyramid>, Vec<ShardWorld>) {
        assert_eq!(rows % shards, 0);
        let band_rows = rows / shards;
        assert_eq!(band_rows % tile, 0, "bands must be tile-aligned");
        let grids: Vec<Grid2<f64>> = (0..arity).map(|i| smooth_grid(i, rows, cols)).collect();
        let global_pyramids = grids.iter().map(AggregatePyramid::build).collect();
        let worlds = (0..shards)
            .map(|s| {
                let offset = s * band_rows;
                let bands: Vec<Grid2<f64>> = grids
                    .iter()
                    .map(|g| Grid2::from_fn(band_rows, cols, |r, c| *g.at(offset + r, c)))
                    .collect();
                let stats = AccessStats::new();
                ShardWorld {
                    pyramids: bands.iter().map(AggregatePyramid::build).collect(),
                    stores: bands
                        .iter()
                        .map(|b| {
                            TileStore::new(b.clone(), tile)
                                .unwrap()
                                .with_stats(stats.clone())
                        })
                        .collect(),
                    stats,
                    row_offset: offset,
                }
            })
            .collect();
        let coeffs: Vec<f64> = (0..arity).map(|i| 1.0 - 0.3 * i as f64).collect();
        (
            LinearModel::new(coeffs, 0.25).unwrap(),
            global_pyramids,
            worlds,
        )
    }

    /// Builds sources + archive over the worlds and runs the body. The
    /// closure indirection keeps the borrow chain (stores → sources →
    /// shards) inside one scope.
    fn with_archive<R>(
        worlds: &[ShardWorld],
        body: impl FnOnce(&ShardedArchive<'_, TileSource<'_>>) -> R,
    ) -> R {
        let sources: Vec<TileSource<'_>> = worlds
            .iter()
            .map(|w| TileSource::new(&w.stores).unwrap())
            .collect();
        let shards: Vec<ArchiveShard<'_, TileSource<'_>>> = worlds
            .iter()
            .zip(&sources)
            .map(|(w, src)| ArchiveShard::new(&w.pyramids, src, w.row_offset))
            .collect();
        let archive = ShardedArchive::new(shards).unwrap();
        body(&archive)
    }

    #[test]
    fn healthy_runs_are_bit_identical_to_unsharded_resilient() {
        for shard_count in [1usize, 4, 16] {
            let (model, global, worlds) = sharded_world(3, 64, 64, 4, shard_count);
            let reference_stores: Vec<TileStore> = (0..3)
                .map(|i| TileStore::new(smooth_grid(i, 64, 64), 4).unwrap())
                .collect();
            let reference_src = TileSource::new(&reference_stores).unwrap();
            let reference = resilient_top_k(
                &model,
                &global,
                9,
                &reference_src,
                &ExecutionBudget::unlimited(),
            )
            .unwrap();
            with_archive(&worlds, |archive| {
                for threads in [1usize, 2, 4, 8] {
                    let pool = WorkerPool::new(threads);
                    let r = scatter_gather_top_k(
                        &model,
                        archive,
                        9,
                        &ExecutionBudget::unlimited(),
                        &ScatterPolicy::require_all(),
                        &pool,
                    )
                    .unwrap();
                    assert_eq!(
                        r.results, reference.results,
                        "shards={shard_count} threads={threads}"
                    );
                    assert!(!r.is_degraded());
                    assert_eq!(r.completeness, 1.0);
                    assert_eq!(r.budget_stop, None);
                    assert!(r.skipped_pages.is_empty());
                    assert!(r.shards.iter().all(|s| s.outcome == ShardOutcome::Complete));
                }
            });
        }
    }

    #[test]
    fn coarse_shards_are_bit_identical_to_plain_shards() {
        let (model, _, worlds) = sharded_world(3, 64, 64, 4, 4);
        // One coarse grid per band, built over that band's own pyramids.
        let grids: Vec<CoarseGrid> = worlds
            .iter()
            .map(|w| CoarseGrid::build(&w.pyramids).unwrap())
            .collect();
        let plain = with_archive(&worlds, |archive| {
            scatter_gather_top_k(
                &model,
                archive,
                9,
                &ExecutionBudget::unlimited(),
                &ScatterPolicy::require_all(),
                &WorkerPool::new(1),
            )
            .unwrap()
        });
        let sources: Vec<TileSource<'_>> = worlds
            .iter()
            .map(|w| TileSource::new(&w.stores).unwrap())
            .collect();
        let shards: Vec<ArchiveShard<'_, TileSource<'_>>> = worlds
            .iter()
            .zip(&sources)
            .zip(&grids)
            .map(|((w, src), cg)| ArchiveShard::new(&w.pyramids, src, w.row_offset).with_coarse(cg))
            .collect();
        let archive = ShardedArchive::new(shards).unwrap();
        for threads in [1usize, 2, 4, 8] {
            let pruned = scatter_gather_top_k(
                &model,
                &archive,
                9,
                &ExecutionBudget::unlimited(),
                &ScatterPolicy::require_all(),
                &WorkerPool::new(threads),
            )
            .unwrap();
            assert_eq!(pruned.results, plain.results, "threads={threads}");
            assert_eq!(pruned.completeness, plain.completeness);
            assert_eq!(pruned.skipped_pages, plain.skipped_pages);
            assert!(!pruned.is_degraded());
        }
    }

    fn pseudo_grid(seed: u64, rows: usize, cols: usize) -> Grid2<f64> {
        Grid2::from_fn(rows, cols, |r, c| {
            let h = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add((r * 8191 + c * 127) as u64)
                .wrapping_mul(2862933555777941757);
            (h >> 11) as f64 / (1u64 << 53) as f64 * 100.0
        })
    }

    #[test]
    fn coarse_shards_save_bound_work_deterministically() {
        // Rough (pseudo-random) bands keep upper-level interval bounds
        // loose: each attribute's band max sits near 100 but no single
        // cell attains all three, so a lagging shard's region bounds stay
        // above the floor published by an earlier shard for several
        // levels while almost every leaf-adjacent child falls below it.
        // Those children are exactly what the i8 coarse pass rejects
        // before the exact bound runs. At one pool thread the shards run
        // in submission order, so the saving is deterministic.
        let band_rows = 16usize;
        let worlds: Vec<ShardWorld> = (0..4usize)
            .map(|s| {
                let bands: Vec<Grid2<f64>> = (0..3)
                    .map(|j| pseudo_grid((s * 3 + j + 1) as u64, band_rows, 64))
                    .collect();
                let stats = AccessStats::new();
                ShardWorld {
                    pyramids: bands.iter().map(AggregatePyramid::build).collect(),
                    stores: bands
                        .iter()
                        .map(|b| {
                            TileStore::new(b.clone(), 8)
                                .unwrap()
                                .with_stats(stats.clone())
                        })
                        .collect(),
                    stats,
                    row_offset: s * band_rows,
                }
            })
            .collect();
        let model = LinearModel::new(vec![1.0, 0.7, 0.4], 0.0).unwrap();
        let grids: Vec<CoarseGrid> = worlds
            .iter()
            .map(|w| CoarseGrid::build(&w.pyramids).unwrap())
            .collect();
        let plain = with_archive(&worlds, |archive| {
            scatter_gather_top_k(
                &model,
                archive,
                9,
                &ExecutionBudget::unlimited(),
                &ScatterPolicy::require_all(),
                &WorkerPool::new(1),
            )
            .unwrap()
        });
        let sources: Vec<TileSource<'_>> = worlds
            .iter()
            .map(|w| TileSource::new(&w.stores).unwrap())
            .collect();
        let shards: Vec<ArchiveShard<'_, TileSource<'_>>> = worlds
            .iter()
            .zip(&sources)
            .zip(&grids)
            .map(|((w, src), cg)| ArchiveShard::new(&w.pyramids, src, w.row_offset).with_coarse(cg))
            .collect();
        let archive = ShardedArchive::new(shards).unwrap();
        let pruned = scatter_gather_top_k(
            &model,
            &archive,
            9,
            &ExecutionBudget::unlimited(),
            &ScatterPolicy::require_all(),
            &WorkerPool::new(1),
        )
        .unwrap();
        assert_eq!(pruned.results, plain.results);
        assert_eq!(pruned.completeness, plain.completeness);
        assert!(
            pruned.effort.multiply_adds * 10 <= plain.effort.multiply_adds * 9,
            "coarse shards saved too little: {} vs {}",
            pruned.effort.multiply_adds,
            plain.effort.multiply_adds
        );
    }

    #[test]
    fn cross_shard_bound_propagation_prunes_lagging_shards() {
        let (model, _, worlds) = sharded_world(2, 64, 64, 4, 4);
        with_archive(&worlds, |archive| {
            let pool = WorkerPool::new(1);
            let r = scatter_gather_top_k(
                &model,
                archive,
                3,
                &ExecutionBudget::unlimited(),
                &ScatterPolicy::require_all(),
                &pool,
            )
            .unwrap();
            // The smooth world concentrates the winners in one band, so
            // the floor published by the early shards must let the rest
            // skip most of their cells.
            assert!(r.effort.multiply_adds < r.effort.naive_multiply_adds / 2);
            let pages: u64 = worlds.iter().map(|w| w.stats.pages_read()).sum();
            let total_pages: usize = worlds
                .iter()
                .map(|w| w.stores.iter().map(TileStore::page_count).sum::<usize>())
                .sum();
            assert!(pages < total_pages as u64 / 2, "{pages} vs {total_pages}");
        });
    }

    fn kill_shard(world: &mut ShardWorld) {
        let store = &world.stores[0];
        let profile =
            (0..store.page_count()).fold(FaultProfile::new(0), |p, page| p.permanent(page));
        world.stores = world
            .stores
            .iter()
            .enumerate()
            .map(|(i, s)| {
                if i == 0 {
                    s.clone().with_faults(profile.clone())
                } else {
                    s.clone()
                }
            })
            .collect();
    }

    #[test]
    fn dead_shard_degrades_best_effort_answer_soundly() {
        let (model, global, mut worlds) = sharded_world(2, 64, 64, 4, 4);
        // Kill the shard holding the global winner so its absence must
        // surface as widened bounds, not a silent flip.
        let reference_stores: Vec<TileStore> = (0..2)
            .map(|i| TileStore::new(smooth_grid(i, 64, 64), 4).unwrap())
            .collect();
        let reference_src = TileSource::new(&reference_stores).unwrap();
        let reference = resilient_top_k(
            &model,
            &global,
            5,
            &reference_src,
            &ExecutionBudget::unlimited(),
        )
        .unwrap();
        let winner_row = reference.results[0].cell.row;
        let band_rows = 64 / 4;
        let victim = winner_row / band_rows;
        kill_shard(&mut worlds[victim]);
        with_archive(&worlds, |archive| {
            let pool = WorkerPool::new(4);
            let r = scatter_gather_top_k(
                &model,
                archive,
                5,
                &ExecutionBudget::unlimited(),
                &ScatterPolicy::best_effort(),
                &pool,
            )
            .unwrap();
            assert!(r.is_degraded());
            assert!(r.completeness < 1.0);
            assert_eq!(r.shards[victim].outcome, ShardOutcome::Failed);
            assert_eq!(r.responded(), 3);
            // Soundness: the true winner's score must lie inside some
            // returned hit's bounds — the dead band's aggregate candidate.
            let truth = reference.results[0].score;
            assert!(
                r.results
                    .iter()
                    .any(|h| h.bounds.lo <= truth && truth <= h.bounds.hi),
                "true winner {truth} escaped all reported bounds"
            );
            // And every exact hit it did return is a genuinely correct
            // score for its cell (never a fabricated answer).
            for hit in r.results.iter().filter(|h| h.exact) {
                let x: Vec<f64> = (0..2)
                    .map(|i| *smooth_grid(i, 64, 64).at(hit.cell.row, hit.cell.col))
                    .collect();
                assert_eq!(hit.score, model.evaluate(&x));
            }
        });
    }

    #[test]
    fn quorum_policies_gate_dead_shards_with_typed_errors() {
        let (model, _, mut worlds) = sharded_world(2, 64, 64, 4, 4);
        kill_shard(&mut worlds[0]);
        with_archive(&worlds, |archive| {
            // One worker → shard 0 runs first with an empty shared bound,
            // so its failure classification is deterministic.
            let pool = WorkerPool::new(1);
            let budget = ExecutionBudget::unlimited();
            let run = |policy: &ScatterPolicy| {
                scatter_gather_top_k(&model, archive, 5, &budget, policy, &pool)
            };
            match run(&ScatterPolicy::require_all()) {
                Err(ShardError::Insufficient(e)) => {
                    assert_eq!(e.responded, 3);
                    assert_eq!(e.required, 4);
                    assert_eq!(e.total, 4);
                    assert_eq!(e.failed, vec![0]);
                    let shown = e.to_string();
                    assert!(shown.contains("3 of 4"), "{shown}");
                    assert!(shown.contains("[0]"), "{shown}");
                }
                other => panic!("expected InsufficientShards, got {other:?}"),
            }
            match run(&ScatterPolicy::quorum(4)) {
                Err(ShardError::Insufficient(e)) => assert_eq!(e.required, 4),
                other => panic!("expected InsufficientShards, got {other:?}"),
            }
            let ok = run(&ScatterPolicy::quorum(3)).unwrap();
            assert_eq!(ok.responded(), 3);
            assert!(ok.is_degraded());
            let ok = run(&ScatterPolicy::best_effort()).unwrap();
            assert_eq!(ok.shards[0].outcome, ShardOutcome::Failed);
        });
    }

    #[test]
    fn straggler_shard_is_hedged_and_the_clean_attempt_wins() {
        let (model, global, mut worlds) = sharded_world(2, 64, 64, 4, 4);
        // Slow down the band holding the global winner: the shared bound
        // can never exclude it, so its primary attempt must read a page,
        // eat the injected latency, and trip the soft deadline. Healthy
        // pages cost 1 tick, so no healthy shard can reach the deadline
        // even by reading its whole band.
        let reference_stores: Vec<TileStore> = (0..2)
            .map(|i| TileStore::new(smooth_grid(i, 64, 64), 4).unwrap())
            .collect();
        let reference_src = TileSource::new(&reference_stores).unwrap();
        let reference = resilient_top_k(
            &model,
            &global,
            5,
            &reference_src,
            &ExecutionBudget::unlimited(),
        )
        .unwrap();
        let slow = reference.results[0].cell.row / (64 / 4);
        let profile = (0..worlds[slow].stores[0].page_count())
            .fold(FaultProfile::new(0), |p, page| p.latency(page, 10_000));
        worlds[slow].stores = worlds[slow]
            .stores
            .iter()
            .map(|s| s.clone().with_faults(profile.clone()))
            .collect();
        with_archive(&worlds, |archive| {
            let pool = WorkerPool::new(4);
            let policy = ScatterPolicy::require_all()
                .with_soft_deadline_ticks(5_000)
                .with_hedged_stragglers();
            let r = scatter_gather_top_k(
                &model,
                archive,
                5,
                &ExecutionBudget::unlimited(),
                &policy,
                &pool,
            )
            .unwrap();
            let report = &r.shards[slow];
            assert!(report.hedged, "slow shard was not hedged");
            assert!(report.hedge_won, "hedge attempt should win cleanly");
            assert_ne!(report.outcome, ShardOutcome::TimedOut);
            assert!(r.shards.iter().filter(|s| s.hedged).count() == 1);
            // The hedged answer recovers the true winner exactly.
            assert_eq!(r.results[0].cell, reference.results[0].cell);
            assert_eq!(r.results[0].score, reference.results[0].score);
            // Without hedging the same run times the shard out.
            let no_hedge = ScatterPolicy::require_all().with_soft_deadline_ticks(5_000);
            let r2 = scatter_gather_top_k(
                &model,
                archive,
                5,
                &ExecutionBudget::unlimited(),
                &no_hedge,
                &pool,
            )
            .unwrap();
            assert_eq!(r2.shards[slow].outcome, ShardOutcome::TimedOut);
            assert_eq!(r2.shards[slow].budget_stop, Some(BudgetStop::Deadline));
        });
    }

    #[test]
    fn pre_cancelled_query_degrades_identically_at_every_thread_count() {
        let (model, _, worlds) = sharded_world(2, 32, 32, 4, 4);
        with_archive(&worlds, |archive| {
            let token = CancelToken::new();
            token.cancel();
            let mut outputs = Vec::new();
            for threads in [1usize, 2, 4, 8] {
                let pool = WorkerPool::new(threads);
                let r = scatter_gather_top_k_cancellable(
                    &model,
                    archive,
                    3,
                    &ExecutionBudget::unlimited(),
                    &ScatterPolicy::best_effort(),
                    &token,
                    &pool,
                )
                .unwrap();
                assert_eq!(r.budget_stop, Some(BudgetStop::Cancelled));
                assert!(r.completeness < 1.0);
                outputs.push(r.results);
            }
            for other in &outputs[1..] {
                assert_eq!(&outputs[0], other, "cancelled results diverge by threads");
            }
        });
    }

    #[test]
    fn topology_validation_rejects_malformed_archives() {
        let (_, _, worlds) = sharded_world(2, 32, 32, 4, 2);
        let sources: Vec<TileSource<'_>> = worlds
            .iter()
            .map(|w| TileSource::new(&w.stores).unwrap())
            .collect();
        assert!(matches!(
            ShardedArchive::<TileSource<'_>>::new(Vec::new()),
            Err(CoreError::Query(_))
        ));
        // Gap between bands: second shard claims the wrong offset.
        let gappy = vec![
            ArchiveShard::new(&worlds[0].pyramids, &sources[0], 0),
            ArchiveShard::new(&worlds[1].pyramids, &sources[1], 17),
        ];
        assert!(ShardedArchive::new(gappy).is_err());
        // First shard must start at row 0.
        let late = vec![ArchiveShard::new(&worlds[0].pyramids, &sources[0], 4)];
        assert!(ShardedArchive::new(late).is_err());
        // Column mismatch.
        let narrow = smooth_grid(0, 16, 8);
        let narrow_pyr = vec![AggregatePyramid::build(&narrow)];
        let mixed = vec![
            ArchiveShard::new(&worlds[0].pyramids, &sources[0], 0),
            ArchiveShard::new(&narrow_pyr, &sources[1], 16),
        ];
        assert!(ShardedArchive::new(mixed).is_err());
        // k = 0 still rejected, through the shard entry point.
        let (model, _, worlds2) = sharded_world(2, 32, 32, 4, 2);
        with_archive(&worlds2, |archive| {
            let pool = WorkerPool::new(1);
            assert!(matches!(
                scatter_gather_top_k(
                    &model,
                    archive,
                    0,
                    &ExecutionBudget::unlimited(),
                    &ScatterPolicy::require_all(),
                    &pool,
                ),
                Err(ShardError::Core(CoreError::Query(_)))
            ));
        });
    }

    #[test]
    fn completion_policy_requirements_and_display() {
        assert_eq!(CompletionPolicy::RequireAll.required(4), 4);
        assert_eq!(CompletionPolicy::Quorum(2).required(4), 2);
        assert_eq!(CompletionPolicy::Quorum(9).required(4), 4);
        assert_eq!(CompletionPolicy::BestEffort.required(4), 0);
        assert_eq!(CompletionPolicy::RequireAll.to_string(), "require-all");
        assert_eq!(CompletionPolicy::Quorum(3).to_string(), "quorum(3)");
        assert_eq!(CompletionPolicy::BestEffort.to_string(), "best-effort");
        assert_eq!(ShardOutcome::TimedOut.to_string(), "timed-out");
        assert_eq!(ShardOutcome::Covered.to_string(), "covered");
        let err = InsufficientShards {
            responded: 1,
            required: 3,
            total: 4,
            failed: vec![1, 2, 3],
            epoch: TopologyEpoch::new(2),
        };
        assert!(err.to_string().contains("epoch e2"));
        let wrapped: ShardError = err.clone().into();
        assert!(Error::source(&wrapped).is_some());
        assert_eq!(wrapped.to_string(), err.to_string());
        let core_err: ShardError = CoreError::Query("bad".into()).into();
        assert!(Error::source(&core_err).is_some());
        let fence: ShardError = EpochMismatch {
            requested: TopologyEpoch::new(1),
            serving: TopologyEpoch::ZERO,
        }
        .into();
        assert!(Error::source(&fence).is_some());
        assert!(fence.to_string().contains("pinned topology epoch e1"));
    }

    /// A spread of query directions over `arity` shared attributes, like
    /// the batched engine's own test worlds: sign flips, magnitude skews,
    /// and offsets so floors mature at different paces across the batch.
    fn batch_models(arity: usize, m: usize) -> Vec<LinearModel> {
        (0..m)
            .map(|qi| {
                let coeffs: Vec<f64> = (0..arity)
                    .map(|a| 1.0 - 0.3 * a as f64 + 0.17 * qi as f64 - 0.09 * (a * qi) as f64)
                    .collect();
                LinearModel::new(coeffs, 0.25 * qi as f64).unwrap()
            })
            .collect()
    }

    #[test]
    fn healthy_batched_scatter_matches_solo_scatter_per_query() {
        let (_, _, worlds) = sharded_world(3, 64, 64, 4, 4);
        let models = batch_models(3, 5);
        let budget = ExecutionBudget::unlimited();
        let policy = ScatterPolicy::require_all();
        // At one pool thread the shards run in submission order for both
        // paths, so even the per-query effort reports coincide exactly.
        let solos: Vec<ShardedTopK> = models
            .iter()
            .map(|model| {
                with_archive(&worlds, |archive| {
                    scatter_gather_top_k(model, archive, 7, &budget, &policy, &WorkerPool::new(1))
                        .unwrap()
                })
            })
            .collect();
        with_archive(&worlds, |archive| {
            let batch = batched_scatter_gather_top_k(
                &models,
                archive,
                7,
                &budget,
                &policy,
                &WorkerPool::new(1),
            )
            .unwrap();
            assert_eq!(batch.queries.len(), models.len());
            for (q, solo) in solos.iter().enumerate() {
                let b = &batch.queries[q];
                assert_eq!(b.results, solo.results, "q={q}");
                assert_eq!(b.effort, solo.effort, "q={q}");
                assert_eq!(b.completeness, 1.0);
                assert_eq!(b.budget_stop, None);
                assert!(b.skipped_pages.is_empty());
                assert!(b.shards.iter().all(|s| s.outcome == ShardOutcome::Complete));
            }
        });
        // At higher thread counts the shared-bound timing shifts effort,
        // but healthy merged answers stay identical per query.
        for threads in [2usize, 4, 8] {
            with_archive(&worlds, |archive| {
                let batch = batched_scatter_gather_top_k(
                    &models,
                    archive,
                    7,
                    &budget,
                    &policy,
                    &WorkerPool::new(threads),
                )
                .unwrap();
                for (q, solo) in solos.iter().enumerate() {
                    assert_eq!(
                        batch.queries[q].results, solo.results,
                        "threads={threads} q={q}"
                    );
                    assert!(!batch.queries[q].is_degraded());
                }
            });
        }
    }

    #[test]
    fn batched_scatter_amortizes_pages_across_queries() {
        let (_, _, worlds) = sharded_world(3, 64, 64, 4, 8);
        let models = batch_models(3, 6);
        let budget = ExecutionBudget::unlimited();
        let policy = ScatterPolicy::require_all();
        let solo_pages: u64 = models
            .iter()
            .map(|model| {
                with_archive(&worlds, |archive| {
                    let r = scatter_gather_top_k(
                        model,
                        archive,
                        7,
                        &budget,
                        &policy,
                        &WorkerPool::new(1),
                    )
                    .unwrap();
                    r.shards.iter().map(|s| s.pages_read).sum::<u64>()
                })
            })
            .sum();
        with_archive(&worlds, |archive| {
            let batch = batched_scatter_gather_top_k(
                &models,
                archive,
                7,
                &budget,
                &policy,
                &WorkerPool::new(1),
            )
            .unwrap();
            // One scatter serves the whole batch: overlapping queries
            // share page reads, so the batch reads strictly fewer pages
            // than six independent scatters.
            assert!(
                batch.pages_read < solo_pages,
                "batch read {} pages vs {solo_pages} across solos",
                batch.pages_read
            );
            assert!(batch.cell_requests >= batch.cells_fetched);
            assert!(
                batch.bound_requests > batch.bound_evals,
                "no bound-vector sharing: {} requests, {} evals",
                batch.bound_requests,
                batch.bound_evals
            );
        });
    }

    #[test]
    fn dead_shard_degrades_batched_answers_like_solo_scatter() {
        let (_, _, mut worlds) = sharded_world(2, 64, 64, 4, 4);
        let models = batch_models(2, 4);
        kill_shard(&mut worlds[0]);
        let budget = ExecutionBudget::unlimited();
        // Permanent faults are stateless across read attempts, so the
        // batched verdicts coincide with solo scatter verdicts per query.
        let solos: Vec<ShardedTopK> = models
            .iter()
            .map(|model| {
                with_archive(&worlds, |archive| {
                    scatter_gather_top_k(
                        model,
                        archive,
                        5,
                        &budget,
                        &ScatterPolicy::best_effort(),
                        &WorkerPool::new(1),
                    )
                    .unwrap()
                })
            })
            .collect();
        with_archive(&worlds, |archive| {
            let batch = batched_scatter_gather_top_k(
                &models,
                archive,
                5,
                &budget,
                &ScatterPolicy::best_effort(),
                &WorkerPool::new(1),
            )
            .unwrap();
            for (q, solo) in solos.iter().enumerate() {
                let b = &batch.queries[q];
                assert_eq!(b.results, solo.results, "q={q}");
                assert_eq!(b.completeness, solo.completeness, "q={q}");
                assert_eq!(b.skipped_pages, solo.skipped_pages, "q={q}");
                assert_eq!(b.shards[0].outcome, ShardOutcome::Failed);
                assert_eq!(b.responded(), 3);
            }
            // The quorum verdict is physical, shared by the whole batch.
            match batched_scatter_gather_top_k(
                &models,
                archive,
                5,
                &budget,
                &ScatterPolicy::require_all(),
                &WorkerPool::new(1),
            ) {
                Err(ShardError::Insufficient(e)) => {
                    assert_eq!(e.responded, 3);
                    assert_eq!(e.failed, vec![0]);
                }
                other => panic!("expected InsufficientShards, got {other:?}"),
            }
        });
    }

    #[test]
    fn batched_straggler_shard_is_hedged_and_recovers() {
        let (_, global, mut worlds) = sharded_world(2, 64, 64, 4, 4);
        let models = batch_models(2, 3);
        // Slow down the band holding query 0's global winner: no shared
        // bound can exclude it, so its primary attempt must read a page,
        // eat the injected latency, and trip the soft deadline — the
        // batch-wide stop marks the shard a straggler.
        let reference_stores: Vec<TileStore> = (0..2)
            .map(|i| TileStore::new(smooth_grid(i, 64, 64), 4).unwrap())
            .collect();
        let reference_src = TileSource::new(&reference_stores).unwrap();
        let reference = resilient_top_k(
            &models[0],
            &global,
            5,
            &reference_src,
            &ExecutionBudget::unlimited(),
        )
        .unwrap();
        let slow = reference.results[0].cell.row / (64 / 4);
        let profile = (0..worlds[slow].stores[0].page_count())
            .fold(FaultProfile::new(0), |p, page| p.latency(page, 10_000));
        worlds[slow].stores = worlds[slow]
            .stores
            .iter()
            .map(|s| s.clone().with_faults(profile.clone()))
            .collect();
        let healthy_solos: Vec<ShardedTopK> = models
            .iter()
            .map(|model| {
                with_archive(&worlds, |archive| {
                    scatter_gather_top_k(
                        model,
                        archive,
                        5,
                        &ExecutionBudget::unlimited(),
                        &ScatterPolicy::require_all(),
                        &WorkerPool::new(1),
                    )
                    .unwrap()
                })
            })
            .collect();
        with_archive(&worlds, |archive| {
            let policy = ScatterPolicy::require_all()
                .with_soft_deadline_ticks(5_000)
                .with_hedged_stragglers();
            let batch = batched_scatter_gather_top_k(
                &models,
                archive,
                5,
                &ExecutionBudget::unlimited(),
                &policy,
                &WorkerPool::new(4),
            )
            .unwrap();
            for (q, solo) in healthy_solos.iter().enumerate() {
                let report = &batch.queries[q].shards[slow];
                assert!(report.hedged, "q={q}: slow shard was not hedged");
                assert!(report.hedge_won, "q={q}: hedge attempt should win");
                assert_ne!(report.outcome, ShardOutcome::TimedOut);
                assert_eq!(batch.queries[q].results, solo.results, "q={q}");
            }
        });
    }

    #[test]
    fn pre_cancelled_batched_scatter_degrades_every_query() {
        let (_, _, worlds) = sharded_world(2, 32, 32, 4, 4);
        let models = batch_models(2, 3);
        with_archive(&worlds, |archive| {
            let token = CancelToken::new();
            token.cancel();
            let batch = batched_scatter_gather_top_k_cancellable(
                &models,
                archive,
                3,
                &ExecutionBudget::unlimited(),
                &ScatterPolicy::best_effort(),
                &token,
                &WorkerPool::new(2),
            )
            .unwrap();
            for q in &batch.queries {
                assert_eq!(q.budget_stop, Some(BudgetStop::Cancelled));
                assert!(q.completeness < 1.0);
                assert!(q.is_degraded());
            }
        });
    }

    #[test]
    fn batched_scatter_rejects_empty_and_mismatched_batches() {
        let (_, _, worlds) = sharded_world(2, 32, 32, 4, 2);
        with_archive(&worlds, |archive| {
            let pool = WorkerPool::new(1);
            let budget = ExecutionBudget::unlimited();
            let empty = batched_scatter_gather_top_k::<TileSource<'_>>(
                &[],
                archive,
                3,
                &budget,
                &ScatterPolicy::require_all(),
                &pool,
            )
            .unwrap();
            assert!(empty.queries.is_empty());
            assert_eq!(empty.pages_read, 0);
            let mismatched = vec![
                LinearModel::new(vec![1.0, 0.5], 0.0).unwrap(),
                LinearModel::new(vec![1.0], 0.0).unwrap(),
            ];
            assert!(matches!(
                batched_scatter_gather_top_k(
                    &mismatched,
                    archive,
                    3,
                    &budget,
                    &ScatterPolicy::require_all(),
                    &pool,
                ),
                Err(ShardError::Core(CoreError::Query(_)))
            ));
        });
    }
}
