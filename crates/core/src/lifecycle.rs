//! Query lifecycle management: cooperative cancellation, admission
//! control, and load shedding.
//!
//! The budget machinery (DESIGN.md §8) bounds how much work a single
//! query may do; this module bounds how much work the *system* accepts
//! in the first place, and lets callers abandon queries that are already
//! running. Three pieces compose:
//!
//! - [`CancelToken`] — a latching atomic flag threaded through the
//!   sequential and parallel resilient engines exactly like
//!   [`WallDeadline`](crate::resilient::WallDeadline). Engines poll it at
//!   page granularity; cancellation surfaces as
//!   [`BudgetStop::Cancelled`](crate::resilient::BudgetStop) with the
//!   same sound-bounds degradation contract as every other early stop.
//! - [`AdmissionController`] — a bounded in-flight slot table with one
//!   FIFO queue per [`Priority`] class. Admission always drains the
//!   highest class first, so interactive traffic cannot be starved by a
//!   batch backlog.
//! - Load shedding — when the queue depth or the predicted queue wait
//!   (on the simulated tick clock) exceeds policy, [`Priority::BestEffort`]
//!   submissions are rejected up front with a typed [`Overloaded`] error
//!   instead of timing out downstream after consuming engine work.
//!
//! Every session walks the state machine
//! `Queued → Admitted → Running → {Done, Cancelled}`, or is `Shed` at the
//! door (see [`LifecycleState`]). The controller is deterministic: it
//! never reads a clock itself — callers pass the simulated tick time
//! explicitly — so harness runs replay bit-identically.

use std::collections::VecDeque;
use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// A shared, latching cancellation flag polled at engine checkpoints.
///
/// Cloning yields a handle to the *same* flag: the caller keeps one clone
/// and hands another to the engine (or stores it in an
/// [`AdmissionController`] session). Cancellation latches — once
/// [`cancel`](CancelToken::cancel) runs, every later
/// [`is_cancelled`](CancelToken::is_cancelled) on any thread reports
/// `true` — mirroring the [`WallDeadline`](crate::resilient::WallDeadline)
/// latch so all parallel workers stop at their next checkpoint.
///
/// # Examples
///
/// ```
/// use mbir_core::lifecycle::CancelToken;
///
/// let token = CancelToken::new();
/// let handle = token.clone();
/// assert!(!token.is_cancelled());
/// handle.cancel();
/// assert!(token.is_cancelled());
/// ```
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// Creates a fresh, uncancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Latches the token cancelled. Idempotent.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether the token has been cancelled (latching).
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// Scheduling class of a query session. Admission drains classes in
/// declared order; only [`Priority::BestEffort`] is ever load-shed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Priority {
    /// A human is waiting: admitted first, never shed.
    Interactive,
    /// Throughput work (index builds, sweeps): admitted after
    /// interactive, never shed.
    Batch,
    /// Opportunistic work: admitted last and rejected up front with
    /// [`Overloaded`] when the system is saturated.
    BestEffort,
}

impl Priority {
    /// All classes in admission order (highest first).
    pub const ALL: [Priority; 3] = [Priority::Interactive, Priority::Batch, Priority::BestEffort];

    /// Stable array index of this class: its position in [`Priority::ALL`].
    pub fn index(self) -> usize {
        match self {
            Priority::Interactive => 0,
            Priority::Batch => 1,
            Priority::BestEffort => 2,
        }
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Priority::Interactive => "interactive",
            Priority::Batch => "batch",
            Priority::BestEffort => "best-effort",
        })
    }
}

/// Where a session is in the lifecycle state machine
/// `Queued → Admitted → Running → {Done, Cancelled}` (shed sessions never
/// enter the machine; see [`AdmissionController::submit`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LifecycleState {
    /// Waiting in its priority queue for a slot.
    Queued,
    /// Holds an in-flight slot; the engine has not started yet.
    Admitted,
    /// The engine is executing (its [`CancelToken`] is live).
    Running,
    /// Completed and released its slot.
    Done,
    /// Cancelled — while queued, or mid-flight via its token.
    Cancelled,
}

/// The typed fail-fast rejection returned when a best-effort submission
/// is load-shed. Carries enough context to log or retry later without
/// querying the controller again.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Overloaded {
    /// Class of the rejected submission.
    pub priority: Priority,
    /// Total queued sessions (all classes) at rejection time.
    pub queue_depth: usize,
    /// Predicted queue wait in simulated ticks at rejection time.
    pub predicted_wait_ticks: u64,
}

impl fmt::Display for Overloaded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "overloaded: {} submission shed (queue depth {}, predicted wait {} ticks)",
            self.priority, self.queue_depth, self.predicted_wait_ticks
        )
    }
}

impl Error for Overloaded {}

/// Admission and shedding policy. All thresholds are inclusive caps; a
/// submission or admission that would exceed one is refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionPolicy {
    /// Bounded slot table: how many sessions may hold a slot (Admitted or
    /// Running) at once.
    pub max_in_flight: usize,
    /// Best-effort submissions are shed once this many sessions are
    /// queued across all classes.
    pub max_queue_depth: usize,
    /// Best-effort submissions are shed once the predicted queue wait
    /// exceeds this many simulated ticks.
    pub max_queued_ticks: u64,
    /// Expected per-query cost in simulated ticks, used to predict queue
    /// wait (`ceil(backlog / max_in_flight) * expected`).
    pub expected_ticks_per_query: u64,
}

impl Default for AdmissionPolicy {
    fn default() -> Self {
        AdmissionPolicy {
            max_in_flight: 4,
            max_queue_depth: 16,
            max_queued_ticks: 1024,
            expected_ticks_per_query: 64,
        }
    }
}

impl AdmissionPolicy {
    /// Sets the in-flight slot count (builder style; clamped to ≥ 1).
    pub fn with_max_in_flight(mut self, slots: usize) -> Self {
        self.max_in_flight = slots.max(1);
        self
    }

    /// Sets the shed threshold on total queue depth (builder style).
    pub fn with_max_queue_depth(mut self, depth: usize) -> Self {
        self.max_queue_depth = depth;
        self
    }

    /// Sets the shed threshold on predicted queue wait (builder style).
    pub fn with_max_queued_ticks(mut self, ticks: u64) -> Self {
        self.max_queued_ticks = ticks;
        self
    }

    /// Sets the expected per-query tick cost (builder style).
    pub fn with_expected_ticks_per_query(mut self, ticks: u64) -> Self {
        self.expected_ticks_per_query = ticks;
        self
    }
}

/// Opaque handle to a session inside one [`AdmissionController`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(u64);

/// Per-priority lifecycle counters (see [`AdmissionController::counters`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassCounters {
    /// Sessions offered to [`AdmissionController::submit`], including
    /// shed ones.
    pub submitted: u64,
    /// Sessions rejected up front with [`Overloaded`].
    pub shed: u64,
    /// Sessions cancelled while queued or running.
    pub cancelled: u64,
    /// Sessions that ran to completion.
    pub completed: u64,
}

#[derive(Debug)]
struct Session {
    priority: Priority,
    state: LifecycleState,
    token: CancelToken,
    queued_at: u64,
    admitted_at: Option<u64>,
    finished_at: Option<u64>,
}

/// Everything a caller may want to know about one session, snapshotted
/// under the controller lock.
#[derive(Debug, Clone)]
pub struct SessionInfo {
    /// Scheduling class.
    pub priority: Priority,
    /// Current lifecycle state.
    pub state: LifecycleState,
    /// Tick time the session was submitted.
    pub queued_at: u64,
    /// Tick time it was admitted to a slot, if it has been.
    pub admitted_at: Option<u64>,
    /// Tick time it finished (done or cancelled), if it has.
    pub finished_at: Option<u64>,
}

#[derive(Debug, Default)]
struct Inner {
    sessions: Vec<Session>,
    queues: [VecDeque<usize>; 3],
    in_flight: usize,
    counters: [ClassCounters; 3],
}

/// A bounded in-flight slot table with per-priority queues and
/// best-effort load shedding.
///
/// The controller is a pure scheduler: it never runs queries itself.
/// Callers [`submit`](AdmissionController::submit) sessions,
/// [`try_admit`](AdmissionController::try_admit) them into slots,
/// [`begin`](AdmissionController::begin) to obtain the session's
/// [`CancelToken`] for the engine call, and
/// [`complete`](AdmissionController::complete) (or
/// [`cancel`](AdmissionController::cancel)) to release the slot.
///
/// Determinism: no method reads a clock; the caller passes the simulated
/// tick time (`now_ticks`) explicitly, so a harness driving the
/// controller off the archive's virtual I/O clock replays bit-identically.
///
/// # Examples
///
/// ```
/// use mbir_core::lifecycle::{AdmissionController, AdmissionPolicy, Priority};
///
/// let ctl = AdmissionController::new(AdmissionPolicy::default().with_max_in_flight(1));
/// let id = ctl.submit(Priority::Interactive, 0).expect("never shed");
/// let admitted = ctl.try_admit(0).expect("slot free");
/// assert_eq!(admitted, id);
/// let token = ctl.begin(id);
/// assert!(!token.is_cancelled());
/// ctl.complete(id, 10);
/// assert_eq!(ctl.counters(Priority::Interactive).completed, 1);
/// ```
#[derive(Debug)]
pub struct AdmissionController {
    policy: AdmissionPolicy,
    inner: Mutex<Inner>,
}

impl AdmissionController {
    /// Creates an empty controller under `policy`.
    pub fn new(policy: AdmissionPolicy) -> Self {
        AdmissionController {
            policy,
            inner: Mutex::new(Inner::default()),
        }
    }

    /// The policy this controller enforces.
    pub fn policy(&self) -> AdmissionPolicy {
        self.policy
    }

    /// Offers a session for admission at tick time `now_ticks`.
    ///
    /// Interactive and batch submissions always enqueue. Best-effort
    /// submissions are load-shed — rejected with [`Overloaded`] before
    /// consuming any engine work — when either shedding trigger fires:
    /// the total queue depth has reached `max_queue_depth`, or the
    /// predicted queue wait (`ceil(backlog / max_in_flight) *
    /// expected_ticks_per_query`, where backlog counts queued and
    /// in-flight sessions) exceeds `max_queued_ticks`.
    ///
    /// # Errors
    ///
    /// Returns [`Overloaded`] for a shed best-effort submission.
    pub fn submit(&self, priority: Priority, now_ticks: u64) -> Result<SessionId, Overloaded> {
        let mut inner = self.inner.lock().expect("admission lock");
        let depth: usize = inner.queues.iter().map(VecDeque::len).sum();
        let backlog = depth + inner.in_flight;
        let waves = backlog.div_ceil(self.policy.max_in_flight) as u64;
        let predicted_wait = waves * self.policy.expected_ticks_per_query;
        inner.counters[priority.index()].submitted += 1;
        if priority == Priority::BestEffort
            && (depth >= self.policy.max_queue_depth
                || predicted_wait > self.policy.max_queued_ticks)
        {
            inner.counters[priority.index()].shed += 1;
            return Err(Overloaded {
                priority,
                queue_depth: depth,
                predicted_wait_ticks: predicted_wait,
            });
        }
        let slot = inner.sessions.len();
        inner.sessions.push(Session {
            priority,
            state: LifecycleState::Queued,
            token: CancelToken::new(),
            queued_at: now_ticks,
            admitted_at: None,
            finished_at: None,
        });
        inner.queues[priority.index()].push_back(slot);
        Ok(SessionId(slot as u64))
    }

    /// Admits the highest-priority queued session into a free slot, or
    /// returns `None` when the slot table is full or every queue is
    /// empty. Within a class, admission is FIFO.
    pub fn try_admit(&self, now_ticks: u64) -> Option<SessionId> {
        let mut inner = self.inner.lock().expect("admission lock");
        if inner.in_flight >= self.policy.max_in_flight {
            return None;
        }
        for q in 0..inner.queues.len() {
            if let Some(slot) = inner.queues[q].pop_front() {
                inner.in_flight += 1;
                let session = &mut inner.sessions[slot];
                session.state = LifecycleState::Admitted;
                session.admitted_at = Some(now_ticks);
                return Some(SessionId(slot as u64));
            }
        }
        None
    }

    /// Marks an admitted session running and returns a clone of its
    /// [`CancelToken`] to thread into the engine call.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not in the `Admitted` state (a scheduler-usage
    /// bug, not a load condition).
    pub fn begin(&self, id: SessionId) -> CancelToken {
        let mut inner = self.inner.lock().expect("admission lock");
        let session = &mut inner.sessions[id.0 as usize];
        assert_eq!(
            session.state,
            LifecycleState::Admitted,
            "begin() requires an admitted session"
        );
        session.state = LifecycleState::Running;
        session.token.clone()
    }

    /// Marks a running session done and releases its slot.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not in the `Running` state.
    pub fn complete(&self, id: SessionId, now_ticks: u64) {
        let mut inner = self.inner.lock().expect("admission lock");
        let session = &mut inner.sessions[id.0 as usize];
        assert_eq!(
            session.state,
            LifecycleState::Running,
            "complete() requires a running session"
        );
        session.state = LifecycleState::Done;
        session.finished_at = Some(now_ticks);
        let priority = session.priority;
        inner.in_flight -= 1;
        inner.counters[priority.index()].completed += 1;
    }

    /// Cancels a session: removes it from its queue if still queued (the
    /// ledger moves it to `cancelled`, never `completed`), releases its
    /// slot if it held one, and latches its token. Idempotent on finished
    /// sessions — cancelling a `Done` or already-`Cancelled` session is a
    /// no-op that leaves its token and counters untouched.
    pub fn cancel(&self, id: SessionId, now_ticks: u64) {
        let mut inner = self.inner.lock().expect("admission lock");
        let slot = id.0 as usize;
        let session = &inner.sessions[slot];
        let priority = session.priority;
        match session.state {
            LifecycleState::Queued => {
                inner.queues[priority.index()].retain(|&s| s != slot);
            }
            LifecycleState::Admitted | LifecycleState::Running => {
                inner.in_flight -= 1;
            }
            LifecycleState::Done | LifecycleState::Cancelled => return,
        }
        let session = &mut inner.sessions[slot];
        session.token.cancel();
        session.state = LifecycleState::Cancelled;
        session.finished_at = Some(now_ticks);
        inner.counters[priority.index()].cancelled += 1;
    }

    /// Snapshot of one session's lifecycle, or `None` for an unknown id.
    pub fn session(&self, id: SessionId) -> Option<SessionInfo> {
        let inner = self.inner.lock().expect("admission lock");
        inner.sessions.get(id.0 as usize).map(|s| SessionInfo {
            priority: s.priority,
            state: s.state,
            queued_at: s.queued_at,
            admitted_at: s.admitted_at,
            finished_at: s.finished_at,
        })
    }

    /// Current lifecycle state of a session, or `None` for an unknown id.
    pub fn state(&self, id: SessionId) -> Option<LifecycleState> {
        self.session(id).map(|s| s.state)
    }

    /// Sessions currently holding slots (Admitted or Running).
    pub fn in_flight(&self) -> usize {
        self.inner.lock().expect("admission lock").in_flight
    }

    /// Sessions currently queued across all classes.
    pub fn queue_depth(&self) -> usize {
        let inner = self.inner.lock().expect("admission lock");
        inner.queues.iter().map(VecDeque::len).sum()
    }

    /// Lifecycle counters for one priority class.
    pub fn counters(&self, priority: Priority) -> ClassCounters {
        let inner = self.inner.lock().expect("admission lock");
        inner.counters[priority.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancel_token_latches_and_is_shared() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!token.is_cancelled());
        clone.cancel();
        assert!(token.is_cancelled());
        clone.cancel(); // idempotent
        assert!(clone.is_cancelled());
    }

    #[test]
    fn admission_is_priority_ordered_and_fifo_within_class() {
        let ctl = AdmissionController::new(AdmissionPolicy::default().with_max_in_flight(8));
        let b1 = ctl.submit(Priority::Batch, 0).unwrap();
        let e1 = ctl.submit(Priority::BestEffort, 0).unwrap();
        let i1 = ctl.submit(Priority::Interactive, 0).unwrap();
        let i2 = ctl.submit(Priority::Interactive, 0).unwrap();
        assert_eq!(ctl.queue_depth(), 4);
        assert_eq!(ctl.try_admit(1), Some(i1));
        assert_eq!(ctl.try_admit(1), Some(i2));
        assert_eq!(ctl.try_admit(1), Some(b1));
        assert_eq!(ctl.try_admit(1), Some(e1));
        assert_eq!(ctl.try_admit(1), None);
        assert_eq!(ctl.in_flight(), 4);
    }

    #[test]
    fn slot_table_is_bounded() {
        let ctl = AdmissionController::new(AdmissionPolicy::default().with_max_in_flight(2));
        let a = ctl.submit(Priority::Interactive, 0).unwrap();
        let _b = ctl.submit(Priority::Interactive, 0).unwrap();
        let _c = ctl.submit(Priority::Interactive, 0).unwrap();
        assert!(ctl.try_admit(0).is_some());
        assert!(ctl.try_admit(0).is_some());
        assert_eq!(ctl.try_admit(0), None, "slot table full");
        let token = ctl.begin(a);
        assert!(!token.is_cancelled());
        ctl.complete(a, 5);
        assert!(ctl.try_admit(5).is_some(), "slot released");
        assert_eq!(ctl.state(a), Some(LifecycleState::Done));
    }

    #[test]
    fn best_effort_is_shed_on_queue_depth() {
        let policy = AdmissionPolicy::default()
            .with_max_in_flight(1)
            .with_max_queue_depth(2)
            .with_max_queued_ticks(u64::MAX)
            .with_expected_ticks_per_query(1);
        let ctl = AdmissionController::new(policy);
        ctl.submit(Priority::Batch, 0).unwrap();
        ctl.submit(Priority::Batch, 0).unwrap();
        let err = ctl.submit(Priority::BestEffort, 0).unwrap_err();
        assert_eq!(err.priority, Priority::BestEffort);
        assert_eq!(err.queue_depth, 2);
        assert_eq!(ctl.counters(Priority::BestEffort).shed, 1);
        // Interactive and batch are never shed.
        ctl.submit(Priority::Interactive, 0).unwrap();
        ctl.submit(Priority::Batch, 0).unwrap();
    }

    #[test]
    fn best_effort_is_shed_on_predicted_wait() {
        let policy = AdmissionPolicy::default()
            .with_max_in_flight(1)
            .with_max_queue_depth(usize::MAX)
            .with_max_queued_ticks(100)
            .with_expected_ticks_per_query(60);
        let ctl = AdmissionController::new(policy);
        // Empty system: predicted wait 0, admitted.
        let ok = ctl.submit(Priority::BestEffort, 0).unwrap();
        assert_eq!(ctl.state(ok), Some(LifecycleState::Queued));
        // One queued session → backlog 1 → one wave of 60 ticks ≤ 100: ok.
        ctl.submit(Priority::BestEffort, 0).unwrap();
        // Backlog 2 → 2 waves × 60 = 120 > 100: shed.
        let err = ctl.submit(Priority::BestEffort, 0).unwrap_err();
        assert_eq!(err.predicted_wait_ticks, 120);
        assert_eq!(ctl.counters(Priority::BestEffort).shed, 1);
        assert_eq!(ctl.counters(Priority::BestEffort).submitted, 3);
    }

    #[test]
    fn cancel_while_queued_removes_from_queue() {
        let ctl = AdmissionController::new(AdmissionPolicy::default().with_max_in_flight(1));
        let a = ctl.submit(Priority::Interactive, 0).unwrap();
        let b = ctl.submit(Priority::Interactive, 0).unwrap();
        ctl.cancel(a, 1);
        assert_eq!(ctl.state(a), Some(LifecycleState::Cancelled));
        assert_eq!(ctl.try_admit(2), Some(b), "cancelled session skipped");
        assert_eq!(ctl.counters(Priority::Interactive).cancelled, 1);
    }

    #[test]
    fn cancel_while_queued_lands_in_the_cancelled_ledger_column() {
        // Regression: a queued entry cancelled before admission must be
        // accounted as `cancelled`, never `completed`, and the per-class
        // ledger must still close (submitted = shed + cancelled +
        // completed + still-live).
        let ctl = AdmissionController::new(AdmissionPolicy::default().with_max_in_flight(1));
        let queued = ctl.submit(Priority::Interactive, 0).unwrap();
        let runs = ctl.submit(Priority::Interactive, 0).unwrap();
        ctl.cancel(queued, 1);
        let c = ctl.counters(Priority::Interactive);
        assert_eq!(c.cancelled, 1, "queued cancel must count as cancelled");
        assert_eq!(c.completed, 0, "queued cancel must not count as completed");
        assert_eq!(ctl.try_admit(2), Some(runs));
        ctl.begin(runs);
        ctl.complete(runs, 3);
        let c = ctl.counters(Priority::Interactive);
        assert_eq!(c.submitted, 2);
        assert_eq!(c.shed + c.cancelled + c.completed, 2, "ledger closes");
        // A cancelled-while-queued session can never be admitted later.
        assert_eq!(ctl.try_admit(4), None);
        assert_eq!(ctl.state(queued), Some(LifecycleState::Cancelled));
    }

    #[test]
    fn cancelling_a_finished_session_leaves_its_token_untouched() {
        // Idempotence, PR-5 hedging style: the loser of a cancel/complete
        // race leaves no state. Cancelling after completion must not
        // latch the (possibly still shared) token or touch the ledger.
        let ctl = AdmissionController::new(AdmissionPolicy::default().with_max_in_flight(1));
        let a = ctl.submit(Priority::Batch, 0).unwrap();
        assert_eq!(ctl.try_admit(0), Some(a));
        let token = ctl.begin(a);
        ctl.complete(a, 2);
        ctl.cancel(a, 3);
        assert!(
            !token.is_cancelled(),
            "cancel after completion must not latch the token"
        );
        assert_eq!(ctl.state(a), Some(LifecycleState::Done));
        let c = ctl.counters(Priority::Batch);
        assert_eq!((c.completed, c.cancelled), (1, 0));
    }

    #[test]
    fn cancel_while_running_latches_token_and_frees_slot() {
        let ctl = AdmissionController::new(AdmissionPolicy::default().with_max_in_flight(1));
        let a = ctl.submit(Priority::Batch, 0).unwrap();
        let b = ctl.submit(Priority::Batch, 0).unwrap();
        assert_eq!(ctl.try_admit(0), Some(a));
        let token = ctl.begin(a);
        ctl.cancel(a, 3);
        assert!(token.is_cancelled(), "engine-side clone observes cancel");
        assert_eq!(ctl.state(a), Some(LifecycleState::Cancelled));
        assert_eq!(ctl.try_admit(3), Some(b), "slot released by cancel");
        ctl.cancel(a, 4); // idempotent on finished sessions
        assert_eq!(ctl.counters(Priority::Batch).cancelled, 1);
    }

    #[test]
    fn session_info_records_tick_times() {
        let ctl = AdmissionController::new(AdmissionPolicy::default());
        let a = ctl.submit(Priority::Interactive, 10).unwrap();
        assert_eq!(ctl.try_admit(25), Some(a));
        ctl.begin(a);
        ctl.complete(a, 40);
        let info = ctl.session(a).unwrap();
        assert_eq!(info.queued_at, 10);
        assert_eq!(info.admitted_at, Some(25));
        assert_eq!(info.finished_at, Some(40));
        assert_eq!(info.state, LifecycleState::Done);
    }

    #[test]
    fn overloaded_formats_and_is_an_error() {
        let err = Overloaded {
            priority: Priority::BestEffort,
            queue_depth: 9,
            predicted_wait_ticks: 512,
        };
        let msg = err.to_string();
        assert!(msg.contains("best-effort"), "{msg}");
        assert!(msg.contains("queue depth 9"), "{msg}");
        let _: &dyn Error = &err;
    }
}
