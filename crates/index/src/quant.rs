//! Quantized coarse-pass pruning over [`PointStore`] blocks.
//!
//! ## The prune-only contract
//!
//! The paper's thesis is progressive evaluation: cheap approximate models
//! eliminate most of the archive before the exact model runs. This module
//! applies that idea to the scoring inner loop itself. Each fixed-size
//! block of rows is packed into an i8 side structure (per-block,
//! per-dimension affine quantization) together with a **rigorously
//! derived error bound**, so a scan can reject a whole block — or a
//! single row — whose quantized upper bound falls below the current
//! K-th floor *before touching any f64 data*.
//!
//! The coarse pass may only **prune**, never decide: every row it lets
//! through is re-scored by the exact f64 kernel with the canonical
//! left-to-right summation order (see [`crate::kernels`]), and every row
//! it rejects is *provably* strictly below the floor, so it could not
//! have entered the top-K even on a tie (the tie-break in
//! [`crate::stats::rank_cmp`] only matters at exactly equal scores, and
//! pruning requires a **strict** `ub < floor`). Final answers are
//! bit-identical to the exact-only paths.
//!
//! ## The bound derivation
//!
//! For block `b` and dimension `j`, values are stored as
//! `x ≈ bias_j + scale_j · q` with `q ∈ [-127, 127]`. Three error sources
//! are covered, each by a measured or magnitude-capped term:
//!
//! 1. **Quantization error** `err_j`: the *measured* maximum of
//!    `|x - (bias_j + scale_j · q)|` over the block, padded by
//!    `4ε(maxabs_j + |bias_j| + 127·scale_j)` for the rounding of the
//!    measurement itself.
//! 2. **Summation error of the coarse pass**: the quantized dot
//!    `Σ coeff_j · q_j` (with `coeff_j = a_j · scale_j`) is an ≤ d-term
//!    f64 sum; its error is at most `γ_d · C` with
//!    `C = 127 · Σ |coeff_j|`.
//! 3. **Summation error of the exact kernel**: the f64 score the kernels
//!    produce differs from the real `Σ a_j x_j` by at most `γ_d · M`
//!    with `M = Σ |a_j| · maxabs_j` — the bound must dominate the
//!    *computed* exact score, not just the real one.
//!
//! The per-block slack is `Σ|a_j|·err_j + γ(M + B + 2C)` with
//! `B = Σ|a_j|·|bias_j|` and `γ = (2d + 8)ε` (a deliberately generous
//! constant for every ≤ d+2-term sum involved), padded once more
//! relatively and absolutely ([`pad_up`]) to absorb the final additions.
//! A block whose magnitude sum `M` exceeds [`OVERFLOW_GUARD`] is marked
//! unusable for that query (bound `+∞`, never pruned): below the guard
//! no partial sum of the exact kernel can overflow, which rules out NaN
//! scores sneaking past a finite bound.
//!
//! ## Layout
//!
//! Codes are stored transposed (SoA): `codes[j·m + i]` is dimension `j`
//! of row `i`, so the per-row coarse pass streams stride-1 across rows —
//! one i8 byte per element instead of eight f64 bytes — with a 4-lane
//! unrolled accumulation, and monomorphized variants for d ∈ {2, 3, 8}
//! dispatched once per query.

use crate::store::PointStore;

/// Rows per quantized block: big enough that the per-block prepared
/// bound amortizes, small enough that one block's codes live in L1 and
/// a block-level rejection stays fine-grained.
pub const QUANT_BLOCK_ROWS: usize = 512;

/// Rows per **sub-block corner**: inside each block, per-dimension
/// min/max codes are also kept at this granularity. A 512-row corner
/// over Gaussian-ish data is almost never below a top-K floor (the
/// per-dimension maxima of 512 samples stack up), but an 8-row corner
/// sits far enough down the max-order statistics to prune the vast
/// majority of sub-blocks with a single O(d) check — the difference
/// between "row-level filtering that costs as much as the exact
/// kernel" and "skipping 8 rows per compare". Power of two, so the
/// member→sub mapping in index walks is a shift.
pub const QUANT_SUB_ROWS: usize = 8;

/// Largest quantized magnitude: codes live in `[-127, 127]`.
const QMAX: f64 = 127.0;

/// Machine epsilon shorthand for the error-bound arithmetic.
const EPS: f64 = f64::EPSILON;

/// Magnitude cap above which a block is unusable for a query: with
/// `Σ|a_j|·maxabs_j` below this, no partial sum of the exact kernel can
/// overflow to ±∞ (and hence never produce NaN), so a finite quantized
/// bound soundly dominates the exact score.
const OVERFLOW_GUARD: f64 = 1e300;

/// Nudges a bound upward by a relative + tiny absolute pad, absorbing
/// the rounding of the final few additions that assemble the bound.
#[inline]
fn pad_up(x: f64) -> f64 {
    x + x.abs() * (16.0 * EPS) + f64::MIN_POSITIVE
}

/// One block's quantization: per-dimension affine codes plus everything
/// the per-query bound preparation needs.
#[derive(Debug, Clone)]
struct QuantBlock {
    /// First row of the block in the backing store.
    start: usize,
    /// Rows in this block (the last block may be ragged).
    rows: usize,
    /// False when the block holds non-finite data: such a block is never
    /// pruned (its bound is `+∞` for every query).
    usable: bool,
    /// Per-dimension quantization step (0.0 for constant dimensions).
    scale: Vec<f64>,
    /// Per-dimension affine offset (the interval midpoint).
    bias: Vec<f64>,
    /// Per-dimension measured + padded dequantization error bound.
    err: Vec<f64>,
    /// Per-dimension max |x| over the block (for summation slack).
    maxabs: Vec<f64>,
    /// Per-dimension min code over the block (block-level bound).
    qmin: Vec<i8>,
    /// Per-dimension max code over the block (block-level bound).
    qmax: Vec<i8>,
    /// Sub-blocks ([`QUANT_SUB_ROWS`]-row groups) in this block.
    subs: usize,
    /// Per-sub-block min codes, dim-major: `sub_qmin[j * subs + s]`.
    sub_qmin: Vec<i8>,
    /// Per-sub-block max codes, dim-major: `sub_qmax[j * subs + s]`.
    sub_qmax: Vec<i8>,
    /// Transposed (SoA) codes: `codes[j * rows + i]`.
    codes: Vec<i8>,
}

/// The i8 coarse-pass side structure over a [`PointStore`].
///
/// Build once per store ([`QuantizedStore::build`]), prepare once per
/// query direction ([`QuantizedStore::prepare`]), then ask the prepared
/// [`QuantQuery`] for block- and row-level upper bounds.
#[derive(Debug, Clone)]
pub struct QuantizedStore {
    dims: usize,
    rows: usize,
    blocks: Vec<QuantBlock>,
}

impl QuantizedStore {
    /// Quantizes `store` into [`QUANT_BLOCK_ROWS`]-row blocks.
    pub fn build(store: &PointStore) -> Self {
        let dims = store.dims();
        let rows = store.len();
        let flat = store.flat();
        let mut blocks = Vec::with_capacity(rows.div_ceil(QUANT_BLOCK_ROWS.max(1)));
        let mut start = 0usize;
        while start < rows {
            let m = QUANT_BLOCK_ROWS.min(rows - start);
            blocks.push(QuantBlock::pack(
                &flat[start * dims..(start + m) * dims],
                dims,
                start,
                m,
            ));
            start += m;
        }
        QuantizedStore { dims, rows, blocks }
    }

    /// Dimensions per row of the quantized store.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Rows covered by the quantized store.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of quantized blocks.
    pub fn blocks(&self) -> usize {
        self.blocks.len()
    }

    /// `(first_row, row_count)` of block `b`.
    pub fn block_range(&self, b: usize) -> (usize, usize) {
        let blk = &self.blocks[b];
        (blk.start, blk.rows)
    }

    /// The block index covering `row`.
    pub fn block_of(&self, row: usize) -> usize {
        row / QUANT_BLOCK_ROWS
    }

    /// Number of [`QUANT_SUB_ROWS`]-row sub-blocks in block `b`.
    pub fn subs(&self, b: usize) -> usize {
        self.blocks[b].subs
    }

    /// `(first_row, row_count)` of sub-block `s` of block `b`, in
    /// store-global row coordinates.
    pub fn sub_range(&self, b: usize, s: usize) -> (usize, usize) {
        let blk = &self.blocks[b];
        let lo = s * QUANT_SUB_ROWS;
        let hi = (lo + QUANT_SUB_ROWS).min(blk.rows);
        (blk.start + lo, hi - lo)
    }

    /// Prepares the per-query coarse state (block bounds, scaled
    /// coefficients, slack, and the d-specialized kernel dispatch) for
    /// one direction. O(blocks · d).
    ///
    /// # Panics
    ///
    /// Panics if the direction length does not match the store.
    pub fn prepare(&self, direction: &[f64]) -> QuantQuery {
        assert_eq!(direction.len(), self.dims, "direction length mismatch");
        let d = self.dims;
        let dir_ok = direction.iter().all(|a| a.is_finite());
        let gamma = (2 * d + 8) as f64 * EPS;
        let mut base = Vec::with_capacity(self.blocks.len());
        let mut slack = Vec::with_capacity(self.blocks.len());
        let mut block_ub = Vec::with_capacity(self.blocks.len());
        let mut coeff = Vec::with_capacity(self.blocks.len() * d);
        for blk in &self.blocks {
            let at = coeff.len();
            for (a, s) in direction.iter().zip(&blk.scale) {
                coeff.push(a * s);
            }
            if !blk.usable || !dir_ok {
                base.push(0.0);
                slack.push(f64::INFINITY);
                block_ub.push(f64::INFINITY);
                continue;
            }
            let c = &coeff[at..at + d];
            let mut b_sum = 0.0f64;
            let mut r_sum = 0.0f64;
            let mut m_sum = 0.0f64;
            let mut bmag = 0.0f64;
            let mut c_sum = 0.0f64;
            let mut maxq = 0.0f64;
            for j in 0..d {
                let a = direction[j];
                b_sum += a * blk.bias[j];
                r_sum += a.abs() * blk.err[j];
                m_sum += a.abs() * blk.maxabs[j];
                bmag += a.abs() * blk.bias[j].abs();
                c_sum += c[j].abs() * QMAX;
                maxq += (c[j] * f64::from(blk.qmin[j])).max(c[j] * f64::from(blk.qmax[j]));
            }
            // Overflow guard: beyond this, the exact kernel's partial sums
            // could overflow (or even produce NaN), which no finite bound
            // can dominate. `!(x <= GUARD)` also catches NaN magnitudes.
            if !(m_sum <= OVERFLOW_GUARD && bmag <= OVERFLOW_GUARD && c_sum <= OVERFLOW_GUARD) {
                base.push(0.0);
                slack.push(f64::INFINITY);
                block_ub.push(f64::INFINITY);
                continue;
            }
            let s = r_sum + gamma * (m_sum + bmag + 2.0 * c_sum);
            let s = s + s * (16.0 * EPS) + f64::MIN_POSITIVE;
            let ub = pad_up(b_sum + maxq + s);
            base.push(b_sum);
            slack.push(s);
            block_ub.push(if ub.is_finite() { ub } else { f64::INFINITY });
        }
        QuantQuery {
            dims: d,
            kernel: QuantKernel::of(d),
            base,
            slack,
            block_ub,
            coeff,
        }
    }
}

impl QuantBlock {
    fn pack(flat: &[f64], dims: usize, start: usize, m: usize) -> Self {
        let subs = m.div_ceil(QUANT_SUB_ROWS);
        let mut scale = vec![0.0f64; dims];
        let mut bias = vec![0.0f64; dims];
        let mut err = vec![0.0f64; dims];
        let mut maxabs = vec![0.0f64; dims];
        let mut qmin = vec![0i8; dims];
        let mut qmax = vec![0i8; dims];
        let mut sub_qmin = vec![0i8; dims * subs];
        let mut sub_qmax = vec![0i8; dims * subs];
        let mut codes = vec![0i8; dims * m];
        let mut usable = true;
        for j in 0..dims {
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            let mut amax = 0.0f64;
            for i in 0..m {
                let v = flat[i * dims + j];
                if !v.is_finite() {
                    usable = false;
                    break;
                }
                lo = lo.min(v);
                hi = hi.max(v);
                amax = amax.max(v.abs());
            }
            if !usable {
                break;
            }
            let mid = 0.5 * lo + 0.5 * hi;
            let step = (hi - lo) / (2.0 * QMAX);
            let step = if step.is_finite() && step > 0.0 {
                step
            } else {
                0.0
            };
            if !mid.is_finite() {
                usable = false;
                break;
            }
            let mut e = 0.0f64;
            let mut cmin = i8::MAX;
            let mut cmax = i8::MIN;
            for i in 0..m {
                let v = flat[i * dims + j];
                let q = if step == 0.0 {
                    0i8
                } else {
                    ((v - mid) / step).round().clamp(-QMAX, QMAX) as i8
                };
                codes[j * m + i] = q;
                cmin = cmin.min(q);
                cmax = cmax.max(q);
                e = e.max((v - (mid + step * f64::from(q))).abs());
            }
            // Pad the measured deviation for the rounding of the
            // measurement itself (a 3-op f64 chain per sample).
            let e = e + 4.0 * EPS * (amax + mid.abs() + step * QMAX);
            if !e.is_finite() {
                usable = false;
                break;
            }
            scale[j] = step;
            bias[j] = mid;
            err[j] = e;
            maxabs[j] = amax;
            qmin[j] = cmin;
            qmax[j] = cmax;
            // Sub-block corners: per-dimension min/max codes over each
            // sub-block group, the granularity at which pruning actually
            // fires on clustered data.
            for s in 0..subs {
                let lo_i = s * QUANT_SUB_ROWS;
                let hi_i = (lo_i + QUANT_SUB_ROWS).min(m);
                let mut scmin = i8::MAX;
                let mut scmax = i8::MIN;
                for &q in &codes[j * m + lo_i..j * m + hi_i] {
                    scmin = scmin.min(q);
                    scmax = scmax.max(q);
                }
                sub_qmin[j * subs + s] = scmin;
                sub_qmax[j * subs + s] = scmax;
            }
        }
        if !usable {
            // Neutral, never-pruning block: bound preparation returns +inf.
            scale.iter_mut().for_each(|v| *v = 0.0);
            bias.iter_mut().for_each(|v| *v = 0.0);
            err.iter_mut().for_each(|v| *v = 0.0);
            codes.iter_mut().for_each(|v| *v = 0);
            sub_qmin.iter_mut().for_each(|v| *v = 0);
            sub_qmax.iter_mut().for_each(|v| *v = 0);
        }
        QuantBlock {
            start,
            rows: m,
            usable,
            scale,
            bias,
            err,
            maxabs,
            qmin,
            qmax,
            subs,
            sub_qmin,
            sub_qmax,
            codes,
        }
    }
}

/// Monomorphized dispatch for the quantized dot, chosen **once per
/// query** (not per block, not per row). The d ∈ {2, 3, 8} variants let
/// the compiler fully unroll the dimension loop around the 4-lane row
/// accumulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum QuantKernel {
    D2,
    D3,
    D8,
    Dyn,
}

impl QuantKernel {
    fn of(dims: usize) -> Self {
        match dims {
            2 => QuantKernel::D2,
            3 => QuantKernel::D3,
            8 => QuantKernel::D8,
            _ => QuantKernel::Dyn,
        }
    }
}

/// A direction prepared against a [`QuantizedStore`]: per-block bases,
/// slacks, scaled coefficients, and ready-made block upper bounds.
#[derive(Debug, Clone)]
pub struct QuantQuery {
    dims: usize,
    kernel: QuantKernel,
    base: Vec<f64>,
    slack: Vec<f64>,
    block_ub: Vec<f64>,
    coeff: Vec<f64>,
}

impl QuantQuery {
    /// Sound upper bound on the exact f64 kernel score of **every** row
    /// in block `b` — an O(d) probe, no row data touched. `+∞` for
    /// blocks (or directions) the quantization cannot cover.
    #[inline]
    pub fn block_upper_bound(&self, b: usize) -> f64 {
        self.block_ub[b]
    }

    /// Sound per-row upper bounds for block `b`, written into `out`
    /// (cleared first; `out.len() == rows of b`). Streams the SoA i8
    /// codes with the query's monomorphized kernel: the only bytes
    /// touched are one i8 per element.
    pub fn row_upper_bounds(&self, store: &QuantizedStore, b: usize, out: &mut Vec<f64>) {
        let blk = &store.blocks[b];
        let m = blk.rows;
        out.clear();
        let s = self.slack[b];
        if !s.is_finite() {
            out.resize(m, f64::INFINITY);
            return;
        }
        out.resize(m, self.base[b] + s);
        let coeff = &self.coeff[b * self.dims..(b + 1) * self.dims];
        match self.kernel {
            QuantKernel::D2 => accumulate_codes::<2>(&blk.codes, m, coeff, out),
            QuantKernel::D3 => accumulate_codes::<3>(&blk.codes, m, coeff, out),
            QuantKernel::D8 => accumulate_codes::<8>(&blk.codes, m, coeff, out),
            QuantKernel::Dyn => accumulate_codes_dyn(&blk.codes, m, self.dims, coeff, out),
        }
        for u in out.iter_mut() {
            *u = pad_up(*u);
        }
    }

    /// Sound per-sub-block upper bounds for block `b`, written into
    /// `out` (cleared first; `out.len() == subs of b`). Each entry
    /// dominates the exact kernel score of every row in its
    /// [`QUANT_SUB_ROWS`]-row group — one O(d) corner per sub-block, the
    /// workhorse granularity of the coarse pass.
    pub fn sub_upper_bounds(&self, store: &QuantizedStore, b: usize, out: &mut Vec<f64>) {
        let blk = &store.blocks[b];
        let subs = blk.subs;
        out.clear();
        let s = self.slack[b];
        if !s.is_finite() {
            out.resize(subs, f64::INFINITY);
            return;
        }
        out.resize(subs, self.base[b] + s);
        let coeff = &self.coeff[b * self.dims..(b + 1) * self.dims];
        match self.kernel {
            QuantKernel::D2 => {
                corner_accumulate::<2>(&blk.sub_qmin, &blk.sub_qmax, subs, coeff, out)
            }
            QuantKernel::D3 => {
                corner_accumulate::<3>(&blk.sub_qmin, &blk.sub_qmax, subs, coeff, out)
            }
            QuantKernel::D8 => {
                corner_accumulate::<8>(&blk.sub_qmin, &blk.sub_qmax, subs, coeff, out)
            }
            QuantKernel::Dyn => {
                corner_accumulate_dyn(&blk.sub_qmin, &blk.sub_qmax, subs, self.dims, coeff, out)
            }
        }
        for u in out.iter_mut() {
            *u = pad_up(*u);
        }
    }

    /// Sound upper bound for a single row (`row` is store-global). The
    /// O(d) fallback for callers probing scattered rows, where a bulk
    /// SoA pass over the whole block would cost more than it saves.
    pub fn row_upper_bound(&self, store: &QuantizedStore, row: usize) -> f64 {
        let b = store.block_of(row);
        let blk = &store.blocks[b];
        let s = self.slack[b];
        if !s.is_finite() {
            return f64::INFINITY;
        }
        let i = row - blk.start;
        let coeff = &self.coeff[b * self.dims..(b + 1) * self.dims];
        let mut acc = self.base[b] + s;
        for (j, c) in coeff.iter().enumerate() {
            acc += c * f64::from(blk.codes[j * blk.rows + i]);
        }
        pad_up(acc)
    }
}

/// The 4-lane unrolled SoA accumulation (mirrors the PR-4 checksum
/// fold): per dimension, one stride-1 pass over the block's rows with
/// four independent accumulator updates per step. Row sums are f64
/// upper-bound material, not exact scores, so the accumulation order is
/// free — the slack already covers any-order summation error.
#[inline(always)]
fn accumulate_codes<const D: usize>(codes: &[i8], m: usize, coeff: &[f64], out: &mut [f64]) {
    for j in 0..D {
        let c = coeff[j];
        let col = &codes[j * m..(j + 1) * m];
        lane4(c, col, out);
    }
}

#[inline(always)]
fn accumulate_codes_dyn(codes: &[i8], m: usize, dims: usize, coeff: &[f64], out: &mut [f64]) {
    for j in 0..dims {
        let c = coeff[j];
        let col = &codes[j * m..(j + 1) * m];
        lane4(c, col, out);
    }
}

/// Sign-picked corner accumulation over sub-block min/max codes: each
/// sub-block's bound gains `max(c_j·qmin_j, c_j·qmax_j)` per dimension —
/// the extremal corner of the sub-block's quantized box.
#[inline(always)]
fn corner_accumulate<const D: usize>(
    sub_qmin: &[i8],
    sub_qmax: &[i8],
    subs: usize,
    coeff: &[f64],
    out: &mut [f64],
) {
    for j in 0..D {
        let c = coeff[j];
        let qn = &sub_qmin[j * subs..(j + 1) * subs];
        let qx = &sub_qmax[j * subs..(j + 1) * subs];
        for s in 0..subs {
            out[s] += (c * f64::from(qn[s])).max(c * f64::from(qx[s]));
        }
    }
}

#[inline(always)]
fn corner_accumulate_dyn(
    sub_qmin: &[i8],
    sub_qmax: &[i8],
    subs: usize,
    dims: usize,
    coeff: &[f64],
    out: &mut [f64],
) {
    for j in 0..dims {
        let c = coeff[j];
        let qn = &sub_qmin[j * subs..(j + 1) * subs];
        let qx = &sub_qmax[j * subs..(j + 1) * subs];
        for s in 0..subs {
            out[s] += (c * f64::from(qn[s])).max(c * f64::from(qx[s]));
        }
    }
}

#[inline(always)]
fn lane4(c: f64, col: &[i8], out: &mut [f64]) {
    let m = col.len();
    let lanes = m / 4 * 4;
    let mut i = 0;
    while i < lanes {
        out[i] += c * f64::from(col[i]);
        out[i + 1] += c * f64::from(col[i + 1]);
        out[i + 2] += c * f64::from(col[i + 2]);
        out[i + 3] += c * f64::from(col[i + 3]);
        i += 4;
    }
    while i < m {
        out[i] += c * f64::from(col[i]);
        i += 1;
    }
}

/// Coarse-pass work accounting for one pruned scan or query.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QuantPruneReport {
    /// Blocks the query touched (pruned or not).
    pub blocks_total: u64,
    /// Blocks rejected wholesale by their O(d) block bound.
    pub blocks_pruned: u64,
    /// Sub-blocks rejected by their O(d) corner bound (within blocks
    /// that survived the block-level check).
    pub subblocks_pruned: u64,
    /// Rows skipped without an exact f64 score (any granularity).
    pub rows_pruned: u64,
    /// Rows scored by the exact f64 kernel.
    pub rows_exact: u64,
}

impl QuantPruneReport {
    /// Fraction of candidate rows eliminated before exact scoring.
    pub fn prune_rate(&self) -> f64 {
        let total = self.rows_pruned + self.rows_exact;
        if total == 0 {
            return 0.0;
        }
        self.rows_pruned as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels;
    use proptest::prelude::*;

    fn lcg_points(seed: u64, n: usize, d: usize, magnitude: f64) -> Vec<Vec<f64>> {
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5) * 2.0 * magnitude
        };
        (0..n).map(|_| (0..d).map(|_| next()).collect()).collect()
    }

    /// The invariant everything rests on: for every row, the coarse
    /// bound dominates the exact kernel score (and the block bound
    /// dominates every row bound's row).
    fn assert_sound(rows: &[Vec<f64>], dir: &[f64]) {
        let store = PointStore::from_rows(rows).unwrap();
        let quant = QuantizedStore::build(&store);
        let qq = quant.prepare(dir);
        let mut ubs = Vec::new();
        let mut sub_ubs = Vec::new();
        for b in 0..quant.blocks() {
            let (start, m) = quant.block_range(b);
            let block_ub = qq.block_upper_bound(b);
            qq.row_upper_bounds(&quant, b, &mut ubs);
            qq.sub_upper_bounds(&quant, b, &mut sub_ubs);
            assert_eq!(ubs.len(), m);
            assert_eq!(sub_ubs.len(), quant.subs(b));
            for i in 0..m {
                let exact = kernels::dot(dir, store.row(start + i));
                let single = qq.row_upper_bound(&quant, start + i);
                let sub_ub = sub_ubs[i / QUANT_SUB_ROWS];
                if exact.is_nan() {
                    assert!(
                        ubs[i] == f64::INFINITY && block_ub == f64::INFINITY,
                        "NaN exact score must be shielded by an infinite bound"
                    );
                    assert!(sub_ub == f64::INFINITY);
                } else {
                    assert!(
                        ubs[i] >= exact,
                        "row ub {} < exact {} (block {b} row {i})",
                        ubs[i],
                        exact
                    );
                    assert!(
                        single >= exact,
                        "single-row ub {single} < exact {exact} (row {})",
                        start + i
                    );
                    assert!(
                        block_ub >= exact,
                        "block ub {block_ub} < exact {exact} (block {b})"
                    );
                    assert!(
                        sub_ub >= exact,
                        "sub ub {sub_ub} < exact {exact} (block {b} row {i})"
                    );
                }
            }
        }
    }

    #[test]
    fn bounds_dominate_exact_scores_on_gaussianish_data() {
        for d in [1usize, 2, 3, 5, 8] {
            let rows = lcg_points(7 + d as u64, 1300, d, 50.0);
            let dir: Vec<f64> = (0..d).map(|j| 0.443 - 0.061 * j as f64).collect();
            assert_sound(&rows, &dir);
        }
    }

    #[test]
    fn constant_blocks_and_zero_scale_round_trip() {
        // Constant values per dimension: scale collapses to 0, every code
        // is 0, and the bound is the exact score plus a vanishing pad.
        let rows: Vec<Vec<f64>> = (0..700).map(|_| vec![2.5, -1.25, 0.0]).collect();
        let dir = vec![1.0, -3.0, 7.0];
        assert_sound(&rows, &dir);
        let store = PointStore::from_rows(&rows).unwrap();
        let quant = QuantizedStore::build(&store);
        let qq = quant.prepare(&dir);
        let exact = kernels::dot(&dir, &rows[0]);
        let ub = qq.block_upper_bound(0);
        assert!(
            ub >= exact && ub - exact < 1e-9,
            "degenerate bound is tight"
        );
    }

    #[test]
    fn zero_direction_and_zero_data_are_safe() {
        let rows: Vec<Vec<f64>> = (0..600).map(|_| vec![0.0, -0.0]).collect();
        assert_sound(&rows, &[0.0, -0.0]);
        let rows = lcg_points(3, 600, 2, 10.0);
        assert_sound(&rows, &[0.0, 0.0]);
    }

    #[test]
    fn non_finite_data_disables_the_block() {
        let mut rows = lcg_points(9, 520, 3, 5.0);
        rows[17][1] = f64::NAN;
        rows[515][0] = f64::INFINITY;
        let store = PointStore::from_rows(&rows).unwrap();
        let quant = QuantizedStore::build(&store);
        let qq = quant.prepare(&[1.0, 2.0, -0.5]);
        assert_eq!(qq.block_upper_bound(0), f64::INFINITY);
        // Second block (rows 512..) holds the +inf row.
        assert_eq!(qq.block_upper_bound(1), f64::INFINITY);
    }

    #[test]
    fn non_finite_direction_disables_pruning() {
        let rows = lcg_points(11, 520, 2, 5.0);
        let store = PointStore::from_rows(&rows).unwrap();
        let quant = QuantizedStore::build(&store);
        for dir in [[f64::NAN, 1.0], [f64::INFINITY, 0.0]] {
            let qq = quant.prepare(&dir);
            for b in 0..quant.blocks() {
                assert_eq!(qq.block_upper_bound(b), f64::INFINITY);
            }
        }
    }

    #[test]
    fn overflow_magnitudes_are_shielded() {
        // Products near f64::MAX would overflow the exact kernel's partial
        // sums; the guard must answer +inf rather than a finite bound.
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![1e160 * i as f64, -1e160]).collect();
        assert_sound(&rows, &[1e160, 1e160]);
    }

    #[test]
    fn block_ranges_tile_the_store() {
        let rows = lcg_points(5, 1100, 2, 1.0);
        let store = PointStore::from_rows(&rows).unwrap();
        let quant = QuantizedStore::build(&store);
        let mut covered = 0;
        for b in 0..quant.blocks() {
            let (start, m) = quant.block_range(b);
            assert_eq!(start, covered);
            covered += m;
            assert!(m <= QUANT_BLOCK_ROWS);
        }
        assert_eq!(covered, store.len());
        assert_eq!(quant.block_of(0), 0);
        assert_eq!(quant.block_of(QUANT_BLOCK_ROWS), 1);
        for b in 0..quant.blocks() {
            let (bstart, bm) = quant.block_range(b);
            let mut sub_covered = 0;
            for s in 0..quant.subs(b) {
                let (sstart, sm) = quant.sub_range(b, s);
                assert_eq!(sstart, bstart + sub_covered);
                sub_covered += sm;
                assert!(sm <= QUANT_SUB_ROWS && sm > 0);
            }
            assert_eq!(sub_covered, bm, "sub-blocks tile block {b}");
        }
    }

    proptest! {
        #[test]
        fn prop_bounds_sound_for_random_blocks(
            n in 1usize..200,
            d in 1usize..9,
            seed in 0u64..3_000,
            magnitude in prop::sample::select(vec![1e-6, 1.0, 1e3, 1e9, 1e160]),
        ) {
            let rows = lcg_points(seed, n, d, magnitude);
            let mut state = seed ^ 0xdead;
            let mut next = move || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
            };
            let dir: Vec<f64> = (0..d).map(|_| next() * 8.0).collect();
            assert_sound(&rows, &dir);
        }

        #[test]
        fn prop_bounds_sound_under_heavy_ties(
            n in 1usize..200,
            seed in 0u64..2_000,
        ) {
            // Values drawn from a 5-element set: constant dimensions, tied
            // scores, zero scales — the degenerate regimes.
            let mut state = seed | 1;
            let mut next = move || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(99);
                ((state >> 33) % 5) as f64 - 2.0
            };
            let rows: Vec<Vec<f64>> = (0..n).map(|_| (0..3).map(|_| next()).collect()).collect();
            let dir = [1.0, -1.0, 0.5];
            assert_sound(&rows, &dir);
        }
    }
}
