//! Flat, dimension-stamped point storage.
//!
//! Every index structure in this crate originally held its tuples as
//! `Vec<Vec<f64>>`: one heap allocation and one pointer chase per tuple.
//! For model-based scoring — where a query touches thousands of tuples
//! and each touch is a d-term dot product — that layout makes memory
//! latency, not arithmetic, the bottleneck. [`PointStore`] packs all
//! tuples into a single row-major `Vec<f64>` so a scoring sweep walks
//! one contiguous allocation, the hardware prefetcher sees a linear
//! stream, and the [`crate::kernels`] can autovectorize across rows.
//!
//! The store changes *layout only*: [`PointStore::row`] hands back the
//! exact same `&[f64]` slice contents the nested representation held, so
//! every kernel consuming rows produces bit-identical scores.

use mbir_models::error::ModelError;

/// A dense, row-major collection of `d`-dimensional points.
///
/// Row `i` occupies `data[i*dims .. (i+1)*dims]`. The dimension is fixed
/// at construction; every row pushed later must match it.
///
/// # Examples
///
/// ```
/// use mbir_index::store::PointStore;
///
/// let store = PointStore::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
/// assert_eq!(store.len(), 2);
/// assert_eq!(store.row(1), &[3.0, 4.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PointStore {
    data: Vec<f64>,
    dims: usize,
}

impl PointStore {
    /// An empty store of `dims`-dimensional points.
    ///
    /// # Panics
    ///
    /// Panics if `dims == 0`.
    pub fn new(dims: usize) -> Self {
        assert!(dims > 0, "PointStore needs dims >= 1");
        PointStore {
            data: Vec::new(),
            dims,
        }
    }

    /// Packs nested rows into a flat store, validating shape.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Empty`] for no rows or zero-width rows and
    /// [`ModelError::ArityMismatch`] for ragged rows.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self, ModelError> {
        let first = rows.first().ok_or(ModelError::Empty)?;
        let dims = first.len();
        if dims == 0 {
            return Err(ModelError::Empty);
        }
        let mut data = Vec::with_capacity(rows.len() * dims);
        for row in rows {
            if row.len() != dims {
                return Err(ModelError::ArityMismatch {
                    expected: dims,
                    actual: row.len(),
                });
            }
            data.extend_from_slice(row);
        }
        Ok(PointStore { data, dims })
    }

    /// Wraps an already-flat buffer of `len * dims` coordinates.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Empty`] for `dims == 0` and
    /// [`ModelError::ArityMismatch`] when the buffer length is not a
    /// multiple of `dims`.
    pub fn from_flat(data: Vec<f64>, dims: usize) -> Result<Self, ModelError> {
        if dims == 0 {
            return Err(ModelError::Empty);
        }
        if !data.len().is_multiple_of(dims) {
            return Err(ModelError::ArityMismatch {
                expected: dims,
                actual: data.len() % dims,
            });
        }
        Ok(PointStore { data, dims })
    }

    /// Number of points stored.
    pub fn len(&self) -> usize {
        self.data.len() / self.dims
    }

    /// Whether no points are stored.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Dimensionality of every row.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.dims..(i + 1) * self.dims]
    }

    /// Appends a row, returning its index.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::ArityMismatch`] for a wrong-width row.
    pub fn push_row(&mut self, row: &[f64]) -> Result<usize, ModelError> {
        if row.len() != self.dims {
            return Err(ModelError::ArityMismatch {
                expected: self.dims,
                actual: row.len(),
            });
        }
        let idx = self.len();
        self.data.extend_from_slice(row);
        Ok(idx)
    }

    /// Iterates rows in index order.
    #[inline]
    pub fn rows(&self) -> std::slice::ChunksExact<'_, f64> {
        self.data.chunks_exact(self.dims)
    }

    /// The whole row-major buffer (length `len() * dims()`).
    #[inline]
    pub fn flat(&self) -> &[f64] {
        &self.data
    }

    /// Copies the store back into the nested representation (interop with
    /// `Vec<Vec<f64>>` entry points such as rebuilds).
    pub fn to_rows(&self) -> Vec<Vec<f64>> {
        self.rows().map(|r| r.to_vec()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_rows_roundtrips() {
        let rows = vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]];
        let store = PointStore::from_rows(&rows).unwrap();
        assert_eq!(store.len(), 2);
        assert_eq!(store.dims(), 3);
        assert_eq!(store.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(store.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(store.to_rows(), rows);
        assert_eq!(store.flat(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let collected: Vec<&[f64]> = store.rows().collect();
        assert_eq!(collected, vec![&rows[0][..], &rows[1][..]]);
    }

    #[test]
    fn from_rows_validates() {
        assert!(matches!(PointStore::from_rows(&[]), Err(ModelError::Empty)));
        assert!(matches!(
            PointStore::from_rows(&[vec![]]),
            Err(ModelError::Empty)
        ));
        assert!(matches!(
            PointStore::from_rows(&[vec![1.0], vec![1.0, 2.0]]),
            Err(ModelError::ArityMismatch {
                expected: 1,
                actual: 2
            })
        ));
    }

    #[test]
    fn from_flat_validates() {
        assert!(PointStore::from_flat(vec![1.0, 2.0], 0).is_err());
        assert!(PointStore::from_flat(vec![1.0, 2.0, 3.0], 2).is_err());
        let s = PointStore::from_flat(vec![1.0, 2.0, 3.0, 4.0], 2).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.row(1), &[3.0, 4.0]);
    }

    #[test]
    fn push_row_grows_and_validates() {
        let mut store = PointStore::new(2);
        assert!(store.is_empty());
        assert_eq!(store.push_row(&[1.0, 2.0]).unwrap(), 0);
        assert_eq!(store.push_row(&[3.0, 4.0]).unwrap(), 1);
        assert!(store.push_row(&[1.0]).is_err());
        assert_eq!(store.len(), 2);
        assert_eq!(store.row(1), &[3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "dims >= 1")]
    fn zero_dims_panics() {
        let _ = PointStore::new(0);
    }
}
