//! Batched, allocation-free scoring kernels over flat row-major points.
//!
//! ## The summation-order contract
//!
//! Every index and engine in this workspace originally scored a tuple as
//! `dir.iter().zip(point).map(|(a, v)| a * v).sum::<f64>()` — i.e. an
//! accumulator starting at `0.0` with the products added **left to
//! right**. Floating-point addition is not associative, so any kernel
//! that reorders that sum (pairwise reduction, multiple accumulators,
//! FMA contraction) would produce different bits and, through tie-breaks
//! and bound comparisons, different top-K answers. Every kernel here
//! therefore keeps the per-point summation order exactly as above and
//! gains its speed elsewhere: points are contiguous rows
//! ([`crate::store::PointStore`]), the dimension is dispatched once per
//! *block* instead of once per element, and the compiler is free to
//! vectorize **across rows** (each row's sum is an independent chain).
//! Results are bit-identical to the legacy per-point paths; the
//! property tests in this crate and in `tests/parallel_props.rs` lock
//! that down.

/// Dot product with the canonical left-to-right summation order.
///
/// Bit-identical to `a.iter().zip(b).map(|(x, y)| x * y).sum::<f64>()`.
/// Small dimensions dispatch to fixed-size loops the compiler fully
/// unrolls.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    match a.len() {
        1 => dot_fixed::<1>(a, b),
        2 => dot_fixed::<2>(a, b),
        3 => dot_fixed::<3>(a, b),
        4 => dot_fixed::<4>(a, b),
        6 => dot_fixed::<6>(a, b),
        8 => dot_fixed::<8>(a, b),
        16 => dot_fixed::<16>(a, b),
        _ => dot_dyn(a, b),
    }
}

#[inline(always)]
fn dot_fixed<const D: usize>(a: &[f64], b: &[f64]) -> f64 {
    let a: &[f64; D] = a.try_into().expect("dispatched on len");
    let b: &[f64; D] = b.try_into().expect("dispatched on len");
    let mut acc = 0.0;
    for j in 0..D {
        acc += a[j] * b[j];
    }
    acc
}

#[inline(always)]
fn dot_dyn(a: &[f64], b: &[f64]) -> f64 {
    let mut acc = 0.0;
    for j in 0..a.len() {
        acc += a[j] * b[j];
    }
    acc
}

/// Scores every row of a flat row-major block against `dir`, appending
/// one score per row to `out` (cleared first). `block.len()` must be a
/// multiple of `dims` and `dir.len() == dims`.
///
/// Per-row scores are bit-identical to [`dot`]; the win is layout — one
/// linear pass over the block with the dimension dispatched once.
///
/// # Panics
///
/// Panics on a ragged block or wrong-length direction.
pub fn score_block_into(block: &[f64], dims: usize, dir: &[f64], out: &mut Vec<f64>) {
    assert_eq!(dir.len(), dims, "direction length mismatch");
    assert_eq!(block.len() % dims, 0, "ragged block");
    out.clear();
    match dims {
        1 => fill_scores::<1>(block, dir, out),
        2 => fill_scores::<2>(block, dir, out),
        3 => fill_scores::<3>(block, dir, out),
        4 => fill_scores::<4>(block, dir, out),
        6 => fill_scores::<6>(block, dir, out),
        8 => fill_scores::<8>(block, dir, out),
        16 => fill_scores::<16>(block, dir, out),
        _ => out.extend(block.chunks_exact(dims).map(|row| dot_dyn(dir, row))),
    }
}

#[inline(always)]
fn fill_scores<const D: usize>(block: &[f64], dir: &[f64], out: &mut Vec<f64>) {
    let dir: &[f64; D] = dir.try_into().expect("dispatched on dims");
    out.extend(block.chunks_exact(D).map(|row| {
        let row: &[f64; D] = row.try_into().expect("chunks_exact");
        let mut acc = 0.0;
        for j in 0..D {
            acc += dir[j] * row[j];
        }
        acc
    }));
}

/// Scores every row of a flat row-major block against `m` directions at
/// once, appending `m` scores per row to `out` (cleared first) in
/// row-major order: `out[i * m + k]` is direction `k`'s score of row
/// `i`. This is the batched-query kernel — one streaming pass over the
/// block serves the whole batch, a small row-major GEMM.
///
/// Each direction's score keeps the canonical left-to-right summation
/// order, so column `k` of the output is bit-identical to a solo
/// [`score_block_into`] run with `dirs[k]` — batching queries can never
/// change any single query's answer.
///
/// # Panics
///
/// Panics on a ragged block or wrong-length direction.
pub fn score_block_multi_into(block: &[f64], dims: usize, dirs: &[Vec<f64>], out: &mut Vec<f64>) {
    let m = dirs.len();
    let mut transposed = vec![0.0f64; m * dims];
    for (k, dir) in dirs.iter().enumerate() {
        assert_eq!(dir.len(), dims, "direction length mismatch");
        for (j, &v) in dir.iter().enumerate() {
            transposed[j * m + k] = v;
        }
    }
    score_block_multi_transposed_into(block, dims, &transposed, m, out);
}

/// [`score_block_multi_into`] with the direction bundle already
/// transposed (`transposed[j * m + k]` = component `j` of direction
/// `k`), so a caller scoring many blocks against one batch pays the
/// transpose once and keeps the hot loop allocation-free.
///
/// The per-row loop is the [`sweep_argmax_block_at`] scoring pattern:
/// stride-1 passes over the transpose compute all `m` scores at once,
/// each as an independent left-to-right chain (the `j == 0` pass writes
/// `0.0 + t * x` directly, preserving the legacy accumulator start for
/// -0.0), and independent chains side by side are what the
/// autovectorizer packs into SIMD lanes.
///
/// # Panics
///
/// Panics on a ragged block or a bundle whose length is not `m * dims`.
pub fn score_block_multi_transposed_into(
    block: &[f64],
    dims: usize,
    transposed: &[f64],
    m: usize,
    out: &mut Vec<f64>,
) {
    assert_eq!(transposed.len(), m * dims, "transposed bundle mismatch");
    assert_eq!(block.len() % dims, 0, "ragged block");
    let rows = block.len() / dims;
    out.clear();
    out.resize(rows * m, 0.0);
    if m == 0 {
        return;
    }
    for (i, row) in block.chunks_exact(dims).enumerate() {
        let scores = &mut out[i * m..(i + 1) * m];
        for (j, &xj) in row.iter().enumerate() {
            let t = &transposed[j * m..(j + 1) * m];
            if j == 0 {
                for (s, &tk) in scores.iter_mut().zip(t) {
                    *s = 0.0 + tk * xj;
                }
            } else {
                for (s, &tk) in scores.iter_mut().zip(t) {
                    *s += tk * xj;
                }
            }
        }
    }
}

/// Exact support `max dir . x` over the rows whose `alive` flag is set
/// (`NEG_INFINITY` when none are). Uses `f64::max`, matching the legacy
/// `best.max(score)` fold bit for bit.
///
/// # Panics
///
/// Panics if `alive.len() * dims != block.len()` or the direction length
/// is wrong.
pub fn max_score_alive(block: &[f64], dims: usize, alive: &[bool], dir: &[f64]) -> f64 {
    assert_eq!(dir.len(), dims, "direction length mismatch");
    assert_eq!(block.len(), alive.len() * dims, "alive mask mismatch");
    let mut best = f64::NEG_INFINITY;
    for (row, &live) in block.chunks_exact(dims).zip(alive) {
        if live {
            best = best.max(dot(dir, row));
        }
    }
    best
}

/// One row-major pass updating the running argmax of every direction in
/// `dirs` over the alive rows. `best[k]` holds `Some((row, score))` for
/// the **first strict maximum** of direction `k` seen so far — the same
/// winner a per-direction sweep in row order produces, so fanning
/// directions across threads and unioning cannot change the result.
///
/// Rows are visited once (contiguously) instead of once per direction:
/// for a peel bundle of `D` directions this turns `D` passes over a
/// pointer-chased `Vec<Vec<f64>>` into a single streaming pass. The
/// bundle is transposed once up front (`t[j * m + k]` = component `j` of
/// direction `k`), so the per-row scoring loop runs stride-1 **across
/// directions**: each direction's sum is an independent left-to-right
/// chain (contract preserved per direction), and independent chains side
/// by side are exactly what the autovectorizer can pack into SIMD lanes.
///
/// # Panics
///
/// Panics on mask/shape mismatches.
pub fn sweep_argmax_block(
    block: &[f64],
    dims: usize,
    alive: &[bool],
    dirs: &[Vec<f64>],
    best: &mut [Option<(usize, f64)>],
) {
    sweep_argmax_block_at(block, dims, alive, 0, dirs, best);
}

/// [`sweep_argmax_block`] over a sub-slice of a larger store: row `i` of
/// `block` is reported as global row `base + i`. Processing a store as
/// consecutive `(block, base)` chunks in order yields bit-identical
/// winners to one whole-store pass — the running `best` carries across
/// chunks and the first-strict-maximum rule is position-independent.
/// This is what lets a quantized coarse pass skip whole chunks whose
/// bound cannot beat the already-set winners.
///
/// # Panics
///
/// Panics on mask/shape mismatches.
pub fn sweep_argmax_block_at(
    block: &[f64],
    dims: usize,
    alive: &[bool],
    base: usize,
    dirs: &[Vec<f64>],
    best: &mut [Option<(usize, f64)>],
) {
    assert_eq!(block.len(), alive.len() * dims, "alive mask mismatch");
    assert_eq!(dirs.len(), best.len(), "one running best per direction");
    let m = dirs.len();
    if m == 0 {
        return;
    }
    let mut transposed = vec![0.0f64; m * dims];
    for (k, dir) in dirs.iter().enumerate() {
        assert_eq!(dir.len(), dims, "direction length mismatch");
        for (j, &v) in dir.iter().enumerate() {
            transposed[j * m + k] = v;
        }
    }
    // Running winners in flat arrays; `usize::MAX` marks "none yet", which
    // (like the legacy `None`) accepts the first alive row unconditionally
    // — even a NaN or -inf score — before strict `>` takes over.
    let mut best_score = vec![0.0f64; m];
    let mut best_row = vec![usize::MAX; m];
    for (k, slot) in best.iter().enumerate() {
        if let Some((row, score)) = slot {
            best_row[k] = *row;
            best_score[k] = *score;
        }
    }
    let mut scores = vec![0.0f64; m];
    for (i, (row, &live)) in block.chunks_exact(dims).zip(alive).enumerate() {
        if !live {
            continue;
        }
        // All m scores for this row in stride-1 passes over the transpose:
        // scores[k] = 0.0 + t[0][k]*row[0] + t[1][k]*row[1] + ... — the
        // canonical summation order of every direction at once. The first
        // component's pass writes `0.0 + t*x` directly (the explicit
        // `0.0 +` keeps the legacy accumulator start, which matters for
        // -0.0), so no separate zero-fill pass is needed.
        for (j, &xj) in row.iter().enumerate() {
            let t = &transposed[j * m..(j + 1) * m];
            if j == 0 {
                for (s, &tk) in scores.iter_mut().zip(t) {
                    *s = 0.0 + tk * xj;
                }
            } else {
                for (s, &tk) in scores.iter_mut().zip(t) {
                    *s += tk * xj;
                }
            }
        }
        // A running best exists for every direction after the first alive
        // row, so the steady-state check is a branch-free any-improved
        // reduction; the (rare) update pass only runs when it fires.
        let mut any_unset = false;
        let mut any_better = false;
        for k in 0..m {
            any_unset |= best_row[k] == usize::MAX;
            any_better |= scores[k] > best_score[k];
        }
        if any_unset || any_better {
            for k in 0..m {
                if best_row[k] == usize::MAX || scores[k] > best_score[k] {
                    best_row[k] = base + i;
                    best_score[k] = scores[k];
                }
            }
        }
    }
    for (k, slot) in best.iter_mut().enumerate() {
        if best_row[k] != usize::MAX {
            *slot = Some((best_row[k], best_score[k]));
        }
    }
}

/// `y[j] += alpha * x[j]` — the axpy-style accumulator used for bound
/// and centroid updates over flat rows.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    for (yj, xj) in y.iter_mut().zip(x) {
        *yj += alpha * xj;
    }
}

/// Elementwise enclosure update: `lo[j] = lo[j].min(row[j])`,
/// `hi[j] = hi[j].max(row[j])`. Matches the legacy per-coordinate
/// `min`/`max` fold bit for bit.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn min_max_update(lo: &mut [f64], hi: &mut [f64], row: &[f64]) {
    assert_eq!(lo.len(), row.len(), "bound length mismatch");
    assert_eq!(hi.len(), row.len(), "bound length mismatch");
    for j in 0..row.len() {
        lo[j] = lo[j].min(row[j]);
        hi[j] = hi[j].max(row[j]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn legacy_dot(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    }

    #[test]
    fn dot_matches_legacy_all_dispatch_widths() {
        for d in 1..=20usize {
            let a: Vec<f64> = (0..d).map(|j| (j as f64 + 0.5) * 1.1).collect();
            let b: Vec<f64> = (0..d).map(|j| (j as f64 - 3.0) * 0.7).collect();
            assert_eq!(dot(&a, &b).to_bits(), legacy_dot(&a, &b).to_bits(), "d={d}");
        }
    }

    #[test]
    fn dot_preserves_signed_zero() {
        // Left-to-right summation starting at +0.0: a sum of -0.0 products
        // must come out exactly as the legacy fold does.
        let a = vec![-0.0, 0.0, -0.0];
        let b = vec![1.0, 5.0, 2.0];
        assert_eq!(dot(&a, &b).to_bits(), legacy_dot(&a, &b).to_bits());
    }

    #[test]
    fn score_block_matches_per_row_dot() {
        for d in [1usize, 2, 3, 4, 5, 6, 8, 16, 17] {
            let n = 13;
            let block: Vec<f64> = (0..n * d).map(|j| (j as f64).sin() * 9.0).collect();
            let dir: Vec<f64> = (0..d).map(|j| (j as f64).cos() * 2.0 - 0.5).collect();
            let mut out = Vec::new();
            score_block_into(&block, d, &dir, &mut out);
            assert_eq!(out.len(), n);
            for (i, row) in block.chunks_exact(d).enumerate() {
                assert_eq!(
                    out[i].to_bits(),
                    legacy_dot(&dir, row).to_bits(),
                    "d={d} i={i}"
                );
            }
        }
    }

    #[test]
    fn multi_score_columns_match_solo_runs() {
        for d in [1usize, 2, 3, 5, 8, 17] {
            for m in [1usize, 2, 3, 8] {
                let n = 11;
                let block: Vec<f64> = (0..n * d).map(|j| (j as f64 * 0.7).sin() * 30.0).collect();
                let dirs: Vec<Vec<f64>> = (0..m)
                    .map(|k| {
                        (0..d)
                            .map(|j| ((k * 31 + j * 7) as f64).cos() * 3.0 - 0.5)
                            .collect()
                    })
                    .collect();
                let mut multi = Vec::new();
                score_block_multi_into(&block, d, &dirs, &mut multi);
                assert_eq!(multi.len(), n * m);
                let mut solo = Vec::new();
                for (k, dir) in dirs.iter().enumerate() {
                    score_block_into(&block, d, dir, &mut solo);
                    for i in 0..n {
                        assert_eq!(
                            multi[i * m + k].to_bits(),
                            solo[i].to_bits(),
                            "d={d} m={m} row={i} query={k}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn multi_score_handles_empty_batch_and_empty_block() {
        let mut out = vec![1.0, 2.0];
        score_block_multi_into(&[1.0, 2.0, 3.0, 4.0], 2, &[], &mut out);
        assert!(out.is_empty());
        score_block_multi_into(&[], 2, &[vec![1.0, -1.0]], &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn multi_score_preserves_signed_zero_columns() {
        // A query of -0.0 coefficients: the 0.0 + t*x accumulator start
        // must give the same signed-zero bits as the solo kernel's
        // `acc = 0.0; acc += ...` chain (the workspace contract all
        // engines compare against).
        let block = [-0.0f64, 0.0, 1.0, 2.0];
        let dirs = vec![vec![-0.0, -0.0], vec![1.0, 1.0]];
        let mut multi = Vec::new();
        score_block_multi_into(&block, 2, &dirs, &mut multi);
        let mut solo = Vec::new();
        for (k, dir) in dirs.iter().enumerate() {
            score_block_into(&block, 2, dir, &mut solo);
            for (i, s) in solo.iter().enumerate() {
                assert_eq!(multi[i * 2 + k].to_bits(), s.to_bits(), "row {i} query {k}");
            }
        }
    }

    #[test]
    fn sweep_matches_per_direction_argmax() {
        let d = 3;
        let n = 40;
        let block: Vec<f64> = (0..n * d).map(|j| ((j * 37 % 101) as f64) - 50.0).collect();
        let alive: Vec<bool> = (0..n).map(|i| i % 3 != 1).collect();
        let dirs: Vec<Vec<f64>> = vec![
            vec![1.0, 0.0, 0.0],
            vec![-0.5, 2.0, 0.25],
            vec![0.0, 0.0, -1.0],
        ];
        let mut best = vec![None; dirs.len()];
        sweep_argmax_block(&block, d, &alive, &dirs, &mut best);
        for (k, dir) in dirs.iter().enumerate() {
            let mut expect: Option<(usize, f64)> = None;
            for (i, row) in block.chunks_exact(d).enumerate() {
                if !alive[i] {
                    continue;
                }
                let s = legacy_dot(dir, row);
                if expect.map(|(_, bs)| s > bs).unwrap_or(true) {
                    expect = Some((i, s));
                }
            }
            assert_eq!(best[k], expect, "direction {k}");
        }
    }

    #[test]
    fn max_score_alive_matches_fold() {
        let d = 2;
        let block = [1.0, 2.0, -4.0, 9.0, 3.0, 3.0];
        let alive = [true, false, true];
        let dir = [1.0, 1.0];
        assert_eq!(max_score_alive(&block, d, &alive, &dir), 6.0);
        assert_eq!(
            max_score_alive(&block, d, &[false, false, false], &dir),
            f64::NEG_INFINITY
        );
    }

    #[test]
    fn axpy_and_min_max_update_work() {
        let x = [1.0, -2.0, 0.5];
        let mut y = [10.0, 10.0, 10.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 6.0, 11.0]);

        let mut lo = [0.0, 0.0];
        let mut hi = [0.0, 0.0];
        min_max_update(&mut lo, &mut hi, &[-1.0, 3.0]);
        min_max_update(&mut lo, &mut hi, &[2.0, -5.0]);
        assert_eq!(lo, [-1.0, -5.0]);
        assert_eq!(hi, [2.0, 3.0]);
    }

    proptest! {
        #[test]
        fn prop_dot_bit_identical(
            d in 1usize..12,
            seed in 0u64..10_000,
        ) {
            let mut state = seed.wrapping_mul(2654435761).wrapping_add(99);
            let mut next = move || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((state >> 11) as f64 / (1u64 << 53) as f64) * 2e3 - 1e3
            };
            let a: Vec<f64> = (0..d).map(|_| next()).collect();
            let b: Vec<f64> = (0..d).map(|_| next()).collect();
            prop_assert_eq!(dot(&a, &b).to_bits(), legacy_dot(&a, &b).to_bits());
        }

        #[test]
        fn prop_multi_score_bit_identical_to_solo(
            d in 1usize..7,
            n in 0usize..30,
            m in 0usize..9,
            seed in 0u64..10_000,
        ) {
            let mut state = seed ^ 0x5eed;
            let mut next = move || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(13);
                ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
            };
            let block: Vec<f64> = (0..n * d).map(|_| next() * 50.0).collect();
            let dirs: Vec<Vec<f64>> = (0..m)
                .map(|_| (0..d).map(|_| next() * 6.0).collect())
                .collect();
            let mut multi = Vec::new();
            score_block_multi_into(&block, d, &dirs, &mut multi);
            prop_assert_eq!(multi.len(), n * m);
            let mut solo = Vec::new();
            for (k, dir) in dirs.iter().enumerate() {
                score_block_into(&block, d, dir, &mut solo);
                for i in 0..n {
                    prop_assert_eq!(multi[i * m + k].to_bits(), solo[i].to_bits());
                }
            }
        }

        #[test]
        fn prop_score_block_bit_identical(
            d in 1usize..9,
            n in 0usize..50,
            seed in 0u64..10_000,
        ) {
            let mut state = seed ^ 0xabcd;
            let mut next = move || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(7);
                ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
            };
            let block: Vec<f64> = (0..n * d).map(|_| next() * 40.0).collect();
            let dir: Vec<f64> = (0..d).map(|_| next() * 4.0).collect();
            let mut out = Vec::new();
            score_block_into(&block, d, &dir, &mut out);
            let expect: Vec<u64> = block
                .chunks_exact(d)
                .map(|row| legacy_dot(&dir, row).to_bits())
                .collect();
            let got: Vec<u64> = out.iter().map(|s| s.to_bits()).collect();
            prop_assert_eq!(got, expect);
        }
    }
}
