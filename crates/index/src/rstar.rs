//! R*-tree over d-dimensional points — the spatial-index baseline.
//!
//! Paper §3.2: "Most of the high-dimensional indexing techniques such as
//! R*-tree are optimized for spatial range queries ... However these
//! techniques are sub-optimal for model-based queries, as these indices do
//! not indicate where to find data points that will maximize the model."
//!
//! This implementation provides both faces used by the experiments: spatial
//! range queries (what the structure is good at) and best-first top-K over
//! a linear score using MBR upper bounds (what it is merely adequate at —
//! experiment E7 measures exactly that gap against Onion).
//!
//! The insertion path follows Beckmann et al.: choose-subtree by minimum
//! overlap enlargement at the leaf level and minimum area enlargement above
//! it, R* split (margin-minimizing axis, overlap-minimizing distribution),
//! and forced reinsertion of the 30% most-distant leaf entries on first
//! overflow.

use crate::kernels;
use crate::scan::TopKHeap;
use crate::stats::{QueryStats, ScoredItem, TopKResult};
use crate::store::PointStore;
use mbir_models::error::ModelError;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

const MAX_ENTRIES: usize = 16;
const MIN_ENTRIES: usize = 6;
const REINSERT_COUNT: usize = 5; // ~30% of MAX_ENTRIES

/// An axis-aligned d-dimensional rectangle.
#[derive(Debug, Clone, PartialEq)]
pub struct Rect {
    lo: Vec<f64>,
    hi: Vec<f64>,
}

impl Rect {
    /// The degenerate rectangle of a point.
    pub fn point(p: &[f64]) -> Self {
        Rect {
            lo: p.to_vec(),
            hi: p.to_vec(),
        }
    }

    /// A rectangle from corner vectors (element-wise normalized).
    ///
    /// # Panics
    ///
    /// Panics if the corners have different lengths or are empty.
    pub fn new(a: &[f64], b: &[f64]) -> Self {
        assert!(
            !a.is_empty() && a.len() == b.len(),
            "corner dimension mismatch"
        );
        let lo = a.iter().zip(b).map(|(x, y)| x.min(*y)).collect();
        let hi = a.iter().zip(b).map(|(x, y)| x.max(*y)).collect();
        Rect { lo, hi }
    }

    /// Dimensionality.
    pub fn dims(&self) -> usize {
        self.lo.len()
    }

    /// Lower corner.
    pub fn lo(&self) -> &[f64] {
        &self.lo
    }

    /// Upper corner.
    pub fn hi(&self) -> &[f64] {
        &self.hi
    }

    fn area(&self) -> f64 {
        self.lo
            .iter()
            .zip(&self.hi)
            .map(|(l, h)| (h - l).max(0.0))
            .product()
    }

    fn margin(&self) -> f64 {
        self.lo
            .iter()
            .zip(&self.hi)
            .map(|(l, h)| (h - l).max(0.0))
            .sum()
    }

    fn union(&self, other: &Rect) -> Rect {
        Rect {
            lo: self
                .lo
                .iter()
                .zip(&other.lo)
                .map(|(a, b)| a.min(*b))
                .collect(),
            hi: self
                .hi
                .iter()
                .zip(&other.hi)
                .map(|(a, b)| a.max(*b))
                .collect(),
        }
    }

    fn enlargement(&self, other: &Rect) -> f64 {
        self.union(other).area() - self.area()
    }

    fn overlap(&self, other: &Rect) -> f64 {
        self.lo
            .iter()
            .zip(&self.hi)
            .zip(other.lo.iter().zip(&other.hi))
            .map(|((al, ah), (bl, bh))| (ah.min(*bh) - al.max(*bl)).max(0.0))
            .product()
    }

    /// Whether the rectangles intersect (closed).
    pub fn intersects(&self, other: &Rect) -> bool {
        self.lo
            .iter()
            .zip(&self.hi)
            .zip(other.lo.iter().zip(&other.hi))
            .all(|((al, ah), (bl, bh))| al <= bh && bl <= ah)
    }

    /// Whether the rectangle contains a point.
    pub fn contains(&self, p: &[f64]) -> bool {
        self.lo
            .iter()
            .zip(&self.hi)
            .zip(p)
            .all(|((l, h), v)| l <= v && v <= h)
    }

    fn center(&self) -> Vec<f64> {
        self.lo
            .iter()
            .zip(&self.hi)
            .map(|(l, h)| (l + h) / 2.0)
            .collect()
    }

    /// Max of `direction . x` over the rectangle — the best-first bound.
    pub fn upper_bound(&self, direction: &[f64]) -> f64 {
        direction
            .iter()
            .zip(self.lo.iter().zip(&self.hi))
            .map(|(a, (l, h))| if *a >= 0.0 { a * h } else { a * l })
            .sum()
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        rects: Vec<Rect>,
        items: Vec<usize>,
    },
    Internal {
        rects: Vec<Rect>,
        children: Vec<Node>,
    },
}

impl Node {
    fn mbr(&self) -> Rect {
        let rects = match self {
            Node::Leaf { rects, .. } | Node::Internal { rects, .. } => rects,
        };
        rects
            .iter()
            .cloned()
            .reduce(|a, b| a.union(&b))
            .expect("nodes are non-empty")
    }
}

/// An R*-tree over d-dimensional points.
///
/// # Examples
///
/// ```
/// use mbir_index::rstar::{Rect, RStarTree};
///
/// let points = vec![vec![0.0, 0.0], vec![5.0, 5.0], vec![9.0, 1.0]];
/// let tree = RStarTree::bulk(points).unwrap();
/// let hits = tree.range(&Rect::new(&[4.0, 4.0], &[6.0, 6.0]));
/// assert_eq!(hits.results, vec![1]);
/// ```
#[derive(Debug, Clone)]
pub struct RStarTree {
    points: PointStore,
    dims: usize,
    root: Node,
}

/// A range-query answer.
#[derive(Debug, Clone, PartialEq)]
pub struct RangeResult {
    /// Matching point indexes in ascending order.
    pub results: Vec<usize>,
    /// Work counters.
    pub stats: QueryStats,
}

impl RStarTree {
    /// Builds a tree by inserting every point (R* heuristics throughout).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Empty`] for no points and
    /// [`ModelError::ArityMismatch`] for ragged dimensions.
    pub fn bulk(points: Vec<Vec<f64>>) -> Result<Self, ModelError> {
        let first = points.first().ok_or(ModelError::Empty)?;
        let dims = first.len();
        if dims == 0 {
            return Err(ModelError::Empty);
        }
        for p in &points {
            if p.len() != dims {
                return Err(ModelError::ArityMismatch {
                    expected: dims,
                    actual: p.len(),
                });
            }
        }
        let mut tree = RStarTree {
            points: PointStore::new(dims),
            dims,
            root: Node::Leaf {
                rects: Vec::new(),
                items: Vec::new(),
            },
        };
        for p in points {
            tree.insert_point(p);
        }
        Ok(tree)
    }

    /// Number of points stored.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the tree is empty (never true once built).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Inserts one point, returning its index.
    pub fn insert_point(&mut self, p: Vec<f64>) -> usize {
        assert_eq!(p.len(), self.dims, "point dimension mismatch");
        let rect = Rect::point(&p);
        let idx = self.points.push_row(&p).expect("dimension checked above");
        // Forced reinsertion: collect evicted leaf entries once, then insert
        // them without further reinsertion.
        let mut pending: Vec<(Rect, usize)> = vec![(rect, idx)];
        let mut allow_reinsert = true;
        while let Some((r, item)) = pending.pop() {
            let evicted = self.insert_entry(r, item, allow_reinsert);
            if !evicted.is_empty() {
                allow_reinsert = false;
                pending.extend(evicted);
            }
        }
        idx
    }

    fn insert_entry(
        &mut self,
        rect: Rect,
        item: usize,
        allow_reinsert: bool,
    ) -> Vec<(Rect, usize)> {
        let mut evicted = Vec::new();
        if let Some((r1, n1, r2, n2)) =
            insert_rec(&mut self.root, rect, item, allow_reinsert, &mut evicted)
        {
            // Root split.
            self.root = Node::Internal {
                rects: vec![r1, r2],
                children: vec![n1, n2],
            };
        }
        evicted
    }

    /// All point indexes inside `query` (ascending), with work accounting.
    pub fn range(&self, query: &Rect) -> RangeResult {
        let mut results = Vec::new();
        let mut stats = QueryStats::new();
        let mut stack = vec![&self.root];
        while let Some(node) = stack.pop() {
            stats.nodes_visited += 1;
            match node {
                Node::Leaf { rects, items } => {
                    for (r, i) in rects.iter().zip(items) {
                        stats.tuples_examined += 1;
                        if query.intersects(r) {
                            results.push(*i);
                        }
                    }
                }
                Node::Internal { rects, children } => {
                    for (r, c) in rects.iter().zip(children) {
                        stats.comparisons += 1;
                        if query.intersects(r) {
                            stack.push(c);
                        }
                    }
                }
            }
        }
        results.sort_unstable();
        RangeResult { results, stats }
    }

    /// Top-K maximizers of `direction . x` by best-first search with MBR
    /// upper bounds. Exact, but examines far more tuples than Onion on the
    /// same query (experiment E7).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::ArityMismatch`] for a wrong-length direction
    /// and [`ModelError::InvalidValue`] for `k == 0`.
    pub fn top_k_max(&self, direction: &[f64], k: usize) -> Result<TopKResult, ModelError> {
        if direction.len() != self.dims {
            return Err(ModelError::ArityMismatch {
                expected: self.dims,
                actual: direction.len(),
            });
        }
        if k == 0 {
            return Err(ModelError::InvalidValue("k must be >= 1".into()));
        }
        #[derive(Debug)]
        struct Frontier<'a> {
            bound: f64,
            node: &'a Node,
        }
        impl PartialEq for Frontier<'_> {
            fn eq(&self, other: &Self) -> bool {
                self.bound == other.bound
            }
        }
        impl Eq for Frontier<'_> {}
        impl PartialOrd for Frontier<'_> {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Frontier<'_> {
            fn cmp(&self, other: &Self) -> Ordering {
                self.bound.total_cmp(&other.bound)
            }
        }

        let mut heap = TopKHeap::new(k);
        let mut stats = QueryStats::new();
        let mut frontier = BinaryHeap::new();
        frontier.push(Frontier {
            bound: self.root.mbr().upper_bound(direction),
            node: &self.root,
        });
        while let Some(Frontier { bound, node }) = frontier.pop() {
            if let Some(floor) = heap.floor() {
                if floor >= bound {
                    break; // nothing in the frontier can improve the top-K
                }
            }
            stats.nodes_visited += 1;
            match node {
                Node::Leaf { items, .. } => {
                    for &i in items {
                        stats.tuples_examined += 1;
                        heap.offer(ScoredItem {
                            index: i,
                            // Same left-to-right fold as before, now over a
                            // flat row — bit-identical scores.
                            score: kernels::dot(direction, self.points.row(i)),
                        });
                    }
                }
                Node::Internal { rects, children } => {
                    for (r, c) in rects.iter().zip(children) {
                        stats.comparisons += 1;
                        frontier.push(Frontier {
                            bound: r.upper_bound(direction),
                            node: c,
                        });
                    }
                }
            }
        }
        stats.comparisons += heap.comparisons();
        Ok(TopKResult {
            results: heap.into_sorted(),
            stats,
        })
    }

    /// The `k` nearest neighbours of `query` by Euclidean distance,
    /// best-first with MBR min-distance bounds. Returns `(index, distance)`
    /// ascending.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::ArityMismatch`] for a wrong-length query and
    /// [`ModelError::InvalidValue`] for `k == 0`.
    pub fn nearest(&self, query: &[f64], k: usize) -> Result<Vec<(usize, f64)>, ModelError> {
        if query.len() != self.dims {
            return Err(ModelError::ArityMismatch {
                expected: self.dims,
                actual: query.len(),
            });
        }
        if k == 0 {
            return Err(ModelError::InvalidValue("k must be >= 1".into()));
        }
        #[derive(Debug)]
        struct Near<'a> {
            min_dist2: f64,
            node: &'a Node,
        }
        impl PartialEq for Near<'_> {
            fn eq(&self, other: &Self) -> bool {
                self.min_dist2 == other.min_dist2
            }
        }
        impl Eq for Near<'_> {}
        impl PartialOrd for Near<'_> {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Near<'_> {
            fn cmp(&self, other: &Self) -> Ordering {
                // Reverse: BinaryHeap pops max, we want min distance first.
                other.min_dist2.total_cmp(&self.min_dist2)
            }
        }
        let min_dist2 = |rect: &Rect| -> f64 {
            rect.lo
                .iter()
                .zip(&rect.hi)
                .zip(query)
                .map(|((lo, hi), q)| {
                    let d = if q < lo {
                        lo - q
                    } else if q > hi {
                        q - hi
                    } else {
                        0.0
                    };
                    d * d
                })
                .sum()
        };
        let mut frontier = BinaryHeap::new();
        frontier.push(Near {
            min_dist2: min_dist2(&self.root.mbr()),
            node: &self.root,
        });
        // Max-heap of current best k (largest distance on top).
        let mut best: Vec<(usize, f64)> = Vec::new();
        while let Some(Near {
            min_dist2: bound,
            node,
        }) = frontier.pop()
        {
            if best.len() >= k && bound >= best[k - 1].1 {
                break;
            }
            match node {
                Node::Leaf { items, .. } => {
                    for &i in items {
                        let d2: f64 = self
                            .points
                            .row(i)
                            .iter()
                            .zip(query)
                            .map(|(p, q)| (p - q) * (p - q))
                            .sum();
                        let pos = best
                            .binary_search_by(|probe| probe.1.total_cmp(&d2).then(probe.0.cmp(&i)))
                            .unwrap_or_else(|p| p);
                        if pos < k {
                            best.insert(pos, (i, d2));
                            best.truncate(k);
                        }
                    }
                }
                Node::Internal { rects, children } => {
                    for (r, c) in rects.iter().zip(children) {
                        frontier.push(Near {
                            min_dist2: min_dist2(r),
                            node: c,
                        });
                    }
                }
            }
        }
        Ok(best.into_iter().map(|(i, d2)| (i, d2.sqrt())).collect())
    }

    /// Tree depth (1 for a single leaf).
    pub fn depth(&self) -> usize {
        let mut d = 1;
        let mut node = &self.root;
        while let Node::Internal { children, .. } = node {
            d += 1;
            node = &children[0];
        }
        d
    }
}

/// Recursive insert; returns `Some((r1, n1, r2, n2))` when this level split.
fn insert_rec(
    node: &mut Node,
    rect: Rect,
    item: usize,
    allow_reinsert: bool,
    evicted: &mut Vec<(Rect, usize)>,
) -> Option<(Rect, Node, Rect, Node)> {
    match node {
        Node::Leaf { rects, items } => {
            rects.push(rect);
            items.push(item);
            if rects.len() <= MAX_ENTRIES {
                return None;
            }
            if allow_reinsert {
                // Forced reinsert: evict entries farthest from the node
                // center instead of splitting.
                let mbr = node_mbr(rects);
                let center = mbr.center();
                let mut order: Vec<usize> = (0..rects.len()).collect();
                order.sort_by(|&a, &b| {
                    dist2(&rects[b].center(), &center)
                        .total_cmp(&dist2(&rects[a].center(), &center))
                });
                let evict: Vec<usize> = order.into_iter().take(REINSERT_COUNT).collect();
                let mut evict_sorted = evict;
                evict_sorted.sort_unstable_by(|a, b| b.cmp(a));
                for pos in evict_sorted {
                    evicted.push((rects.remove(pos), items.remove(pos)));
                }
                return None;
            }
            // R* split.
            let (first, second) = split_entries(std::mem::take(rects), std::mem::take(items));
            let (r1, n1) = first;
            let (r2, n2) = second;
            *node = n1;
            let old = std::mem::replace(
                node,
                Node::Leaf {
                    rects: Vec::new(),
                    items: Vec::new(),
                },
            );
            Some((r1, old, r2, n2))
        }
        Node::Internal { rects, children } => {
            let leaf_level = matches!(children[0], Node::Leaf { .. });
            let chosen = choose_subtree(rects, &rect, leaf_level);
            let split = insert_rec(&mut children[chosen], rect, item, allow_reinsert, evicted);
            if split.is_none() {
                rects[chosen] = children[chosen].mbr();
            }
            if let Some((r1, n1, r2, n2)) = split {
                rects[chosen] = r1;
                children[chosen] = n1;
                rects.push(r2);
                children.push(n2);
                if rects.len() > MAX_ENTRIES {
                    let (rs, cs) = (std::mem::take(rects), std::mem::take(children));
                    let ((ra, na), (rb, nb)) = split_internal(rs, cs);
                    *node = na;
                    let old = std::mem::replace(
                        node,
                        Node::Leaf {
                            rects: Vec::new(),
                            items: Vec::new(),
                        },
                    );
                    return Some((ra, old, rb, nb));
                }
            }
            None
        }
    }
}

fn node_mbr(rects: &[Rect]) -> Rect {
    rects
        .iter()
        .cloned()
        .reduce(|a, b| a.union(&b))
        .expect("non-empty")
}

fn dist2(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// R* choose-subtree: minimum overlap enlargement at the level above
/// leaves, minimum area enlargement higher up; ties by smaller area.
fn choose_subtree(rects: &[Rect], new: &Rect, leaf_level: bool) -> usize {
    let mut best = 0usize;
    let mut best_key = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
    for (i, r) in rects.iter().enumerate() {
        let enlarged = r.union(new);
        let primary = if leaf_level {
            // Overlap enlargement against siblings.
            let mut before = 0.0;
            let mut after = 0.0;
            for (j, s) in rects.iter().enumerate() {
                if i == j {
                    continue;
                }
                before += r.overlap(s);
                after += enlarged.overlap(s);
            }
            after - before
        } else {
            r.enlargement(new)
        };
        let key = (primary, r.enlargement(new), r.area());
        if key < best_key {
            best_key = key;
            best = i;
        }
    }
    best
}

/// R* split for leaf entries: margin-minimizing axis, overlap-minimizing
/// distribution.
fn split_entries(rects: Vec<Rect>, items: Vec<usize>) -> ((Rect, Node), (Rect, Node)) {
    let idx = rstar_split_order(&rects);
    let (left, right) = idx;
    let gather = |ids: &[usize]| {
        let rs: Vec<Rect> = ids.iter().map(|&i| rects[i].clone()).collect();
        let it: Vec<usize> = ids.iter().map(|&i| items[i]).collect();
        let mbr = node_mbr(&rs);
        (
            mbr,
            Node::Leaf {
                rects: rs,
                items: it,
            },
        )
    };
    (gather(&left), gather(&right))
}

fn split_internal(rects: Vec<Rect>, children: Vec<Node>) -> ((Rect, Node), (Rect, Node)) {
    let (left, right) = rstar_split_order(&rects);
    let mut children: Vec<Option<Node>> = children.into_iter().map(Some).collect();
    let mut gather = |ids: &[usize]| {
        let rs: Vec<Rect> = ids.iter().map(|&i| rects[i].clone()).collect();
        let cs: Vec<Node> = ids
            .iter()
            .map(|&i| children[i].take().expect("each child used once"))
            .collect();
        let mbr = node_mbr(&rs);
        (
            mbr,
            Node::Internal {
                rects: rs,
                children: cs,
            },
        )
    };
    let l = gather(&left);
    let r = gather(&right);
    (l, r)
}

/// Chooses the R* split axis and distribution; returns (left ids, right
/// ids).
fn rstar_split_order(rects: &[Rect]) -> (Vec<usize>, Vec<usize>) {
    let dims = rects[0].dims();
    let n = rects.len();
    let mut best: Option<(f64, f64, Vec<usize>, usize)> = None; // (overlap, area, order, split_at)
    for axis in 0..dims {
        for lo_side in [true, false] {
            let mut order: Vec<usize> = (0..n).collect();
            order.sort_by(|&a, &b| {
                let ka = if lo_side {
                    rects[a].lo[axis]
                } else {
                    rects[a].hi[axis]
                };
                let kb = if lo_side {
                    rects[b].lo[axis]
                } else {
                    rects[b].hi[axis]
                };
                ka.total_cmp(&kb)
            });
            // Candidate distributions: first k in left, rest right.
            for k in MIN_ENTRIES..=(n - MIN_ENTRIES) {
                let left_mbr = node_mbr(
                    &order[..k]
                        .iter()
                        .map(|&i| rects[i].clone())
                        .collect::<Vec<_>>(),
                );
                let right_mbr = node_mbr(
                    &order[k..]
                        .iter()
                        .map(|&i| rects[i].clone())
                        .collect::<Vec<_>>(),
                );
                let overlap = left_mbr.overlap(&right_mbr);
                let area = left_mbr.area() + right_mbr.area();
                let margin = left_mbr.margin() + right_mbr.margin();
                // Rank primarily by overlap then area then margin.
                let key = (overlap, area + margin * 1e-9);
                if best
                    .as_ref()
                    .map(|(bo, ba, _, _)| key < (*bo, *ba))
                    .unwrap_or(true)
                {
                    best = Some((key.0, key.1, order.clone(), k));
                }
            }
        }
    }
    let (_, _, order, k) = best.expect("n > MAX_ENTRIES >= 2 * MIN_ENTRIES");
    (order[..k].to_vec(), order[k..].to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan_top_k;
    use proptest::prelude::*;

    fn grid_points(n_side: usize) -> Vec<Vec<f64>> {
        let mut pts = Vec::new();
        for r in 0..n_side {
            for c in 0..n_side {
                pts.push(vec![r as f64, c as f64]);
            }
        }
        pts
    }

    fn pseudo_points(seed: u64, n: usize, d: usize) -> Vec<Vec<f64>> {
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| (0..d).map(|_| next() * 100.0).collect())
            .collect()
    }

    #[test]
    fn build_validates() {
        assert!(matches!(RStarTree::bulk(vec![]), Err(ModelError::Empty)));
        assert!(RStarTree::bulk(vec![vec![1.0], vec![1.0, 2.0]]).is_err());
    }

    #[test]
    fn range_on_grid() {
        let tree = RStarTree::bulk(grid_points(10)).unwrap();
        assert_eq!(tree.len(), 100);
        assert!(tree.depth() >= 2, "100 points must split");
        let hits = tree.range(&Rect::new(&[2.0, 2.0], &[4.0, 4.0]));
        assert_eq!(hits.results.len(), 9);
        let all = tree.range(&Rect::new(&[-1.0, -1.0], &[100.0, 100.0]));
        assert_eq!(all.results.len(), 100);
        let none = tree.range(&Rect::new(&[50.0, 50.0], &[60.0, 60.0]));
        assert!(none.results.is_empty());
    }

    #[test]
    fn range_prunes_nodes() {
        let tree = RStarTree::bulk(pseudo_points(1, 2000, 2)).unwrap();
        let small = tree.range(&Rect::new(&[10.0, 10.0], &[12.0, 12.0]));
        let full = tree.range(&Rect::new(&[0.0, 0.0], &[100.0, 100.0]));
        assert!(
            small.stats.tuples_examined < full.stats.tuples_examined / 4,
            "selective query should prune: {} vs {}",
            small.stats.tuples_examined,
            full.stats.tuples_examined
        );
    }

    #[test]
    fn top_k_matches_scan() {
        let points = pseudo_points(3, 1500, 3);
        let tree = RStarTree::bulk(points.clone()).unwrap();
        for k in [1usize, 10] {
            let dir = vec![1.0, -0.5, 0.2];
            let fast = tree.top_k_max(&dir, k).unwrap();
            let slow = scan_top_k(&points, k, |p| dir.iter().zip(p).map(|(a, v)| a * v).sum());
            assert!(fast.score_equivalent(&slow, 1e-9), "k={k}");
            assert!(fast.stats.tuples_examined < slow.stats.tuples_examined);
        }
    }

    #[test]
    fn top_k_validates() {
        let tree = RStarTree::bulk(vec![vec![0.0, 0.0]]).unwrap();
        assert!(tree.top_k_max(&[1.0], 1).is_err());
        assert!(tree.top_k_max(&[1.0, 0.0], 0).is_err());
    }

    #[test]
    fn duplicates_and_single_point() {
        let tree = RStarTree::bulk(vec![vec![5.0, 5.0]; 40]).unwrap();
        let hits = tree.range(&Rect::new(&[5.0, 5.0], &[5.0, 5.0]));
        assert_eq!(hits.results.len(), 40);
        let top = tree.top_k_max(&[1.0, 1.0], 3).unwrap();
        assert_eq!(top.results.len(), 3);
    }

    #[test]
    fn nearest_matches_brute_force() {
        let points = pseudo_points(7, 1200, 3);
        let tree = RStarTree::bulk(points.clone()).unwrap();
        let query = vec![50.0, 50.0, 50.0];
        let got = tree.nearest(&query, 5).unwrap();
        let mut brute: Vec<(usize, f64)> = points
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let d2: f64 = p.iter().zip(&query).map(|(a, b)| (a - b) * (a - b)).sum();
                (i, d2.sqrt())
            })
            .collect();
        brute.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        brute.truncate(5);
        for ((gi, gd), (bi, bd)) in got.iter().zip(&brute) {
            assert_eq!(gi, bi);
            assert!((gd - bd).abs() < 1e-9);
        }
        // Validation paths.
        assert!(tree.nearest(&[0.0], 1).is_err());
        assert!(tree.nearest(&query, 0).is_err());
    }

    #[test]
    fn nearest_with_k_exceeding_size() {
        let tree = RStarTree::bulk(vec![vec![0.0, 0.0], vec![3.0, 4.0]]).unwrap();
        let got = tree.nearest(&[0.0, 0.0], 10).unwrap();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].0, 0);
        assert!((got[1].1 - 5.0).abs() < 1e-12);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(30))]
        #[test]
        fn prop_nearest_matches_brute(
            seed in 0u64..200,
            n in 1usize..250,
            k in 1usize..6,
            qx in 0.0f64..100.0,
            qy in 0.0f64..100.0,
        ) {
            let points = pseudo_points(seed, n, 2);
            let tree = RStarTree::bulk(points.clone()).unwrap();
            let query = vec![qx, qy];
            let got = tree.nearest(&query, k).unwrap();
            let mut brute: Vec<(usize, f64)> = points
                .iter()
                .enumerate()
                .map(|(i, p)| {
                    let d2: f64 = p.iter().zip(&query).map(|(a, b)| (a - b) * (a - b)).sum();
                    (i, d2.sqrt())
                })
                .collect();
            brute.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
            brute.truncate(k);
            prop_assert_eq!(got.len(), brute.len());
            for ((gi, gd), (bi, bd)) in got.iter().zip(&brute) {
                prop_assert_eq!(gi, bi);
                prop_assert!((gd - bd).abs() < 1e-9);
            }
        }

        #[test]
        fn prop_range_matches_brute_force(
            seed in 0u64..500,
            n in 1usize..400,
            qx in 0.0f64..100.0,
            qy in 0.0f64..100.0,
            w in 0.0f64..50.0,
            h in 0.0f64..50.0,
        ) {
            let points = pseudo_points(seed, n, 2);
            let tree = RStarTree::bulk(points.clone()).unwrap();
            let query = Rect::new(&[qx, qy], &[qx + w, qy + h]);
            let got = tree.range(&query).results;
            let expected: Vec<usize> = points
                .iter()
                .enumerate()
                .filter(|(_, p)| query.contains(p))
                .map(|(i, _)| i)
                .collect();
            prop_assert_eq!(got, expected);
        }

        #[test]
        fn prop_top_k_matches_scan(
            seed in 0u64..300,
            n in 1usize..300,
            d in 1usize..4,
            k in 1usize..8,
        ) {
            let points = pseudo_points(seed, n, d);
            let tree = RStarTree::bulk(points.clone()).unwrap();
            let dir: Vec<f64> = (0..d).map(|i| if i % 2 == 0 { 1.0 } else { -0.7 }).collect();
            let fast = tree.top_k_max(&dir, k).unwrap();
            let slow = scan_top_k(&points, k, |p| dir.iter().zip(p).map(|(a, v)| a * v).sum());
            prop_assert!(fast.score_equivalent(&slow, 1e-9));
        }
    }
}
