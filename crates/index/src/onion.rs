//! The Onion technique (paper §3.2, reference \[11\]): indexing for linear
//! optimization queries by convex-hull layer peeling.
//!
//! "An indexing technique, Onion, based on convex hull was proposed in \[11\]
//! to address the issue of locating tuples that optimize (either maximize or
//! minimize) a linear model. Experimental results have shown, with
//! three-parameter Gaussian distributed data sets, a speed-up of 13,000 fold
//! ... for retrieving the top-one choice while a speed-up of 1,400 fold ...
//! for retrieving the top-ten choices, both measured against sequential scan
//! of the unindexed data set."
//!
//! ## Construction
//!
//! Points are peeled into layers, outermost first. For 2-D data each layer
//! is the exact convex hull (Andrew's monotone chain over a single global
//! sort). For d >= 3 exact hulls are replaced by direction-sweep extreme
//! sets: the union of per-direction argmax points over a fixed bundle of
//! axis + seeded-random directions. That layer is a subset of the true hull,
//! which would be unsound on its own — so correctness is restored at query
//! time (below). Peeling stops after `max_layers`; the remainder forms a
//! core bucket.
//!
//! ## Query soundness
//!
//! At build time each peel records the bounding box of *all points at that
//! depth or deeper*. A query walks layers outward-in, keeps a top-K heap,
//! and stops only when the K-th best score already reached is at least the
//! box upper bound of everything not yet examined. The box bound holds for
//! any layer contents whatsoever, so results are exactly the scan results
//! (property-tested) regardless of hull exactness; layer quality only
//! affects how early the walk stops.
//!
//! ## Data layout
//!
//! Tuples live in a flat row-major [`PointStore`]. The d >= 3 peel sweep is
//! the build hot path, and it now makes **one** streaming pass over the
//! store per layer, updating every bundle direction's running argmax per
//! row ([`kernels::sweep_argmax_block`]) — instead of one pointer-chased
//! pass per direction over `Vec<Vec<f64>>`. Per-direction winners are
//! unchanged (same visit order, same strict-max rule), so layers are
//! bit-identical to the legacy build, which remains available as
//! [`OnionIndex::build_legacy`] for benchmarking and as the reference in
//! bit-identity property tests.

use crate::kernels;
use crate::quant::{QuantPruneReport, QuantizedStore, QUANT_SUB_ROWS};
use crate::scan::TopKHeap;
use crate::stats::{QueryStats, ScoredItem, TopKResult};
use crate::store::PointStore;
use mbir_models::error::ModelError;
use rand_like::DirectionBundle;

/// Deterministic pseudo-random unit directions (no `rand` dependency in
/// this crate; a splitmix-style generator is ample for direction bundles).
mod rand_like {
    /// A reproducible bundle of unit directions in `d` dimensions.
    #[derive(Debug, Clone)]
    pub struct DirectionBundle {
        directions: Vec<Vec<f64>>,
    }

    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn uniform(state: &mut u64) -> f64 {
        (splitmix(state) >> 11) as f64 / (1u64 << 53) as f64
    }

    fn gaussian(state: &mut u64) -> f64 {
        let u = uniform(state).max(1e-300);
        let v = uniform(state);
        (-2.0 * u.ln()).sqrt() * (2.0 * std::f64::consts::PI * v).cos()
    }

    impl DirectionBundle {
        /// `2d` axis directions plus `extra` random unit vectors.
        pub fn new(d: usize, extra: usize, seed: u64) -> Self {
            let mut directions = Vec::with_capacity(2 * d + extra);
            for i in 0..d {
                let mut plus = vec![0.0; d];
                plus[i] = 1.0;
                directions.push(plus);
                let mut minus = vec![0.0; d];
                minus[i] = -1.0;
                directions.push(minus);
            }
            let mut state = seed ^ 0x5eed_0123_4567_89ab;
            for _ in 0..extra {
                let mut v: Vec<f64> = (0..d).map(|_| gaussian(&mut state)).collect();
                let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
                if norm > 1e-12 {
                    for x in &mut v {
                        *x /= norm;
                    }
                    directions.push(v);
                }
            }
            DirectionBundle { directions }
        }

        /// The directions.
        pub fn directions(&self) -> &[Vec<f64>] {
            &self.directions
        }

        /// Appends extra (already normalized) directions.
        pub fn with_extra(mut self, extra: &[Vec<f64>]) -> Self {
            self.directions.extend(extra.iter().cloned());
            self
        }
    }
}

/// Sound enclosure of a point set: bounding box plus enclosing sphere
/// (box center, max distance). For any direction the true maximum of
/// `direction . x` is at most `min(box corner bound, sphere bound)` — the
/// sphere bound `a·c + |a|·R` is much tighter for ball-like (Gaussian)
/// clouds, the box bound for axis-aligned ones.
#[derive(Debug, Clone, PartialEq)]
struct BoundingBox {
    lo: Vec<f64>,
    hi: Vec<f64>,
    center: Vec<f64>,
    radius: f64,
}

impl BoundingBox {
    /// Encloses `members`, reading coordinates through `row` — the one
    /// implementation serves both the flat store and the legacy nested
    /// points (identical per-coordinate fold order either way).
    fn of<'a, F, M>(row: F, members: M, d: usize) -> Option<Self>
    where
        F: Fn(usize) -> &'a [f64],
        M: Iterator<Item = usize> + Clone,
    {
        let mut lo = vec![f64::INFINITY; d];
        let mut hi = vec![f64::NEG_INFINITY; d];
        let mut any = false;
        for idx in members.clone() {
            any = true;
            kernels::min_max_update(&mut lo, &mut hi, row(idx));
        }
        if !any {
            return None;
        }
        let center: Vec<f64> = lo.iter().zip(&hi).map(|(l, h)| (l + h) / 2.0).collect();
        let mut radius: f64 = 0.0;
        for idx in members {
            let d2: f64 = row(idx)
                .iter()
                .zip(&center)
                .map(|(v, c)| (v - c) * (v - c))
                .sum();
            radius = radius.max(d2);
        }
        Some(BoundingBox {
            lo,
            hi,
            center,
            radius: radius.sqrt(),
        })
    }

    /// Grows the enclosure to cover one more point.
    fn extend(&mut self, point: &[f64]) {
        kernels::min_max_update(&mut self.lo, &mut self.hi, point);
        let d2: f64 = point
            .iter()
            .zip(&self.center)
            .map(|(v, c)| (v - c) * (v - c))
            .sum();
        self.radius = self.radius.max(d2.sqrt());
    }

    /// Whether the enclosure's bounds already cover `point` — inside the
    /// box **and** inside the sphere, so both halves of
    /// [`upper_bound`](Self::upper_bound) stay sound if the point joins
    /// the enclosed set.
    fn contains(&self, point: &[f64]) -> bool {
        let in_box = point
            .iter()
            .zip(self.lo.iter().zip(&self.hi))
            .all(|(v, (lo, hi))| *v >= *lo && *v <= *hi);
        if !in_box {
            return false;
        }
        let d2: f64 = point
            .iter()
            .zip(&self.center)
            .map(|(v, c)| (v - c) * (v - c))
            .sum();
        d2.sqrt() <= self.radius
    }

    /// Sound upper bound on `direction . x` over the enclosed set.
    fn upper_bound(&self, direction: &[f64]) -> f64 {
        let box_bound: f64 = direction
            .iter()
            .zip(self.lo.iter().zip(&self.hi))
            .map(|(a, (lo, hi))| if *a >= 0.0 { a * hi } else { a * lo })
            .sum();
        let norm: f64 = direction.iter().map(|a| a * a).sum::<f64>().sqrt();
        let centered: f64 = direction.iter().zip(&self.center).map(|(a, c)| a * c).sum();
        let sphere_bound = centered + norm * self.radius;
        box_bound.min(sphere_bound)
    }
}

/// What an incremental [`OnionIndex::append_points`] did: how much of the
/// layer structure survived and how much was re-peeled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OnionAppendReport {
    /// Tuples appended.
    pub appended: usize,
    /// Leading layers kept untouched (the batch was inside their
    /// enclosures).
    pub kept_layers: usize,
    /// Layers re-peeled over the dirtied suffix plus the batch.
    pub repeeled_layers: usize,
}

/// The Onion index over a fixed set of d-dimensional tuples.
///
/// # Examples
///
/// ```
/// use mbir_index::onion::OnionIndex;
///
/// let points = vec![vec![0.1, 0.1], vec![0.9, 0.2], vec![0.5, 0.95], vec![0.5, 0.5]];
/// let onion = OnionIndex::build(points).unwrap();
/// let top = onion.top_k_max(&[0.0, 1.0], 1).unwrap();
/// assert_eq!(top.results[0].index, 2);
/// ```
#[derive(Debug, Clone)]
pub struct OnionIndex {
    points: PointStore,
    dims: usize,
    /// Layers outermost-first; the final entry is the unpeeled core.
    layers: Vec<Vec<usize>>,
    /// `remaining_box[l]` bounds every point in layers `l..`.
    remaining_box: Vec<BoundingBox>,
    /// Workload hint directions (normalized) registered at build time.
    hints: Vec<Vec<f64>>,
    /// `hint_support[l][h]` = exact max of `hints[h] . x` over layers `l..`
    /// — a tight, sound stopping bound for queries parallel to a hint.
    hint_support: Vec<Vec<f64>>,
    /// Number of leading layers that are *exact convex hulls* (all peeled
    /// layers for d <= 2; zero for d >= 3, whose sweep layers are hull
    /// subsets). Within this prefix the classical Onion theorem applies:
    /// the j-th best tuple of any linear query lies in the first j layers.
    exact_hull_layers: usize,
    /// Optional i8 coarse-pass side structure over `points`: lets the
    /// query walk and the build sweep reject whole blocks below the
    /// current floor before touching f64 data. Prune-only — answers are
    /// bit-identical with or without it. Dropped by [`OnionIndex::insert`]
    /// (the store changes under it) and restored by
    /// [`OnionIndex::rebuild`].
    quant: Option<QuantizedStore>,
}

impl OnionIndex {
    /// Builds the index with default peeling limits (64 layers, 32 extra
    /// sweep directions).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Empty`] for no points and
    /// [`ModelError::ArityMismatch`] for ragged dimensions.
    pub fn build(points: Vec<Vec<f64>>) -> Result<Self, ModelError> {
        OnionIndex::build_with_hints(points, &[], 64, 32, 7)
    }

    /// Builds with explicit limits: at most `max_layers` peels, `extra_dirs`
    /// random sweep directions (d >= 3 only), and a seed for the bundle.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Empty`] for no points and
    /// [`ModelError::ArityMismatch`] for ragged dimensions.
    pub fn build_with(
        points: Vec<Vec<f64>>,
        max_layers: usize,
        extra_dirs: usize,
        seed: u64,
    ) -> Result<Self, ModelError> {
        OnionIndex::build_with_hints(points, &[], max_layers, extra_dirs, seed)
    }

    /// Builds with *workload hints*: known model directions (this is the
    /// paper's model-specific indexing — the index is built for the model).
    /// For every hint `h` the exact support `max h·x` over each peel
    /// remainder is stored, so a query whose direction is positively
    /// parallel to a hint gets a tight sound stopping bound instead of the
    /// generic box/sphere bound. Hints are also added to the peel sweep so
    /// their argmax points land in the outer layers.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Empty`] for no points,
    /// [`ModelError::ArityMismatch`] for ragged dimensions or wrong-length
    /// hints, and [`ModelError::InvalidValue`] for zero/non-finite hints.
    pub fn build_with_hints(
        points: Vec<Vec<f64>>,
        hints: &[Vec<f64>],
        max_layers: usize,
        extra_dirs: usize,
        seed: u64,
    ) -> Result<Self, ModelError> {
        OnionIndex::build_with_hints_threads(points, hints, max_layers, extra_dirs, seed, 1)
    }

    /// Builds the index with default limits using `threads` OS threads for
    /// the per-layer direction sweep (d >= 3; lower dimensions build their
    /// exact hulls sequentially — they are already cheap). The layer
    /// structure is **bit-identical** to the sequential build: each
    /// direction's argmax is computed independently and deterministically,
    /// and the per-layer union is sorted and deduplicated, so how the
    /// directions are dealt to threads cannot change the result.
    ///
    /// # Errors
    ///
    /// Same as [`OnionIndex::build`].
    pub fn build_parallel(points: Vec<Vec<f64>>, threads: usize) -> Result<Self, ModelError> {
        OnionIndex::build_with_hints_threads(points, &[], 64, 32, 7, threads)
    }

    /// Fully parameterized build: hints, peel limits, sweep seed, and the
    /// number of threads for the d >= 3 direction sweep. `threads <= 1`
    /// runs entirely on the calling thread.
    ///
    /// # Errors
    ///
    /// Same as [`OnionIndex::build_with_hints`].
    pub fn build_with_hints_threads(
        points: Vec<Vec<f64>>,
        hints: &[Vec<f64>],
        max_layers: usize,
        extra_dirs: usize,
        seed: u64,
        threads: usize,
    ) -> Result<Self, ModelError> {
        OnionIndex::build_impl(
            points, hints, max_layers, extra_dirs, seed, threads, false, false,
        )
    }

    /// Builds with default limits **plus the i8 quantized side structure**
    /// (see [`crate::quant`]): the d >= 3 peel sweep skips blocks whose
    /// coarse bound cannot beat any direction's running argmax, and
    /// queries go through [`OnionIndex::top_k_max_quant`]'s coarse-pruned
    /// walk. Layers and query answers are bit-identical to
    /// [`OnionIndex::build`] — the coarse pass only ever prunes work that
    /// provably cannot matter.
    ///
    /// # Errors
    ///
    /// Same as [`OnionIndex::build`].
    pub fn build_quantized(points: Vec<Vec<f64>>) -> Result<Self, ModelError> {
        OnionIndex::build_quantized_with(points, 64, 32, 7, 1)
    }

    /// [`OnionIndex::build_quantized`] with explicit peel limits, sweep
    /// seed, and thread count.
    ///
    /// # Errors
    ///
    /// Same as [`OnionIndex::build_with`].
    pub fn build_quantized_with(
        points: Vec<Vec<f64>>,
        max_layers: usize,
        extra_dirs: usize,
        seed: u64,
        threads: usize,
    ) -> Result<Self, ModelError> {
        OnionIndex::build_impl(
            points,
            &[],
            max_layers,
            extra_dirs,
            seed,
            threads,
            false,
            true,
        )
    }

    /// Attaches (or rebuilds) the quantized side structure on an existing
    /// index, enabling the coarse-pruned query path.
    pub fn with_quantized(mut self) -> Self {
        self.quant = Some(QuantizedStore::build(&self.points));
        self
    }

    /// Whether the quantized side structure is present.
    pub fn is_quantized(&self) -> bool {
        self.quant.is_some()
    }

    /// Builds via the pre-`PointStore` reference path: nested
    /// `Vec<Vec<f64>>` storage end to end, one sweep pass per direction.
    /// Layers, bounds, and query answers are bit-identical to
    /// [`OnionIndex::build`]; only the construction cost differs. Kept as
    /// the honest "before" baseline for the kernels benchmark and as the
    /// reference in bit-identity property tests.
    ///
    /// # Errors
    ///
    /// Same as [`OnionIndex::build`].
    pub fn build_legacy(points: Vec<Vec<f64>>) -> Result<Self, ModelError> {
        OnionIndex::build_legacy_with(points, 64, 32, 7)
    }

    /// [`OnionIndex::build_legacy`] with explicit peel limits and seed.
    ///
    /// # Errors
    ///
    /// Same as [`OnionIndex::build_with`].
    pub fn build_legacy_with(
        points: Vec<Vec<f64>>,
        max_layers: usize,
        extra_dirs: usize,
        seed: u64,
    ) -> Result<Self, ModelError> {
        OnionIndex::build_impl(points, &[], max_layers, extra_dirs, seed, 1, true, false)
    }

    #[allow(clippy::too_many_arguments)]
    fn build_impl(
        points: Vec<Vec<f64>>,
        hints: &[Vec<f64>],
        max_layers: usize,
        extra_dirs: usize,
        seed: u64,
        threads: usize,
        legacy: bool,
        quantize: bool,
    ) -> Result<Self, ModelError> {
        let first = points.first().ok_or(ModelError::Empty)?;
        let dims = first.len();
        if dims == 0 {
            return Err(ModelError::Empty);
        }
        for p in &points {
            if p.len() != dims {
                return Err(ModelError::ArityMismatch {
                    expected: dims,
                    actual: p.len(),
                });
            }
        }
        // Validate and normalize hints.
        let mut unit_hints: Vec<Vec<f64>> = Vec::with_capacity(hints.len());
        for h in hints {
            if h.len() != dims {
                return Err(ModelError::ArityMismatch {
                    expected: dims,
                    actual: h.len(),
                });
            }
            let norm: f64 = h.iter().map(|v| v * v).sum::<f64>().sqrt();
            if !norm.is_finite() || norm <= 0.0 {
                return Err(ModelError::InvalidValue(
                    "hint directions must be non-zero and finite".into(),
                ));
            }
            unit_hints.push(h.iter().map(|v| v / norm).collect());
        }

        let n = points.len();
        let store = PointStore::from_rows(&points)?;
        let quant_store = if quantize && !legacy {
            Some(QuantizedStore::build(&store))
        } else {
            None
        };
        let mut alive = vec![true; n];
        let mut remaining = n;
        let mut layers: Vec<Vec<usize>> = Vec::new();
        let mut remaining_box: Vec<BoundingBox> = Vec::new();
        let mut hint_support: Vec<Vec<f64>> = Vec::new();

        // Pre-sort for 2-D monotone chain reuse.
        let sorted_2d: Option<Vec<usize>> = if dims == 2 {
            let mut order: Vec<usize> = (0..n).collect();
            order.sort_by(|&a, &b| {
                store.row(a)[0]
                    .total_cmp(&store.row(b)[0])
                    .then(store.row(a)[1].total_cmp(&store.row(b)[1]))
            });
            Some(order)
        } else {
            None
        };
        let bundle = DirectionBundle::new(dims, extra_dirs, seed).with_extra(&unit_hints);

        let enclose = |alive: &[bool]| -> BoundingBox {
            let members = (0..n).filter(|i| alive[*i]);
            if legacy {
                BoundingBox::of(|i| points[i].as_slice(), members, dims)
            } else {
                BoundingBox::of(|i| store.row(i), members, dims)
            }
            .expect("remaining > 0")
        };
        let supports = |alive: &[bool]| -> Vec<f64> {
            unit_hints
                .iter()
                .map(|h| {
                    if legacy {
                        support_of_rows(alive, &points, h)
                    } else {
                        kernels::max_score_alive(store.flat(), dims, alive, h)
                    }
                })
                .collect()
        };

        while remaining > 0 && layers.len() < max_layers {
            remaining_box.push(enclose(&alive));
            hint_support.push(supports(&alive));
            let layer = match (&sorted_2d, dims) {
                (_, 1) => extremes_1d(&store, &alive),
                (Some(order), 2) => hull_2d(&store, &alive, order),
                _ => {
                    if legacy {
                        sweep_layer_threads(&points, &alive, &bundle, threads)
                    } else {
                        sweep_layer_flat_threads(
                            &store,
                            &alive,
                            &bundle,
                            threads,
                            quant_store.as_ref(),
                        )
                    }
                }
            };
            debug_assert!(!layer.is_empty(), "peel must remove at least one point");
            for &idx in &layer {
                alive[idx] = false;
            }
            remaining -= layer.len();
            layers.push(layer);
        }
        if remaining > 0 {
            remaining_box.push(enclose(&alive));
            hint_support.push(supports(&alive));
            layers.push((0..n).filter(|i| alive[*i]).collect());
        }
        // For d <= 2 every peeled layer is an exact hull; the trailing
        // core bucket (present when the cap was hit) is not.
        let peeled = if remaining > 0 {
            layers.len() - 1
        } else {
            layers.len()
        };
        let exact_hull_layers = if dims <= 2 { peeled } else { 0 };
        Ok(OnionIndex {
            points: store,
            dims,
            layers,
            remaining_box,
            hints: unit_hints,
            hint_support,
            exact_hull_layers,
            quant: quant_store,
        })
    }

    /// Inserts a tuple without rebuilding: the point joins the *outermost*
    /// layer, which preserves query exactness (an outer-layer point is
    /// always examined before any stopping decision) at the cost of one
    /// extra examined tuple per insert. Registered hint supports are
    /// updated. Call [`OnionIndex::rebuild`] once inserts accumulate.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::ArityMismatch`] for a wrong-width tuple.
    pub fn insert(&mut self, point: Vec<f64>) -> Result<usize, ModelError> {
        if point.len() != self.dims {
            return Err(ModelError::ArityMismatch {
                expected: self.dims,
                actual: point.len(),
            });
        }
        // Update every remaining-set enclosure: the new point is "visible"
        // from depth 0 only (it lives in layer 0), so only that level's
        // bounds must cover it — but remaining_box[l] must bound layers
        // l.., and the new point joins layer 0, so only level 0 grows.
        if let Some(bbox) = self.remaining_box.first_mut() {
            bbox.extend(&point);
        }
        for (h, hint) in self.hints.iter().enumerate() {
            let s: f64 = hint.iter().zip(&point).map(|(a, v)| a * v).sum();
            if let Some(level0) = self.hint_support.first_mut() {
                level0[h] = level0[h].max(s);
            }
        }
        let idx = self.points.push_row(&point)?;
        self.layers[0].push(idx);
        // The store just changed under the quantized side structure; drop
        // it rather than serve stale bounds (queries fall back to the
        // exact walk until the next rebuild).
        self.quant = None;
        Ok(idx)
    }

    /// Appends a batch of tuples, rebuilding **only the dirtied hull
    /// suffix** — the incremental maintenance path for appendable
    /// archives, between per-point [`OnionIndex::insert`] (O(1) but
    /// degrades the outer layer) and a full [`OnionIndex::rebuild`].
    ///
    /// Each new point's *depth* is the number of leading remaining-set
    /// enclosures that already contain it (box **and** sphere); the dirty
    /// frontier is the minimum depth over the batch, clamped so at least
    /// the innermost layer re-peels. Layers, enclosures, and hint
    /// supports before the frontier are kept untouched — sound because
    /// every new point is inside those enclosures and lands in a deeper
    /// layer (kept hint supports are maxed with the new points' scores).
    /// Everything at or past the frontier, plus the batch, is re-peeled
    /// with the build machinery (exact hulls for d <= 2, direction sweeps
    /// otherwise).
    ///
    /// Query answers after an append match a scratch-built index's scan
    /// answers (property-tested); only the stopping layer can differ.
    /// Because enclosure containment does not imply *hull* containment,
    /// the kept prefix can no longer be certified as exact hulls of the
    /// augmented set, so the classical-theorem fast path is conservatively
    /// disabled (`exact_hull_layers = 0`) until the next full rebuild.
    /// The quantized side structure is likewise dropped (the store grew
    /// under it); [`OnionIndex::rebuild`] or
    /// [`OnionIndex::with_quantized`] restores both.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Empty`] for an empty batch and
    /// [`ModelError::ArityMismatch`] for wrong-width tuples; the index is
    /// unchanged on error.
    pub fn append_points(&mut self, batch: &[Vec<f64>]) -> Result<OnionAppendReport, ModelError> {
        if batch.is_empty() {
            return Err(ModelError::Empty);
        }
        for p in batch {
            if p.len() != self.dims {
                return Err(ModelError::ArityMismatch {
                    expected: self.dims,
                    actual: p.len(),
                });
            }
        }
        // Dirty frontier: deepest kept prefix whose enclosures cover every
        // new point. Clamped so the innermost layer always re-peels (a
        // batch deeper than every enclosure joins the core re-peel).
        let mut dirty = self.layers.len() - 1;
        for p in batch {
            let mut depth = 0usize;
            while depth < dirty && self.remaining_box[depth].contains(p) {
                depth += 1;
            }
            dirty = dirty.min(depth);
        }
        // Kept hint supports must also cover the batch: the new points
        // live in layers >= dirty, i.e. inside every kept remainder.
        for (h, hint) in self.hints.iter().enumerate() {
            let batch_max = batch
                .iter()
                .map(|p| hint.iter().zip(p).map(|(a, v)| a * v).sum::<f64>())
                .fold(f64::NEG_INFINITY, f64::max);
            for support in self.hint_support.iter_mut().take(dirty) {
                support[h] = support[h].max(batch_max);
            }
        }
        // Grow the store and collect the re-peel subset: dirtied layers
        // plus the batch.
        let mut alive = vec![false; self.points.len() + batch.len()];
        let mut remaining = 0usize;
        for layer in &self.layers[dirty..] {
            for &idx in layer {
                alive[idx] = true;
                remaining += 1;
            }
        }
        for p in batch {
            let idx = self.points.push_row(p)?;
            alive[idx] = true;
            remaining += 1;
        }
        let repeeled_from = dirty;
        self.layers.truncate(dirty);
        self.remaining_box.truncate(dirty);
        self.hint_support.truncate(dirty);

        // Re-peel the suffix with the same machinery as the build.
        let n = alive.len();
        let dims = self.dims;
        let store = &self.points;
        let sorted_2d: Option<Vec<usize>> = if dims == 2 {
            let mut order: Vec<usize> = (0..n).filter(|&i| alive[i]).collect();
            order.sort_by(|&a, &b| {
                store.row(a)[0]
                    .total_cmp(&store.row(b)[0])
                    .then(store.row(a)[1].total_cmp(&store.row(b)[1]))
            });
            Some(order)
        } else {
            None
        };
        let bundle = DirectionBundle::new(dims, 32, 7).with_extra(&self.hints);
        let mut layers = Vec::new();
        let mut remaining_box = Vec::new();
        let mut hint_support = Vec::new();
        while remaining > 0 && repeeled_from + layers.len() < 64 {
            remaining_box.push(
                BoundingBox::of(|i| store.row(i), (0..n).filter(|&i| alive[i]), dims)
                    .expect("remaining > 0"),
            );
            hint_support.push(
                self.hints
                    .iter()
                    .map(|h| kernels::max_score_alive(store.flat(), dims, &alive, h))
                    .collect(),
            );
            let layer = match (&sorted_2d, dims) {
                (_, 1) => extremes_1d(store, &alive),
                (Some(order), 2) => hull_2d(store, &alive, order),
                _ => sweep_layer_flat_threads(store, &alive, &bundle, 1, None),
            };
            debug_assert!(!layer.is_empty(), "peel must remove at least one point");
            for &idx in &layer {
                alive[idx] = false;
            }
            remaining -= layer.len();
            layers.push(layer);
        }
        if remaining > 0 {
            remaining_box.push(
                BoundingBox::of(|i| store.row(i), (0..n).filter(|&i| alive[i]), dims)
                    .expect("remaining > 0"),
            );
            hint_support.push(
                self.hints
                    .iter()
                    .map(|h| kernels::max_score_alive(store.flat(), dims, &alive, h))
                    .collect(),
            );
            layers.push((0..n).filter(|&i| alive[i]).collect());
        }
        let repeeled_layers = layers.len();
        self.layers.extend(layers);
        self.remaining_box.extend(remaining_box);
        self.hint_support.extend(hint_support);
        // Enclosure containment is not hull containment: the kept prefix
        // can no longer be certified exact, so the classical-theorem stop
        // is disabled until the next full rebuild.
        self.exact_hull_layers = 0;
        self.quant = None;
        Ok(OnionAppendReport {
            appended: batch.len(),
            kept_layers: repeeled_from,
            repeeled_layers,
        })
    }

    /// Rebuilds the layer structure from scratch with the same hints and
    /// default limits — amortizes accumulated [`OnionIndex::insert`]s.
    ///
    /// # Errors
    ///
    /// Propagates construction errors (cannot occur for points already
    /// validated by `insert`).
    pub fn rebuild(&mut self) -> Result<(), ModelError> {
        let rebuilt =
            OnionIndex::build_with_hints(self.points.to_rows(), &self.hints.clone(), 64, 32, 7)?;
        // An index that was quantized before (or whose quantization was
        // dropped by inserts) comes back quantized.
        *self = rebuilt.with_quantized();
        Ok(())
    }

    /// Number of tuples indexed.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the index is empty (never true once built).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Number of layers (including the core bucket, if any).
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// Sizes of each layer, outermost first.
    pub fn layer_sizes(&self) -> Vec<usize> {
        self.layers.iter().map(Vec::len).collect()
    }

    /// Top-K tuples maximizing `direction . x`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::ArityMismatch`] for a wrong-length direction
    /// and [`ModelError::InvalidValue`] for `k == 0`.
    pub fn top_k_max(&self, direction: &[f64], k: usize) -> Result<TopKResult, ModelError> {
        self.top_k_impl(direction, k, kernels::dot)
    }

    /// [`OnionIndex::top_k_max`] scoring through the legacy per-point
    /// `iter().zip()` fold instead of the dispatched kernel. Bit-identical
    /// answers (the kernel preserves the summation order); kept for the
    /// before/after benchmark and bit-identity tests.
    ///
    /// # Errors
    ///
    /// Same as [`OnionIndex::top_k_max`].
    pub fn top_k_max_legacy(&self, direction: &[f64], k: usize) -> Result<TopKResult, ModelError> {
        self.top_k_impl(direction, k, |dir: &[f64], row: &[f64]| {
            dir.iter().zip(row).map(|(a, v)| a * v).sum()
        })
    }

    fn top_k_impl<F: Fn(&[f64], &[f64]) -> f64>(
        &self,
        direction: &[f64],
        k: usize,
        score: F,
    ) -> Result<TopKResult, ModelError> {
        if direction.len() != self.dims {
            return Err(ModelError::ArityMismatch {
                expected: self.dims,
                actual: direction.len(),
            });
        }
        if k == 0 {
            return Err(ModelError::InvalidValue("k must be >= 1".into()));
        }
        // Is the query positively parallel to a registered hint? Then the
        // stored exact support gives a tight, sound stopping bound.
        let norm: f64 = direction.iter().map(|a| a * a).sum::<f64>().sqrt();
        let hint = if norm > 0.0 {
            self.hints.iter().position(|h| {
                let dot: f64 = h.iter().zip(direction).map(|(a, b)| a * b).sum();
                dot / norm > 1.0 - 1e-9
            })
        } else {
            None
        };

        let mut heap = TopKHeap::new(k);
        let mut stats = QueryStats::new();
        for (l, layer) in self.layers.iter().enumerate() {
            stats.nodes_visited += 1;
            for &idx in layer {
                stats.tuples_examined += 1;
                heap.offer(ScoredItem {
                    index: idx,
                    score: score(direction, self.points.row(idx)),
                });
            }
            // Classical Onion theorem (exact-hull prefix only): the j-th
            // best of any linear query lies within the first j convex
            // layers, so once k layers are processed and the heap is full,
            // nothing deeper can enter the answer.
            if heap.floor().is_some() && l + 1 >= k && l < self.exact_hull_layers {
                break;
            }
            // Sound early stop: nothing deeper can beat the current floor.
            if let (Some(floor), Some(next_box)) = (heap.floor(), self.remaining_box.get(l + 1)) {
                let mut bound = next_box.upper_bound(direction);
                if let Some(h) = hint {
                    bound = bound.min(norm * self.hint_support[l + 1][h]);
                }
                if floor >= bound {
                    break;
                }
            }
        }
        stats.comparisons = heap.comparisons();
        Ok(TopKResult {
            results: heap.into_sorted(),
            stats,
        })
    }

    /// Batched layer walk: **one** outward-in traversal serves every
    /// direction in the batch. Each layer's rows are read from the store
    /// once; every still-active query scores them and offers to its own
    /// heap. A query leaves the walk at exactly the layer its solo run
    /// would have stopped at (its heap sees the same offers in the same
    /// order, so its floor — and therefore both stopping decisions — are
    /// the same bits), and the walk ends when no query remains active.
    ///
    /// `results[q]` (answers *and* stats) is bit-identical to the solo
    /// [`OnionIndex::top_k_max`] run with `directions[q]`: the shared
    /// traversal only amortizes row reads across the batch, it never
    /// shows a query a row its solo walk would not have examined.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::ArityMismatch`] for any wrong-length
    /// direction and [`ModelError::InvalidValue`] for `k == 0`.
    pub fn top_k_max_multi(
        &self,
        directions: &[Vec<f64>],
        k: usize,
    ) -> Result<Vec<TopKResult>, ModelError> {
        for direction in directions {
            if direction.len() != self.dims {
                return Err(ModelError::ArityMismatch {
                    expected: self.dims,
                    actual: direction.len(),
                });
            }
        }
        if k == 0 {
            return Err(ModelError::InvalidValue("k must be >= 1".into()));
        }
        let m = directions.len();
        // Per-query hint detection, identical to the solo walk's.
        let norms: Vec<f64> = directions
            .iter()
            .map(|d| d.iter().map(|a| a * a).sum::<f64>().sqrt())
            .collect();
        let hints: Vec<Option<usize>> = directions
            .iter()
            .zip(&norms)
            .map(|(direction, &norm)| {
                if norm > 0.0 {
                    self.hints.iter().position(|h| {
                        let dot: f64 = h.iter().zip(direction).map(|(a, b)| a * b).sum();
                        dot / norm > 1.0 - 1e-9
                    })
                } else {
                    None
                }
            })
            .collect();

        let mut heaps: Vec<TopKHeap> = (0..m).map(|_| TopKHeap::new(k)).collect();
        let mut stats: Vec<QueryStats> = (0..m).map(|_| QueryStats::new()).collect();
        let mut active = vec![true; m];
        let mut n_active = m;
        for (l, layer) in self.layers.iter().enumerate() {
            if n_active == 0 {
                break;
            }
            for q in 0..m {
                if active[q] {
                    stats[q].nodes_visited += 1;
                }
            }
            for &idx in layer {
                let row = self.points.row(idx);
                for q in 0..m {
                    if !active[q] {
                        continue;
                    }
                    stats[q].tuples_examined += 1;
                    heaps[q].offer(ScoredItem {
                        index: idx,
                        score: kernels::dot(&directions[q], row),
                    });
                }
            }
            for q in 0..m {
                if !active[q] {
                    continue;
                }
                let floor = heaps[q].floor();
                let classical_stop = floor.is_some() && l + 1 >= k && l < self.exact_hull_layers;
                let bound_stop = match (floor, self.remaining_box.get(l + 1)) {
                    (Some(f), Some(next_box)) => {
                        let mut bound = next_box.upper_bound(&directions[q]);
                        if let Some(h) = hints[q] {
                            bound = bound.min(norms[q] * self.hint_support[l + 1][h]);
                        }
                        f >= bound
                    }
                    _ => false,
                };
                if classical_stop || bound_stop {
                    active[q] = false;
                    n_active -= 1;
                }
            }
        }
        Ok(heaps
            .into_iter()
            .zip(stats)
            .map(|(heap, mut st)| {
                st.comparisons = heap.comparisons();
                TopKResult {
                    results: heap.into_sorted(),
                    stats: st,
                }
            })
            .collect())
    }

    /// [`OnionIndex::top_k_max`] through the quantized coarse pass: the
    /// layer walk groups each layer's members by quantized block and
    /// rejects groups whose i8 upper bound is strictly below the current
    /// K-th floor before reading any f64 row. Results are **bit-identical**
    /// to [`OnionIndex::top_k_max`] — a pruned row's offer would have been
    /// rejected by the heap anyway (strict `ub < floor`, and the bound
    /// dominates the exact kernel score). Early-stop decisions are
    /// unchanged. `tuples_examined` counts only exact-scored rows. Falls
    /// back to the exact walk when no quantized structure is attached.
    ///
    /// # Errors
    ///
    /// Same as [`OnionIndex::top_k_max`].
    pub fn top_k_max_quant(&self, direction: &[f64], k: usize) -> Result<TopKResult, ModelError> {
        self.top_k_max_quant_report(direction, k).map(|(r, _)| r)
    }

    /// [`OnionIndex::top_k_max_quant`] with the coarse-pass work report.
    ///
    /// # Errors
    ///
    /// Same as [`OnionIndex::top_k_max`].
    pub fn top_k_max_quant_report(
        &self,
        direction: &[f64],
        k: usize,
    ) -> Result<(TopKResult, QuantPruneReport), ModelError> {
        let Some(quant) = &self.quant else {
            let result = self.top_k_impl(direction, k, kernels::dot)?;
            let report = QuantPruneReport {
                rows_exact: result.stats.tuples_examined,
                ..QuantPruneReport::default()
            };
            return Ok((result, report));
        };
        if direction.len() != self.dims {
            return Err(ModelError::ArityMismatch {
                expected: self.dims,
                actual: direction.len(),
            });
        }
        if k == 0 {
            return Err(ModelError::InvalidValue("k must be >= 1".into()));
        }
        let norm: f64 = direction.iter().map(|a| a * a).sum::<f64>().sqrt();
        let hint = if norm > 0.0 {
            self.hints.iter().position(|h| {
                let dot: f64 = h.iter().zip(direction).map(|(a, b)| a * b).sum();
                dot / norm > 1.0 - 1e-9
            })
        } else {
            None
        };

        let qq = quant.prepare(direction);
        let mut heap = TopKHeap::new(k);
        let mut stats = QueryStats::new();
        let mut report = QuantPruneReport::default();
        let mut ubs: Vec<f64> = Vec::new();
        // Cached heap floor, updated whenever an offer is kept (same
        // discipline as the flat scan).
        let mut floor: Option<f64> = None;
        for (l, layer) in self.layers.iter().enumerate() {
            stats.nodes_visited += 1;
            let mut pos = 0usize;
            while pos < layer.len() {
                // Peeled layers are sorted ascending, so each quantized
                // block's members form one contiguous run; taking maximal
                // same-block runs also stays correct for the (1-D) layers
                // that are not sorted — runs just get shorter.
                let b = quant.block_of(layer[pos]);
                let (start, _) = quant.block_range(b);
                let mut end = pos + 1;
                while end < layer.len() && quant.block_of(layer[end]) == b {
                    end += 1;
                }
                let group = &layer[pos..end];
                pos = end;
                report.blocks_total += 1;
                // Snapshot of the floor for this group's prune decisions;
                // the floor only rises, so staleness is only looseness.
                let f0 = floor;
                let mut sub_filter = false;
                if let Some(f) = f0 {
                    if qq.block_upper_bound(b) < f {
                        report.blocks_pruned += 1;
                        report.rows_pruned += group.len() as u64;
                        continue;
                    }
                    // The sub-corner pass costs one O(d) corner per 32
                    // rows of the block; it pays once the group holds at
                    // least that many members. Scattered members are
                    // cheaper to just score exactly.
                    if group.len() >= quant.subs(b) {
                        qq.sub_upper_bounds(quant, b, &mut ubs);
                        sub_filter = true;
                    }
                }
                if sub_filter {
                    // Dense-group fast path. The group is a strictly
                    // increasing index list that is mostly a handful of
                    // long consecutive runs separated by peeled holes
                    // (the core bucket keeps ~97% of rows). Galloping to
                    // each run's end and then stepping the run one
                    // sub-block at a time lets a pruned sub reject
                    // `QUANT_SUB_ROWS` rows with a single compare instead
                    // of one lookup per member — this loop, not the exact
                    // kernel, is what dominates the quantized walk.
                    let mut gi = 0usize;
                    while gi < group.len() {
                        let base = group[gi];
                        // `group` strictly increases, so "prefix is
                        // consecutive" is a monotone predicate: gallop
                        // then binary-search its boundary.
                        let mut last_ok = gi;
                        let mut step = 1usize;
                        while last_ok + step < group.len()
                            && group[last_ok + step] - base == last_ok + step - gi
                        {
                            last_ok += step;
                            step *= 2;
                        }
                        let mut lo = last_ok;
                        let mut hi = (last_ok + step).min(group.len() - 1);
                        while lo < hi {
                            let mid = (lo + hi).div_ceil(2);
                            if group[mid] - base == mid - gi {
                                lo = mid;
                            } else {
                                hi = mid - 1;
                            }
                        }
                        let run_end = lo + 1;
                        let run_stop = base + (run_end - gi);
                        gi = run_end;
                        let mut row = base;
                        while row < run_stop {
                            let s = (row - start) / QUANT_SUB_ROWS;
                            let sub_stop = (start + (s + 1) * QUANT_SUB_ROWS).min(run_stop);
                            // Prune against the *live* floor: it only
                            // rises above the snapshot, and prune-only
                            // soundness holds for any floor the heap has
                            // actually reached.
                            if let Some(f) = floor {
                                if ubs[s] < f {
                                    report.rows_pruned += (sub_stop - row) as u64;
                                    report.subblocks_pruned += 1;
                                    row = sub_stop;
                                    continue;
                                }
                            }
                            for idx in row..sub_stop {
                                report.rows_exact += 1;
                                stats.tuples_examined += 1;
                                if heap.offer(ScoredItem {
                                    index: idx,
                                    score: kernels::dot(direction, self.points.row(idx)),
                                }) {
                                    floor = heap.floor();
                                }
                            }
                            row = sub_stop;
                        }
                    }
                } else {
                    for &idx in group {
                        report.rows_exact += 1;
                        stats.tuples_examined += 1;
                        if heap.offer(ScoredItem {
                            index: idx,
                            score: kernels::dot(direction, self.points.row(idx)),
                        }) {
                            floor = heap.floor();
                        }
                    }
                }
            }
            // Identical early-stop decisions to the exact walk: pruning
            // never changes the heap contents, so the floor and both
            // stopping bounds are the same bits.
            if heap.floor().is_some() && l + 1 >= k && l < self.exact_hull_layers {
                break;
            }
            if let (Some(f), Some(next_box)) = (heap.floor(), self.remaining_box.get(l + 1)) {
                let mut bound = next_box.upper_bound(direction);
                if let Some(h) = hint {
                    bound = bound.min(norm * self.hint_support[l + 1][h]);
                }
                if f >= bound {
                    break;
                }
            }
        }
        stats.comparisons = heap.comparisons();
        Ok((
            TopKResult {
                results: heap.into_sorted(),
                stats,
            },
            report,
        ))
    }

    /// Top-K tuples minimizing `direction . x` (scores reported are the
    /// *minimized* values, ascending).
    ///
    /// # Errors
    ///
    /// Same as [`OnionIndex::top_k_max`].
    pub fn top_k_min(&self, direction: &[f64], k: usize) -> Result<TopKResult, ModelError> {
        let negated: Vec<f64> = direction.iter().map(|a| -a).collect();
        let mut result = self.top_k_max(&negated, k)?;
        for item in &mut result.results {
            item.score = -item.score;
        }
        Ok(result)
    }
}

/// Exact support `max dir . x` over the alive rows of the nested legacy
/// representation — the "before" counterpart of
/// [`kernels::max_score_alive`].
fn support_of_rows(alive: &[bool], points: &[Vec<f64>], dir: &[f64]) -> f64 {
    let mut best = f64::NEG_INFINITY;
    for (i, p) in points.iter().enumerate() {
        if alive[i] {
            let s: f64 = dir.iter().zip(p).map(|(a, v)| a * v).sum();
            best = best.max(s);
        }
    }
    best
}

/// 1-D "hull": the min and max of the remaining points.
fn extremes_1d(store: &PointStore, alive: &[bool]) -> Vec<usize> {
    let mut lo: Option<usize> = None;
    let mut hi: Option<usize> = None;
    for (i, p) in store.rows().enumerate() {
        if !alive[i] {
            continue;
        }
        if lo.map(|j| p[0] < store.row(j)[0]).unwrap_or(true) {
            lo = Some(i);
        }
        if hi.map(|j| p[0] > store.row(j)[0]).unwrap_or(true) {
            hi = Some(i);
        }
    }
    let mut out = Vec::new();
    if let Some(l) = lo {
        out.push(l);
    }
    if let Some(h) = hi {
        if Some(h) != lo {
            out.push(h);
        }
    }
    out
}

/// Exact 2-D convex hull (monotone chain) over the still-alive points,
/// reusing a global x-then-y sorted order.
fn hull_2d(store: &PointStore, alive: &[bool], order: &[usize]) -> Vec<usize> {
    let live: Vec<usize> = order.iter().copied().filter(|&i| alive[i]).collect();
    if live.len() <= 2 {
        return live;
    }
    let cross = |o: usize, a: usize, b: usize| -> f64 {
        let (po, pa, pb) = (store.row(o), store.row(a), store.row(b));
        (pa[0] - po[0]) * (pb[1] - po[1]) - (pa[1] - po[1]) * (pb[0] - po[0])
    };
    let mut lower: Vec<usize> = Vec::new();
    for &p in &live {
        while lower.len() >= 2 && cross(lower[lower.len() - 2], lower[lower.len() - 1], p) <= 0.0 {
            lower.pop();
        }
        lower.push(p);
    }
    let mut upper: Vec<usize> = Vec::new();
    for &p in live.iter().rev() {
        while upper.len() >= 2 && cross(upper[upper.len() - 2], upper[upper.len() - 1], p) <= 0.0 {
            upper.pop();
        }
        upper.push(p);
    }
    lower.pop();
    upper.pop();
    lower.extend(upper);
    // Collinear degenerate inputs can produce duplicates; dedup to keep the
    // peel making progress.
    lower.sort_unstable();
    lower.dedup();
    lower
}

/// Argmax of `dir . x` over the alive points: the *first* strict maximum,
/// which is deterministic regardless of which thread evaluates it.
fn sweep_argmax(points: &[Vec<f64>], alive: &[bool], dir: &[f64]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, p) in points.iter().enumerate() {
        if !alive[i] {
            continue;
        }
        let s: f64 = dir.iter().zip(p).map(|(a, v)| a * v).sum();
        if best.map(|(_, bs)| s > bs).unwrap_or(true) {
            best = Some((i, s));
        }
    }
    best.map(|(i, _)| i)
}

/// Legacy direction-sweep extreme set for d >= 3 over nested points: one
/// pass over `Vec<Vec<f64>>` per direction, fanned across `threads` OS
/// threads. Each direction's argmax is independent and the union is
/// sorted + deduplicated, so the result is identical for every thread
/// count — and identical to [`sweep_layer_flat_threads`].
fn sweep_layer_threads(
    points: &[Vec<f64>],
    alive: &[bool],
    bundle: &DirectionBundle,
    threads: usize,
) -> Vec<usize> {
    let dirs = bundle.directions();
    let workers = threads.max(1).min(dirs.len()).max(1);
    let mut layer: Vec<usize> = if workers <= 1 {
        dirs.iter()
            .filter_map(|dir| sweep_argmax(points, alive, dir))
            .collect()
    } else {
        let chunk = dirs.len().div_ceil(workers);
        std::thread::scope(|scope| {
            // Collecting the handles is what makes this parallel: a lazy
            // chain would join each worker before spawning the next.
            #[allow(clippy::needless_collect)]
            let handles: Vec<_> = dirs
                .chunks(chunk)
                .map(|part| {
                    scope.spawn(move || {
                        part.iter()
                            .filter_map(|dir| sweep_argmax(points, alive, dir))
                            .collect::<Vec<usize>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("sweep worker panicked"))
                .collect()
        })
    };
    layer.sort_unstable();
    layer.dedup();
    layer
}

/// Direction-sweep extreme set for d >= 3 over the flat store: **one**
/// streaming row-major pass updates every direction's running argmax
/// ([`kernels::sweep_argmax_block`]); with threads, each worker makes one
/// pass for its direction chunk. Per-direction winners match the legacy
/// per-direction sweep exactly (same row order, same strict-max rule), so
/// the sorted + deduplicated union is bit-identical at any thread count.
///
/// With a quantized side structure the pass runs block by block, and a
/// block is skipped when **every** direction in the chunk already has a
/// winner whose score the block's coarse bound cannot strictly exceed
/// (`ub <= best`; a strict improvement is required to replace a winner,
/// and the bound dominates every row's exact score, so the skipped block
/// cannot change any argmax — a NaN running best makes the comparison
/// false and disables the skip). Winners stay bit-identical.
fn sweep_layer_flat_threads(
    store: &PointStore,
    alive: &[bool],
    bundle: &DirectionBundle,
    threads: usize,
    quant: Option<&QuantizedStore>,
) -> Vec<usize> {
    let dirs = bundle.directions();
    let workers = threads.max(1).min(dirs.len()).max(1);
    let dims = store.dims();
    let sweep_chunk = |part: &[Vec<f64>]| -> Vec<usize> {
        let mut best = vec![None; part.len()];
        match quant {
            None => kernels::sweep_argmax_block(store.flat(), dims, alive, part, &mut best),
            Some(q) => {
                let preps: Vec<_> = part.iter().map(|dir| q.prepare(dir)).collect();
                for b in 0..q.blocks() {
                    let (start, m) = q.block_range(b);
                    let skippable = preps.iter().zip(best.iter()).all(|(prep, slot)| {
                        matches!(slot, Some((_, bs)) if prep.block_upper_bound(b) <= *bs)
                    });
                    if skippable {
                        continue;
                    }
                    kernels::sweep_argmax_block_at(
                        &store.flat()[start * dims..(start + m) * dims],
                        dims,
                        &alive[start..start + m],
                        start,
                        part,
                        &mut best,
                    );
                }
            }
        }
        best.into_iter().flatten().map(|(i, _)| i).collect()
    };
    let mut layer: Vec<usize> = if workers <= 1 {
        sweep_chunk(dirs)
    } else {
        let chunk = dirs.len().div_ceil(workers);
        let sweep_chunk = &sweep_chunk;
        std::thread::scope(|scope| {
            // Collecting the handles is what makes this parallel: a lazy
            // chain would join each worker before spawning the next.
            #[allow(clippy::needless_collect)]
            let handles: Vec<_> = dirs
                .chunks(chunk)
                .map(|part| scope.spawn(move || sweep_chunk(part)))
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("sweep worker panicked"))
                .collect()
        })
    };
    layer.sort_unstable();
    layer.dedup();
    layer
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan_top_k;
    use proptest::prelude::*;

    fn gaussian_points(seed: u64, n: usize, d: usize) -> Vec<Vec<f64>> {
        // Deterministic pseudo-Gaussian points without rand (test helper).
        let mut state = seed;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        };
        (0..n)
            .map(|_| {
                (0..d)
                    .map(|_| (0..12).map(|_| next()).sum::<f64>())
                    .collect()
            })
            .collect()
    }

    #[test]
    fn build_validates() {
        assert!(matches!(OnionIndex::build(vec![]), Err(ModelError::Empty)));
        assert!(OnionIndex::build(vec![vec![]]).is_err());
        assert!(OnionIndex::build(vec![vec![1.0], vec![1.0, 2.0]]).is_err());
    }

    #[test]
    fn layers_partition_the_points() {
        let points = gaussian_points(3, 500, 2);
        let onion = OnionIndex::build(points).unwrap();
        let mut all: Vec<usize> = onion.layers.iter().flatten().copied().collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 500, "every point in exactly one layer");
    }

    #[test]
    fn query_matches_scan_2d() {
        let points = gaussian_points(5, 800, 2);
        let onion = OnionIndex::build(points.clone()).unwrap();
        for (k, dir) in [
            (1usize, vec![1.0, 0.3]),
            (5, vec![-0.7, 1.0]),
            (10, vec![0.0, -1.0]),
        ] {
            let fast = onion.top_k_max(&dir, k).unwrap();
            let slow = scan_top_k(&points, k, |p| dir.iter().zip(p).map(|(a, v)| a * v).sum());
            assert!(
                fast.score_equivalent(&slow, 1e-9),
                "k={k} dir={dir:?}: {:?} vs {:?}",
                fast.results,
                slow.results
            );
            assert!(fast.stats.tuples_examined < slow.stats.tuples_examined);
        }
    }

    #[test]
    fn query_matches_scan_3d_gaussian() {
        // The paper's experimental setting: 3-attribute Gaussian data.
        let points = gaussian_points(11, 2000, 3);
        let onion = OnionIndex::build(points.clone()).unwrap();
        for k in [1usize, 10] {
            let dir = vec![0.5, -1.0, 0.25];
            let fast = onion.top_k_max(&dir, k).unwrap();
            let slow = scan_top_k(&points, k, |p| dir.iter().zip(p).map(|(a, v)| a * v).sum());
            assert!(fast.score_equivalent(&slow, 1e-9));
            // The tuples examined by Onion are roughly N-independent (the
            // layer walk stops once the remaining-set bound falls under the
            // floor), so at this small N the ratio is modest; the paper-
            // scale factors emerge at large N and are measured by the E1
            // bench.
            let speedup = fast.stats.speedup_vs(&slow.stats).unwrap();
            assert!(speedup > 2.0, "expected a real speedup, got {speedup}");
        }
    }

    #[test]
    fn batched_walk_matches_solo_runs_bit_for_bit() {
        for d in [2usize, 3] {
            let points = gaussian_points(21 + d as u64, 1500, d);
            let hints = vec![{
                let mut h = vec![0.0; d];
                h[0] = 1.0;
                h
            }];
            let onion = OnionIndex::build_with_hints(points, &hints, 64, 32, 7).unwrap();
            // A mix of hint-parallel, perturbed, and opposed directions so
            // queries stop at different layers.
            let dirs: Vec<Vec<f64>> = (0..6)
                .map(|q| {
                    (0..d)
                        .map(|j| {
                            if j == 0 {
                                1.0 - q as f64 * 0.4
                            } else {
                                (q * 7 + j) as f64 * 0.1 - 0.3
                            }
                        })
                        .collect()
                })
                .collect();
            for k in [1usize, 5] {
                let batched = onion.top_k_max_multi(&dirs, k).unwrap();
                for (q, dir) in dirs.iter().enumerate() {
                    let solo = onion.top_k_max(dir, k).unwrap();
                    assert_eq!(batched[q], solo, "d={d} k={k} q={q}");
                }
            }
        }
    }

    #[test]
    fn batched_walk_validates_and_handles_empty_batch() {
        let onion = OnionIndex::build(vec![vec![1.0, 2.0], vec![3.0, 0.5]]).unwrap();
        assert!(onion.top_k_max_multi(&[vec![1.0]], 1).is_err());
        assert!(onion.top_k_max_multi(&[vec![1.0, 1.0]], 0).is_err());
        assert!(onion.top_k_max_multi(&[], 1).unwrap().is_empty());
    }

    #[test]
    fn min_query_is_negated_max() {
        let points = gaussian_points(13, 300, 2);
        let onion = OnionIndex::build(points.clone()).unwrap();
        let dir = vec![1.0, 1.0];
        let mins = onion.top_k_min(&dir, 3).unwrap();
        let slow = scan_top_k(&points, 3, |p| -(p[0] + p[1]));
        for (m, s) in mins.results.iter().zip(&slow.results) {
            assert_eq!(m.index, s.index);
            assert!((m.score + s.score).abs() < 1e-12);
        }
        // Min scores ascend.
        assert!(mins.results[0].score <= mins.results[2].score);
    }

    #[test]
    fn query_validates() {
        let onion = OnionIndex::build(vec![vec![1.0, 2.0]]).unwrap();
        assert!(onion.top_k_max(&[1.0], 1).is_err());
        assert!(onion.top_k_max(&[1.0, 1.0], 0).is_err());
    }

    #[test]
    fn degenerate_collinear_points_still_work() {
        let points: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64, 2.0 * i as f64]).collect();
        let onion = OnionIndex::build(points.clone()).unwrap();
        let fast = onion.top_k_max(&[1.0, 0.0], 3).unwrap();
        assert_eq!(fast.indexes(), vec![19, 18, 17]);
    }

    #[test]
    fn duplicate_points_are_handled() {
        let points = vec![vec![1.0, 1.0]; 10];
        let onion = OnionIndex::build(points).unwrap();
        let r = onion.top_k_max(&[1.0, 0.0], 3).unwrap();
        assert_eq!(r.results.len(), 3);
        assert!(r.results.iter().all(|s| (s.score - 1.0).abs() < 1e-12));
    }

    #[test]
    fn core_bucket_is_reachable_and_exact() {
        // Tiny layer cap forces queries into the core bucket.
        let points = gaussian_points(17, 500, 2);
        let onion = OnionIndex::build_with(points.clone(), 2, 8, 1).unwrap();
        assert!(onion.layer_count() <= 3);
        // k larger than outer layers forces core examination; still exact.
        let k = 50;
        let dir = vec![0.3, 0.7];
        let fast = onion.top_k_max(&dir, k).unwrap();
        let slow = scan_top_k(&points, k, |p| dir.iter().zip(p).map(|(a, v)| a * v).sum());
        assert!(fast.score_equivalent(&slow, 1e-9));
    }

    #[test]
    fn hinted_queries_stop_earlier_on_hostile_data() {
        // Skewed, high-dimensional data where the generic box/sphere bounds
        // converge slowly: counts and bounded ratios with wildly different
        // query weights.
        let mut state = 99u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(7);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let points: Vec<Vec<f64>> = (0..20_000)
            .map(|_| {
                vec![
                    (next() * 10.0).floor(),
                    next() * 40.0,
                    next(),
                    next() * 20.0,
                    (next() * 5.0).floor(),
                    (next() * 3.0).floor(),
                ]
            })
            .collect();
        let weights = vec![22.0, -4.0, 120.0, -2.5, 15.0, 70.0];
        let plain = OnionIndex::build(points.clone()).unwrap();
        let hinted =
            OnionIndex::build_with_hints(points.clone(), &[weights.clone()], 64, 32, 7).unwrap();
        let k = 10;
        let slow = scan_top_k(&points, k, |p| {
            weights.iter().zip(p).map(|(a, v)| a * v).sum()
        });
        let plain_result = plain.top_k_max(&weights, k).unwrap();
        let hinted_result = hinted.top_k_max(&weights, k).unwrap();
        assert!(plain_result.score_equivalent(&slow, 1e-9));
        assert!(hinted_result.score_equivalent(&slow, 1e-9));
        assert!(
            hinted_result.stats.tuples_examined * 5 < plain_result.stats.tuples_examined,
            "hint should slash examined tuples: {} vs {}",
            hinted_result.stats.tuples_examined,
            plain_result.stats.tuples_examined
        );
        // Scaled queries still match the hint.
        let doubled: Vec<f64> = weights.iter().map(|w| w * 2.0).collect();
        let scaled = hinted.top_k_max(&doubled, k).unwrap();
        assert_eq!(scaled.indexes(), hinted_result.indexes());
        assert_eq!(
            scaled.stats.tuples_examined,
            hinted_result.stats.tuples_examined
        );
    }

    #[test]
    fn hull_theorem_stops_2d_queries_without_bounds() {
        // Uniform square data with a diagonal query: the box-corner bound
        // (max_x + max_y) is never attained, so the generic bound is loose;
        // the exact-hull theorem must stop the walk after ~k layers anyway.
        let mut state = 77u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(13);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let points: Vec<Vec<f64>> = (0..20_000).map(|_| vec![next(), next()]).collect();
        let onion = OnionIndex::build(points.clone()).unwrap();
        let dir = vec![1.0, 1.0];
        for k in [1usize, 5, 10] {
            let fast = onion.top_k_max(&dir, k).unwrap();
            let slow = scan_top_k(&points, k, |p| p[0] + p[1]);
            assert!(fast.score_equivalent(&slow, 1e-9), "k={k}");
            // The theorem caps the walk at k layers (+ examined members).
            assert!(
                fast.stats.nodes_visited <= k as u64,
                "k={k}: visited {} layers",
                fast.stats.nodes_visited
            );
            assert!(
                fast.stats.tuples_examined < 2_000,
                "k={k}: examined {}",
                fast.stats.tuples_examined
            );
        }
    }

    #[test]
    fn hull_theorem_survives_inserts() {
        let mut state = 5u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut points: Vec<Vec<f64>> = (0..2_000).map(|_| vec![next(), next()]).collect();
        let mut onion = OnionIndex::build(points.clone()).unwrap();
        // Insert points including new global optima.
        for _ in 0..50 {
            let p = vec![next() * 2.0, next() * 2.0];
            onion.insert(p.clone()).unwrap();
            points.push(p);
        }
        let dir = vec![0.7, 0.3];
        for k in [1usize, 4] {
            let fast = onion.top_k_max(&dir, k).unwrap();
            let slow = scan_top_k(&points, k, |p| 0.7 * p[0] + 0.3 * p[1]);
            assert!(fast.score_equivalent(&slow, 1e-9), "k={k}");
        }
    }

    #[test]
    fn inserts_stay_exact_and_rebuild_restores_speed() {
        let points = gaussian_points(21, 1000, 3);
        let dir = vec![0.5, -0.3, 0.8];
        let mut onion =
            OnionIndex::build_with_hints(points.clone(), &[dir.clone()], 64, 32, 7).unwrap();
        // Insert 200 new points, some of them new optima.
        let mut all = points;
        let extra = gaussian_points(99, 200, 3);
        for p in extra {
            let scaled: Vec<f64> = p.iter().map(|v| v * 1.5).collect();
            onion.insert(scaled.clone()).unwrap();
            all.push(scaled);
        }
        assert_eq!(onion.len(), 1200);
        let k = 5;
        let slow = scan_top_k(&all, k, |p| dir.iter().zip(p).map(|(a, v)| a * v).sum());
        let fast = onion.top_k_max(&dir, k).unwrap();
        assert!(
            fast.score_equivalent(&slow, 1e-9),
            "inserts must stay exact"
        );
        let before_rebuild = fast.stats.tuples_examined;
        onion.rebuild().unwrap();
        let rebuilt = onion.top_k_max(&dir, k).unwrap();
        assert!(rebuilt.score_equivalent(&slow, 1e-9));
        assert!(
            rebuilt.stats.tuples_examined <= before_rebuild,
            "rebuild should not examine more: {} vs {}",
            rebuilt.stats.tuples_examined,
            before_rebuild
        );
        // Wrong arity rejected.
        assert!(onion.insert(vec![1.0]).is_err());
    }

    #[test]
    fn append_points_stays_exact_and_keeps_shallow_layers() {
        for d in [2usize, 3] {
            let points = gaussian_points(41 + d as u64, 1200, d);
            let hint: Vec<f64> = (0..d).map(|i| if i == 0 { 1.0 } else { -0.2 }).collect();
            let mut onion =
                OnionIndex::build_with_hints(points.clone(), &[hint.clone()], 64, 32, 7).unwrap();
            let layers_before = onion.layer_count();
            // A deep batch: interior points well inside the cloud.
            let deep: Vec<Vec<f64>> = gaussian_points(77, 40, d)
                .into_iter()
                .map(|p| p.iter().map(|v| v * 0.05).collect())
                .collect();
            let report = onion.append_points(&deep).unwrap();
            assert_eq!(report.appended, 40);
            assert!(
                report.kept_layers > 0,
                "d={d}: interior batch must keep shallow layers (of {layers_before})"
            );
            let mut all = points;
            all.extend(deep.iter().cloned());
            // An outlier batch: new optima that dirty the outermost hull.
            let outliers: Vec<Vec<f64>> = gaussian_points(88, 8, d)
                .into_iter()
                .map(|p| p.iter().map(|v| v * 3.0 + 1.0).collect())
                .collect();
            let report = onion.append_points(&outliers).unwrap();
            assert_eq!(report.kept_layers, 0, "d={d}: outliers re-peel everything");
            all.extend(outliers.iter().cloned());
            assert_eq!(onion.len(), all.len());
            // Exactness against a scan of the full augmented set, for the
            // hint direction and a generic one.
            for k in [1usize, 7] {
                for dir in [hint.clone(), (0..d).map(|i| 0.3 * i as f64 - 0.8).collect()] {
                    let fast = onion.top_k_max(&dir, k).unwrap();
                    let slow = scan_top_k(&all, k, |p| dir.iter().zip(p).map(|(a, v)| a * v).sum());
                    assert!(
                        fast.score_equivalent(&slow, 1e-9),
                        "d={d} k={k} dir={dir:?} diverged after append"
                    );
                }
            }
        }
    }

    #[test]
    fn append_points_validates_and_drops_quant() {
        let mut onion = OnionIndex::build_quantized(gaussian_points(5, 300, 3)).unwrap();
        assert!(onion.is_quantized());
        assert!(matches!(onion.append_points(&[]), Err(ModelError::Empty)));
        assert!(onion.append_points(&[vec![1.0]]).is_err());
        assert_eq!(onion.len(), 300, "failed appends leave the index intact");
        assert!(
            onion.is_quantized(),
            "failed appends keep the quant structure"
        );
        onion.append_points(&[vec![0.1, 0.2, 0.3]]).unwrap();
        assert!(!onion.is_quantized(), "the store changed under the quant");
        onion.rebuild().unwrap();
        assert!(onion.is_quantized());
    }

    #[test]
    fn parallel_build_is_bit_identical() {
        // d >= 3 exercises the threaded direction sweep; the private layer
        // structure (not just query answers) must match exactly.
        for d in [3usize, 4] {
            let points = gaussian_points(31 + d as u64, 600, d);
            let baseline = OnionIndex::build(points.clone()).unwrap();
            for threads in [1usize, 2, 4, 8] {
                let par = OnionIndex::build_parallel(points.clone(), threads).unwrap();
                assert_eq!(par.layers, baseline.layers, "d={d} threads={threads}");
                assert_eq!(par.remaining_box, baseline.remaining_box);
                assert_eq!(par.exact_hull_layers, baseline.exact_hull_layers);
                let q: Vec<f64> = (0..d).map(|i| 1.0 - 0.4 * i as f64).collect();
                let a = par.top_k_max(&q, 7).unwrap();
                let b = baseline.top_k_max(&q, 7).unwrap();
                assert_eq!(a.results, b.results);
                assert_eq!(a.stats.tuples_examined, b.stats.tuples_examined);
            }
        }
        // Hinted parallel builds match hinted sequential builds too.
        let points = gaussian_points(53, 400, 3);
        let hint = vec![0.5, -0.25, 1.0];
        let seq = OnionIndex::build_with_hints(points.clone(), &[hint.clone()], 16, 16, 3).unwrap();
        let par = OnionIndex::build_with_hints_threads(points, &[hint], 16, 16, 3, 4).unwrap();
        assert_eq!(par.layers, seq.layers);
        assert_eq!(par.hint_support, seq.hint_support);
    }

    #[test]
    fn legacy_build_and_query_are_bit_identical() {
        // The whole point of the kernel rewrite: same bits, fewer cycles.
        // Layer structure, bounds, and query results (values *and* work
        // accounting) must match the nested-representation reference
        // exactly, for the 2-D hull path and the d >= 3 sweep path alike.
        for d in [2usize, 3, 5] {
            let points = gaussian_points(101 + d as u64, 700, d);
            let kernel = OnionIndex::build(points.clone()).unwrap();
            let legacy = OnionIndex::build_legacy(points).unwrap();
            assert_eq!(kernel.layers, legacy.layers, "d={d}");
            assert_eq!(kernel.remaining_box, legacy.remaining_box, "d={d}");
            assert_eq!(kernel.exact_hull_layers, legacy.exact_hull_layers);
            for k in [1usize, 5, 20] {
                let dir: Vec<f64> = (0..d).map(|i| 0.9 - 0.33 * i as f64).collect();
                let a = kernel.top_k_max(&dir, k).unwrap();
                let b = legacy.top_k_max_legacy(&dir, k).unwrap();
                assert_eq!(a, b, "d={d} k={k}");
            }
        }
    }

    #[test]
    fn quantized_build_is_bit_identical_and_queries_match() {
        for d in [1usize, 2, 3, 5] {
            let points = gaussian_points(211 + d as u64, 1500, d);
            let plain = OnionIndex::build_with(points.clone(), 24, 16, 7).unwrap();
            let quant = OnionIndex::build_quantized_with(points, 24, 16, 7, 1).unwrap();
            assert_eq!(quant.layers, plain.layers, "d={d}");
            assert_eq!(quant.remaining_box, plain.remaining_box, "d={d}");
            assert!(quant.is_quantized() && !plain.is_quantized());
            for k in [1usize, 10, 40] {
                let dir: Vec<f64> = (0..d).map(|j| 0.9 - 0.27 * j as f64).collect();
                let exact = plain.top_k_max(&dir, k).unwrap();
                let coarse = quant.top_k_max_quant(&dir, k).unwrap();
                assert_eq!(coarse.results, exact.results, "d={d} k={k}");
            }
        }
    }

    #[test]
    fn quantized_threaded_build_matches_sequential() {
        let points = gaussian_points(77, 900, 3);
        let seq = OnionIndex::build_quantized_with(points.clone(), 16, 16, 3, 1).unwrap();
        for threads in [2usize, 4, 8] {
            let par = OnionIndex::build_quantized_with(points.clone(), 16, 16, 3, threads).unwrap();
            assert_eq!(par.layers, seq.layers, "threads={threads}");
        }
    }

    #[test]
    fn quantized_query_actually_prunes_core_bucket() {
        // Few layers + big core bucket: the walk degenerates to scanning
        // the core, which is exactly where the coarse pass must bite.
        let points = gaussian_points(303, 20_000, 3);
        let onion = OnionIndex::build_quantized_with(points, 8, 16, 7, 1).unwrap();
        let dir = vec![0.443, 0.222, 0.153];
        let (result, report) = onion.top_k_max_quant_report(&dir, 10).unwrap();
        let exact = onion.top_k_max(&dir, 10).unwrap();
        assert_eq!(result.results, exact.results);
        assert!(
            report.prune_rate() > 0.5,
            "core bucket should mostly prune, got {}",
            report.prune_rate()
        );
        assert!(result.stats.tuples_examined < exact.stats.tuples_examined);
    }

    #[test]
    fn insert_drops_quant_and_rebuild_restores_it() {
        let points = gaussian_points(41, 800, 3);
        let mut onion = OnionIndex::build_quantized(points.clone()).unwrap();
        assert!(onion.is_quantized());
        onion.insert(vec![9.0, 9.0, 9.0]).unwrap();
        assert!(!onion.is_quantized(), "stale quant must be dropped");
        // Fallback path still answers exactly.
        let dir = vec![1.0, 0.5, 0.25];
        let exact = onion.top_k_max(&dir, 5).unwrap();
        let coarse = onion.top_k_max_quant(&dir, 5).unwrap();
        assert_eq!(coarse.results, exact.results);
        onion.rebuild().unwrap();
        assert!(onion.is_quantized());
        let exact = onion.top_k_max(&dir, 5).unwrap();
        let coarse = onion.top_k_max_quant(&dir, 5).unwrap();
        assert_eq!(coarse.results, exact.results);
    }

    #[test]
    fn hint_validation() {
        let points = vec![vec![0.0, 0.0], vec![1.0, 1.0]];
        assert!(OnionIndex::build_with_hints(points.clone(), &[vec![1.0]], 4, 4, 1).is_err());
        assert!(OnionIndex::build_with_hints(points.clone(), &[vec![0.0, 0.0]], 4, 4, 1).is_err());
        assert!(OnionIndex::build_with_hints(points, &[vec![f64::NAN, 1.0]], 4, 4, 1).is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]
        #[test]
        fn prop_onion_equals_scan(
            seed in 0u64..1000,
            n in 10usize..300,
            d in 1usize..5,
            k in 1usize..12,
            dir_seed in 0u64..100,
        ) {
            let points = gaussian_points(seed, n, d);
            let onion = OnionIndex::build(points.clone()).unwrap();
            let mut s = dir_seed;
            let mut next = move || {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(99);
                ((s >> 11) as f64 / (1u64 << 53) as f64) - 0.5
            };
            let dir: Vec<f64> = (0..d).map(|_| next() * 4.0).collect();
            let fast = onion.top_k_max(&dir, k).unwrap();
            let slow = scan_top_k(&points, k, |p| dir.iter().zip(p).map(|(a, v)| a * v).sum());
            prop_assert!(fast.score_equivalent(&slow, 1e-9));
        }

        #[test]
        fn prop_batched_walk_bit_identical_to_solo(
            seed in 0u64..500,
            n in 10usize..250,
            d in 1usize..5,
            m in 1usize..6,
            k in 1usize..10,
            dir_seed in 0u64..100,
        ) {
            let points = gaussian_points(seed.wrapping_add(3_000), n, d);
            let onion = OnionIndex::build(points).unwrap();
            let mut s = dir_seed;
            let mut next = move || {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(17);
                ((s >> 11) as f64 / (1u64 << 53) as f64) - 0.5
            };
            let dirs: Vec<Vec<f64>> = (0..m)
                .map(|_| (0..d).map(|_| next() * 4.0).collect())
                .collect();
            let batched = onion.top_k_max_multi(&dirs, k).unwrap();
            for (q, dir) in dirs.iter().enumerate() {
                prop_assert_eq!(&batched[q], &onion.top_k_max(dir, k).unwrap());
            }
        }

        #[test]
        fn prop_kernel_build_bit_identical_to_legacy(
            seed in 0u64..500,
            n in 10usize..200,
            d in 1usize..5,
            k in 1usize..10,
            dir_seed in 0u64..100,
        ) {
            let points = gaussian_points(seed.wrapping_add(7_000), n, d);
            let kernel = OnionIndex::build(points.clone()).unwrap();
            let legacy = OnionIndex::build_legacy(points).unwrap();
            prop_assert_eq!(&kernel.layers, &legacy.layers);
            prop_assert_eq!(&kernel.remaining_box, &legacy.remaining_box);
            let mut s = dir_seed;
            let mut next = move || {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(3);
                ((s >> 11) as f64 / (1u64 << 53) as f64) - 0.5
            };
            let dir: Vec<f64> = (0..d).map(|_| next() * 4.0).collect();
            let a = kernel.top_k_max(&dir, k).unwrap();
            let b = legacy.top_k_max_legacy(&dir, k).unwrap();
            prop_assert_eq!(a, b);
        }

        #[test]
        fn prop_append_points_equals_scan(
            seed in 0u64..500,
            n in 10usize..200,
            extra in 1usize..40,
            d in 1usize..5,
            k in 1usize..10,
            scale in 0usize..3,
            dir_seed in 0u64..100,
        ) {
            // Batches at three scales: deep interior, in-distribution, and
            // outliers — the dirty frontier lands at different depths.
            let mut all = gaussian_points(seed.wrapping_add(11_000), n, d);
            let factor = [0.05, 1.0, 4.0][scale];
            let batch: Vec<Vec<f64>> = gaussian_points(seed.wrapping_add(13_000), extra, d)
                .into_iter()
                .map(|p| p.iter().map(|v| v * factor).collect())
                .collect();
            let mut onion = OnionIndex::build(all.clone()).unwrap();
            onion.append_points(&batch).unwrap();
            all.extend(batch);
            let mut s = dir_seed;
            let mut next = move || {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(29);
                ((s >> 11) as f64 / (1u64 << 53) as f64) - 0.5
            };
            let dir: Vec<f64> = (0..d).map(|_| next() * 4.0).collect();
            let fast = onion.top_k_max(&dir, k).unwrap();
            let slow = scan_top_k(&all, k, |p| dir.iter().zip(p).map(|(a, v)| a * v).sum());
            prop_assert!(fast.score_equivalent(&slow, 1e-9));
        }
    }
}
