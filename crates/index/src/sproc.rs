//! SPROC: Sequential Processing of Fuzzy Cartesian Queries (paper §3.2,
//! references \[15\] and \[16\]).
//!
//! A composite (Cartesian) query assembles one object per component: with
//! `M` components over a database of `L` objects there are `L^M` candidate
//! assemblies. Each component `m` assigns every object a fuzzy score
//! `s_m(l)`, and chain-adjacent components may carry a pairwise
//! compatibility score `c_m(l_prev, l)` (spatial adjacency, ordering, ...).
//! The assembly score is `Σ_m s_m(o_m) + Σ_m c_m(o_{m-1}, o_m)`.
//!
//! Three evaluation strategies, matching the complexities the paper quotes:
//!
//! * [`SprocIndex::brute_force`] — enumerate `O(L^M)`.
//! * [`SprocIndex::top_k_dp`] — SPROC dynamic programming `O(M K L^2)`
//!   (reference \[15\]).
//! * [`SprocIndex::top_k_independent`] — for queries with no pairwise term:
//!   sort the component lists and walk a frontier heap, the
//!   `O(M L log L + ...)` improvement of reference \[16\].

use crate::stats::{QueryStats, ScoredItem};
use mbir_models::error::ModelError;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

/// A scored assembly: one chosen object index per component.
#[derive(Debug, Clone, PartialEq)]
pub struct Assembly {
    /// Chosen object per component.
    pub choice: Vec<usize>,
    /// Total fuzzy score.
    pub score: f64,
}

/// A composite-query answer.
#[derive(Debug, Clone, PartialEq)]
pub struct CompositeResult {
    /// Best assemblies, descending score.
    pub assemblies: Vec<Assembly>,
    /// Work counters (`tuples_examined` counts score-table reads).
    pub stats: QueryStats,
}

impl CompositeResult {
    /// Whether two results carry the same scores (tie permutations allowed).
    pub fn score_equivalent(&self, other: &CompositeResult, tolerance: f64) -> bool {
        self.assemblies.len() == other.assemblies.len()
            && self
                .assemblies
                .iter()
                .zip(&other.assemblies)
                .all(|(a, b)| (a.score - b.score).abs() <= tolerance)
    }
}

/// Pairwise compatibility between chain-adjacent component choices:
/// `compat(m, l_prev, l_cur)` scores placing `l_prev` at component `m-1`
/// next to `l_cur` at component `m`.
pub type Compat<'a> = &'a dyn Fn(usize, usize, usize) -> f64;

/// The SPROC evaluator over per-component fuzzy score lists.
///
/// # Examples
///
/// ```
/// use mbir_index::sproc::SprocIndex;
///
/// // Two components over three objects.
/// let index = SprocIndex::new(vec![
///     vec![0.9, 0.1, 0.5],
///     vec![0.2, 0.8, 0.3],
/// ]).unwrap();
/// let top = index.top_k_independent(1).unwrap();
/// assert_eq!(top.assemblies[0].choice, vec![0, 1]);
/// assert!((top.assemblies[0].score - 1.7).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct SprocIndex {
    /// `scores[m][l]` — fuzzy degree of object `l` for component `m`.
    scores: Vec<Vec<f64>>,
}

impl SprocIndex {
    /// Creates an evaluator.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Empty`] with no components / objects and
    /// [`ModelError::ArityMismatch`] for ragged score lists.
    pub fn new(scores: Vec<Vec<f64>>) -> Result<Self, ModelError> {
        let first = scores.first().ok_or(ModelError::Empty)?;
        let l = first.len();
        if l == 0 {
            return Err(ModelError::Empty);
        }
        for s in &scores {
            if s.len() != l {
                return Err(ModelError::ArityMismatch {
                    expected: l,
                    actual: s.len(),
                });
            }
        }
        Ok(SprocIndex { scores })
    }

    /// Number of components `M`.
    pub fn components(&self) -> usize {
        self.scores.len()
    }

    /// Number of objects `L`.
    pub fn objects(&self) -> usize {
        self.scores[0].len()
    }

    /// Exhaustive `O(L^M)` enumeration — the baseline SPROC is measured
    /// against. Refuses instances beyond `limit` assemblies so tests cannot
    /// accidentally run forever.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidValue`] when `k == 0` or `L^M > limit`.
    pub fn brute_force(
        &self,
        k: usize,
        compat: Option<Compat<'_>>,
        limit: u64,
    ) -> Result<CompositeResult, ModelError> {
        if k == 0 {
            return Err(ModelError::InvalidValue("k must be >= 1".into()));
        }
        let l = self.objects() as u64;
        let m = self.components() as u32;
        let total = l.checked_pow(m).filter(|t| *t <= limit).ok_or_else(|| {
            ModelError::InvalidValue(format!("L^M exceeds brute-force limit {limit}"))
        })?;
        let mut stats = QueryStats::new();
        let mut best: Vec<Assembly> = Vec::new();
        let mut choice = vec![0usize; self.components()];
        for code in 0..total {
            let mut c = code;
            for slot in choice.iter_mut() {
                *slot = (c % l) as usize;
                c /= l;
            }
            let mut score = 0.0;
            for (comp, &obj) in choice.iter().enumerate() {
                stats.tuples_examined += 1;
                score += self.scores[comp][obj];
                if comp > 0 {
                    if let Some(f) = compat {
                        score += f(comp, choice[comp - 1], obj);
                    }
                }
            }
            stats.comparisons += 1;
            insert_top(
                &mut best,
                Assembly {
                    choice: choice.clone(),
                    score,
                },
                k,
            );
        }
        Ok(CompositeResult {
            assemblies: best,
            stats,
        })
    }

    /// SPROC dynamic programming (reference \[15\]): processes components
    /// sequentially, keeping the top-K partial assemblies per trailing
    /// object — `O(M K L^2)` table operations instead of `O(L^M)`.
    ///
    /// Exact for chain-structured compatibility (each `c_m` couples only
    /// adjacent components), which is the composite-object structure SPROC
    /// targets.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidValue`] when `k == 0`.
    pub fn top_k_dp(
        &self,
        k: usize,
        compat: Option<Compat<'_>>,
    ) -> Result<CompositeResult, ModelError> {
        if k == 0 {
            return Err(ModelError::InvalidValue("k must be >= 1".into()));
        }
        let l = self.objects();
        let m = self.components();
        let mut stats = QueryStats::new();
        // dp[obj] = top-K partial assemblies ending with `obj` at the
        // current component.
        let mut dp: Vec<Vec<Assembly>> = (0..l)
            .map(|obj| {
                stats.tuples_examined += 1;
                vec![Assembly {
                    choice: vec![obj],
                    score: self.scores[0][obj],
                }]
            })
            .collect();
        for comp in 1..m {
            let mut next: Vec<Vec<Assembly>> = Vec::with_capacity(l);
            for obj in 0..l {
                stats.tuples_examined += 1;
                let own = self.scores[comp][obj];
                let mut cell: Vec<Assembly> = Vec::new();
                for (prev_obj, partials) in dp.iter().enumerate() {
                    let link = compat.map(|f| f(comp, prev_obj, obj)).unwrap_or(0.0);
                    for p in partials {
                        stats.comparisons += 1;
                        let mut choice = p.choice.clone();
                        choice.push(obj);
                        insert_top(
                            &mut cell,
                            Assembly {
                                choice,
                                score: p.score + link + own,
                            },
                            k,
                        );
                    }
                }
                next.push(cell);
            }
            dp = next;
        }
        let mut best: Vec<Assembly> = Vec::new();
        for cell in dp {
            for a in cell {
                stats.comparisons += 1;
                insert_top(&mut best, a, k);
            }
        }
        Ok(CompositeResult {
            assemblies: best,
            stats,
        })
    }

    /// The sorted-list frontier walk for independent components (no
    /// pairwise term), per reference \[16\]: sort each component list
    /// (`O(M L log L)`), then expand assemblies best-first from the all-max
    /// corner; each of the `K` pops expands at most `M` successors.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidValue`] when `k == 0`.
    pub fn top_k_independent(&self, k: usize) -> Result<CompositeResult, ModelError> {
        if k == 0 {
            return Err(ModelError::InvalidValue("k must be >= 1".into()));
        }
        let l = self.objects();
        let m = self.components();
        let mut stats = QueryStats::new();
        // Sort each component's objects by descending score.
        let mut order: Vec<Vec<usize>> = Vec::with_capacity(m);
        for comp in 0..m {
            let mut idx: Vec<usize> = (0..l).collect();
            idx.sort_by(|&a, &b| self.scores[comp][b].total_cmp(&self.scores[comp][a]));
            stats.tuples_examined += l as u64;
            stats.comparisons += (l as f64 * (l as f64).log2().max(1.0)) as u64;
            order.push(idx);
        }

        #[derive(Debug)]
        struct Frontier {
            score: f64,
            ranks: Vec<usize>,
        }
        impl PartialEq for Frontier {
            fn eq(&self, other: &Self) -> bool {
                self.score == other.score && self.ranks == other.ranks
            }
        }
        impl Eq for Frontier {}
        impl PartialOrd for Frontier {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Frontier {
            fn cmp(&self, other: &Self) -> Ordering {
                self.score
                    .total_cmp(&other.score)
                    .then_with(|| other.ranks.cmp(&self.ranks))
            }
        }

        let score_of = |ranks: &[usize]| -> f64 {
            ranks
                .iter()
                .enumerate()
                .map(|(comp, &r)| self.scores[comp][order[comp][r]])
                .sum()
        };
        let mut heap = BinaryHeap::new();
        let mut seen: HashSet<Vec<usize>> = HashSet::new();
        let corner = vec![0usize; m];
        heap.push(Frontier {
            score: score_of(&corner),
            ranks: corner.clone(),
        });
        seen.insert(corner);
        let mut assemblies = Vec::with_capacity(k);
        while assemblies.len() < k {
            let Some(Frontier { score, ranks }) = heap.pop() else {
                break;
            };
            stats.comparisons += 1;
            assemblies.push(Assembly {
                choice: ranks
                    .iter()
                    .enumerate()
                    .map(|(comp, &r)| order[comp][r])
                    .collect(),
                score,
            });
            for comp in 0..m {
                if ranks[comp] + 1 >= l {
                    continue;
                }
                let mut next = ranks.clone();
                next[comp] += 1;
                if seen.insert(next.clone()) {
                    stats.tuples_examined += 1;
                    heap.push(Frontier {
                        score: score_of(&next),
                        ranks: next,
                    });
                }
            }
        }
        Ok(CompositeResult { assemblies, stats })
    }

    /// Per-component top scores as [`ScoredItem`]s (diagnostic view).
    pub fn component_ranking(&self, comp: usize, k: usize) -> Vec<ScoredItem> {
        let mut items: Vec<ScoredItem> = self.scores[comp]
            .iter()
            .enumerate()
            .map(|(index, score)| ScoredItem {
                index,
                score: *score,
            })
            .collect();
        crate::stats::sort_desc(&mut items);
        items.truncate(k);
        items
    }
}

/// Inserts into a descending top-K list (ties by lexicographic choice for
/// determinism).
fn insert_top(best: &mut Vec<Assembly>, candidate: Assembly, k: usize) {
    let pos = best
        .binary_search_by(|probe| {
            candidate
                .score
                .total_cmp(&probe.score)
                .then_with(|| probe.choice.cmp(&candidate.choice))
        })
        .unwrap_or_else(|p| p);
    if pos < k {
        best.insert(pos, candidate);
        best.truncate(k);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn pseudo_scores(seed: u64, m: usize, l: usize) -> Vec<Vec<f64>> {
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(77);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..m).map(|_| (0..l).map(|_| next()).collect()).collect()
    }

    #[test]
    fn new_validates() {
        assert!(matches!(SprocIndex::new(vec![]), Err(ModelError::Empty)));
        assert!(SprocIndex::new(vec![vec![]]).is_err());
        assert!(SprocIndex::new(vec![vec![1.0], vec![1.0, 2.0]]).is_err());
    }

    #[test]
    fn dp_matches_brute_force_independent() {
        let index = SprocIndex::new(pseudo_scores(1, 3, 8)).unwrap();
        for k in [1usize, 4, 10] {
            let brute = index.brute_force(k, None, 1_000_000).unwrap();
            let dp = index.top_k_dp(k, None).unwrap();
            let fast = index.top_k_independent(k).unwrap();
            assert!(dp.score_equivalent(&brute, 1e-9), "k={k} dp");
            assert!(fast.score_equivalent(&brute, 1e-9), "k={k} fast");
        }
    }

    #[test]
    fn dp_matches_brute_force_with_chain_compat() {
        let index = SprocIndex::new(pseudo_scores(2, 3, 7)).unwrap();
        // Compatibility: prefer ascending object ids with gap <= 2 (a toy
        // "adjacent, < 10 ft" relation).
        let compat = |_m: usize, prev: usize, cur: usize| -> f64 {
            if cur > prev && cur - prev <= 2 {
                0.5
            } else {
                -0.25
            }
        };
        for k in [1usize, 5] {
            let brute = index.brute_force(k, Some(&compat), 1_000_000).unwrap();
            let dp = index.top_k_dp(k, Some(&compat)).unwrap();
            assert!(dp.score_equivalent(&brute, 1e-9), "k={k}");
        }
    }

    #[test]
    fn dp_does_less_work_than_brute_force() {
        let index = SprocIndex::new(pseudo_scores(3, 4, 12)).unwrap();
        let brute = index.brute_force(5, None, 10_000_000).unwrap();
        let dp = index.top_k_dp(5, None).unwrap();
        assert!(
            dp.stats.comparisons < brute.stats.comparisons / 4,
            "dp {} vs brute {}",
            dp.stats.comparisons,
            brute.stats.comparisons
        );
        let fast = index.top_k_independent(5).unwrap();
        assert!(fast.stats.comparisons < dp.stats.comparisons);
    }

    #[test]
    fn brute_force_guards_explosion() {
        let index = SprocIndex::new(pseudo_scores(4, 6, 50)).unwrap();
        assert!(matches!(
            index.brute_force(1, None, 1_000_000),
            Err(ModelError::InvalidValue(_))
        ));
    }

    #[test]
    fn k_zero_rejected_everywhere() {
        let index = SprocIndex::new(vec![vec![1.0]]).unwrap();
        assert!(index.brute_force(0, None, 10).is_err());
        assert!(index.top_k_dp(0, None).is_err());
        assert!(index.top_k_independent(0).is_err());
    }

    #[test]
    fn k_exceeding_assembly_count_returns_all() {
        let index = SprocIndex::new(vec![vec![0.1, 0.9]]).unwrap();
        let fast = index.top_k_independent(10).unwrap();
        assert_eq!(fast.assemblies.len(), 2);
        assert_eq!(fast.assemblies[0].choice, vec![1]);
    }

    #[test]
    fn component_ranking_is_descending() {
        let index = SprocIndex::new(vec![vec![0.2, 0.9, 0.5]]).unwrap();
        let r = index.component_ranking(0, 2);
        assert_eq!(r[0].index, 1);
        assert_eq!(r[1].index, 2);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]
        #[test]
        fn prop_all_strategies_agree(
            seed in 0u64..500,
            m in 1usize..4,
            l in 1usize..8,
            k in 1usize..6,
        ) {
            let index = SprocIndex::new(pseudo_scores(seed, m, l)).unwrap();
            let brute = index.brute_force(k, None, 10_000_000).unwrap();
            let dp = index.top_k_dp(k, None).unwrap();
            let fast = index.top_k_independent(k).unwrap();
            prop_assert!(dp.score_equivalent(&brute, 1e-9));
            prop_assert!(fast.score_equivalent(&brute, 1e-9));
        }

        #[test]
        fn prop_dp_agrees_with_brute_under_compat(
            seed in 0u64..200,
            m in 2usize..4,
            l in 2usize..6,
            k in 1usize..4,
        ) {
            let index = SprocIndex::new(pseudo_scores(seed, m, l)).unwrap();
            let compat = |m: usize, a: usize, b: usize| -> f64 {
                ((a * 31 + b * 17 + m * 7) % 11) as f64 / 11.0 - 0.3
            };
            let brute = index.brute_force(k, Some(&compat), 10_000_000).unwrap();
            let dp = index.top_k_dp(k, Some(&compat)).unwrap();
            prop_assert!(dp.score_equivalent(&brute, 1e-9));
        }
    }
}
