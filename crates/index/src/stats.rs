//! Shared query-result and accounting types for all index structures.

use std::cmp::Ordering;
use std::fmt;

/// Work counters for one query, the basis of every speedup figure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueryStats {
    /// Tuples whose attributes were read and scored.
    pub tuples_examined: u64,
    /// Index nodes / layers visited.
    pub nodes_visited: u64,
    /// Pairwise comparisons (sorting / heap operations).
    pub comparisons: u64,
}

impl QueryStats {
    /// Zeroed counters.
    pub fn new() -> Self {
        QueryStats::default()
    }

    /// Speedup in tuples examined relative to `baseline` (`baseline/self`).
    /// `None` when this query examined nothing.
    pub fn speedup_vs(&self, baseline: &QueryStats) -> Option<f64> {
        if self.tuples_examined == 0 {
            return None;
        }
        Some(baseline.tuples_examined as f64 / self.tuples_examined as f64)
    }
}

impl fmt::Display for QueryStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} tuples, {} nodes, {} comparisons",
            self.tuples_examined, self.nodes_visited, self.comparisons
        )
    }
}

/// One scored item in a top-K result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoredItem {
    /// Index of the tuple in the indexed collection.
    pub index: usize,
    /// Model score of the tuple.
    pub score: f64,
}

/// A top-K answer plus the work that produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct TopKResult {
    /// Results in descending score order (ties broken by ascending index).
    pub results: Vec<ScoredItem>,
    /// Work counters.
    pub stats: QueryStats,
}

impl TopKResult {
    /// The result indexes in rank order.
    pub fn indexes(&self) -> Vec<usize> {
        self.results.iter().map(|r| r.index).collect()
    }

    /// Whether two results agree on the returned *scores* (rank-equivalent:
    /// permutations within score ties are allowed).
    pub fn score_equivalent(&self, other: &TopKResult, tolerance: f64) -> bool {
        self.results.len() == other.results.len()
            && self
                .results
                .iter()
                .zip(&other.results)
                .all(|(a, b)| (a.score - b.score).abs() <= tolerance)
    }
}

/// The canonical total order on scored items: descending score
/// (`total_cmp`), ties broken by ascending index. `Ordering::Less` means
/// `a` ranks *better* than `b`. Every top-K structure — result sorting,
/// the heap's eviction order, and offer-time comparisons — must route
/// through this one function so the order can never drift apart again
/// (the PR-2 tie-eviction bug was exactly such a divergence).
#[inline]
pub fn rank_cmp(a: &ScoredItem, b: &ScoredItem) -> Ordering {
    b.score.total_cmp(&a.score).then(a.index.cmp(&b.index))
}

/// Canonical ordering for scored items: descending score, ascending index.
pub fn sort_desc(items: &mut [ScoredItem]) {
    items.sort_by(rank_cmp);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_math() {
        let scan = QueryStats {
            tuples_examined: 1_000_000,
            ..QueryStats::new()
        };
        let onion = QueryStats {
            tuples_examined: 77,
            ..QueryStats::new()
        };
        let s = onion.speedup_vs(&scan).unwrap();
        assert!((s - 1_000_000.0 / 77.0).abs() < 1e-9);
        assert!(QueryStats::new().speedup_vs(&scan).is_none());
    }

    #[test]
    fn sort_is_stable_total_order() {
        let mut items = vec![
            ScoredItem {
                index: 5,
                score: 1.0,
            },
            ScoredItem {
                index: 2,
                score: 3.0,
            },
            ScoredItem {
                index: 1,
                score: 1.0,
            },
            ScoredItem {
                index: 9,
                score: f64::NEG_INFINITY,
            },
        ];
        sort_desc(&mut items);
        assert_eq!(
            items.iter().map(|i| i.index).collect::<Vec<_>>(),
            vec![2, 1, 5, 9]
        );
    }

    #[test]
    fn score_equivalence_tolerates_tie_permutations() {
        let a = TopKResult {
            results: vec![
                ScoredItem {
                    index: 0,
                    score: 2.0,
                },
                ScoredItem {
                    index: 1,
                    score: 1.0,
                },
            ],
            stats: QueryStats::new(),
        };
        let b = TopKResult {
            results: vec![
                ScoredItem {
                    index: 7,
                    score: 2.0,
                },
                ScoredItem {
                    index: 8,
                    score: 1.0,
                },
            ],
            stats: QueryStats::new(),
        };
        assert!(a.score_equivalent(&b, 1e-12));
        let c = TopKResult {
            results: vec![ScoredItem {
                index: 7,
                score: 2.0,
            }],
            stats: QueryStats::new(),
        };
        assert!(!a.score_equivalent(&c, 1e-12));
    }
}
