//! Sequential-scan baseline: evaluate the model on every tuple, keep a
//! top-K heap. Every index speedup in the paper is quoted against this.

use crate::stats::{sort_desc, QueryStats, ScoredItem, TopKResult};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Min-heap adapter so the heap root is the current K-th best.
#[derive(Debug, PartialEq)]
struct MinScored(ScoredItem);

impl Eq for MinScored {}

impl PartialOrd for MinScored {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for MinScored {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse score order (min-heap); ascending index breaks ties so
        // the *largest* index is evicted first, matching ascending-index
        // ranks: the heap keeps exactly the K best items under the total
        // order (score descending, index ascending).
        other
            .0
            .score
            .total_cmp(&self.0.score)
            .then(self.0.index.cmp(&other.0.index))
    }
}

/// A bounded top-K accumulator (max scores win).
#[derive(Debug)]
pub struct TopKHeap {
    k: usize,
    heap: BinaryHeap<MinScored>,
    comparisons: u64,
}

impl TopKHeap {
    /// Creates an accumulator for the best `k` items.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "top-K needs k >= 1");
        TopKHeap {
            k,
            heap: BinaryHeap::with_capacity(k + 1),
            comparisons: 0,
        }
    }

    /// Offers an item; returns whether it was kept.
    pub fn offer(&mut self, item: ScoredItem) -> bool {
        self.comparisons += 1;
        if self.heap.len() < self.k {
            self.heap.push(MinScored(item));
            return true;
        }
        let floor = self.floor().expect("heap is full");
        if item.score > floor
            || (item.score == floor
                && self
                    .heap
                    .peek()
                    .map(|m| item.index < m.0.index)
                    .unwrap_or(false))
        {
            self.heap.pop();
            self.heap.push(MinScored(item));
            true
        } else {
            false
        }
    }

    /// The current K-th best score (`None` until K items are held). Any
    /// candidate with an upper bound at or below this cannot change the
    /// result set's scores.
    pub fn floor(&self) -> Option<f64> {
        if self.heap.len() < self.k {
            None
        } else {
            self.heap.peek().map(|m| m.0.score)
        }
    }

    /// Number of items currently held.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no items are held.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Comparisons performed so far.
    pub fn comparisons(&self) -> u64 {
        self.comparisons
    }

    /// Extracts the results in descending score order.
    pub fn into_sorted(self) -> Vec<ScoredItem> {
        let mut items: Vec<ScoredItem> = self.heap.into_iter().map(|m| m.0).collect();
        sort_desc(&mut items);
        items
    }
}

/// Scans `data`, scoring each tuple with `score`, returning the top-K
/// maximizers with full work accounting.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn scan_top_k<T, F: FnMut(&T) -> f64>(data: &[T], k: usize, mut score: F) -> TopKResult {
    let mut heap = TopKHeap::new(k);
    for (index, tuple) in data.iter().enumerate() {
        heap.offer(ScoredItem {
            index,
            score: score(tuple),
        });
    }
    let comparisons = heap.comparisons();
    TopKResult {
        results: heap.into_sorted(),
        stats: QueryStats {
            tuples_examined: data.len() as u64,
            nodes_visited: 0,
            comparisons,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn scan_finds_exact_top_k() {
        let data: Vec<f64> = vec![3.0, 9.0, 1.0, 7.0, 5.0];
        let r = scan_top_k(&data, 3, |x| *x);
        assert_eq!(r.indexes(), vec![1, 3, 4]);
        assert_eq!(r.stats.tuples_examined, 5);
    }

    #[test]
    fn k_larger_than_data_returns_everything() {
        let data = vec![2.0, 1.0];
        let r = scan_top_k(&data, 10, |x| *x);
        assert_eq!(r.indexes(), vec![0, 1]);
    }

    #[test]
    fn ties_break_by_ascending_index() {
        let data = vec![1.0, 1.0, 1.0, 1.0];
        let r = scan_top_k(&data, 2, |x| *x);
        assert_eq!(r.indexes(), vec![0, 1]);
    }

    #[test]
    fn boundary_tie_eviction_keeps_smallest_indices() {
        // A strictly better late arrival forces one eviction at a tied
        // floor; the heap must pop the *largest* index among the tied
        // elements so the kept set is the K best under (score desc,
        // index asc). Order of offers is adversarial: the tied items
        // arrive before the heap is full.
        let data = vec![1.0, 1.0, 1.0, 9.0, 5.0];
        let r = scan_top_k(&data, 3, |x| *x);
        assert_eq!(r.indexes(), vec![3, 4, 0]);
    }

    #[test]
    fn floor_tracks_kth_best() {
        let mut heap = TopKHeap::new(2);
        assert_eq!(heap.floor(), None);
        heap.offer(ScoredItem {
            index: 0,
            score: 5.0,
        });
        assert_eq!(heap.floor(), None);
        heap.offer(ScoredItem {
            index: 1,
            score: 9.0,
        });
        assert_eq!(heap.floor(), Some(5.0));
        heap.offer(ScoredItem {
            index: 2,
            score: 7.0,
        });
        assert_eq!(heap.floor(), Some(7.0));
        assert!(!heap.offer(ScoredItem {
            index: 3,
            score: 6.0
        }));
    }

    #[test]
    #[should_panic(expected = "k >= 1")]
    fn zero_k_panics() {
        let _ = TopKHeap::new(0);
    }

    proptest! {
        #[test]
        fn prop_scan_matches_full_sort(
            data in proptest::collection::vec(-1e6f64..1e6, 1..200),
            k in 1usize..20,
        ) {
            let r = scan_top_k(&data, k, |x| *x);
            let mut all: Vec<ScoredItem> = data
                .iter()
                .enumerate()
                .map(|(index, score)| ScoredItem { index, score: *score })
                .collect();
            sort_desc(&mut all);
            all.truncate(k);
            prop_assert_eq!(r.results, all);
        }
    }
}
