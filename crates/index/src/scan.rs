//! Sequential-scan baseline: evaluate the model on every tuple, keep a
//! top-K heap. Every index speedup in the paper is quoted against this.

use crate::kernels;
use crate::quant::{QuantPruneReport, QuantizedStore};
use crate::stats::{rank_cmp, sort_desc, QueryStats, ScoredItem, TopKResult};
use crate::store::PointStore;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Min-heap adapter so the heap root is the current K-th best: the heap
/// max under this order is the *worst-ranked* item held.
#[derive(Debug, PartialEq)]
struct MinScored(ScoredItem);

impl Eq for MinScored {}

impl PartialOrd for MinScored {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for MinScored {
    fn cmp(&self, other: &Self) -> Ordering {
        // The one canonical order (score desc, index asc): under
        // `rank_cmp`, `Less` ranks better, so the BinaryHeap max — its
        // `rank_cmp`-greatest element — is the worst item and is evicted
        // first. `offer` uses the same comparator.
        rank_cmp(&self.0, &other.0)
    }
}

/// A bounded top-K accumulator (max scores win).
#[derive(Debug)]
pub struct TopKHeap {
    k: usize,
    heap: BinaryHeap<MinScored>,
    comparisons: u64,
}

impl TopKHeap {
    /// Creates an accumulator for the best `k` items.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "top-K needs k >= 1");
        TopKHeap {
            k,
            heap: BinaryHeap::with_capacity(k + 1),
            comparisons: 0,
        }
    }

    /// Offers an item; returns whether it was kept. A full heap keeps the
    /// newcomer exactly when it ranks strictly better (under
    /// [`rank_cmp`]) than the worst item held, which that item then
    /// leaves — so the held set is always the K best seen.
    pub fn offer(&mut self, item: ScoredItem) -> bool {
        self.comparisons += 1;
        if self.heap.len() < self.k {
            self.heap.push(MinScored(item));
            return true;
        }
        let keep = self
            .heap
            .peek()
            .map(|worst| rank_cmp(&item, &worst.0) == Ordering::Less)
            .unwrap_or(false);
        if keep {
            self.heap.pop();
            self.heap.push(MinScored(item));
        }
        keep
    }

    /// The current K-th best score (`None` until K items are held). Any
    /// candidate with an upper bound at or below this cannot change the
    /// result set's scores.
    pub fn floor(&self) -> Option<f64> {
        if self.heap.len() < self.k {
            None
        } else {
            self.heap.peek().map(|m| m.0.score)
        }
    }

    /// Number of items currently held.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no items are held.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Comparisons performed so far.
    pub fn comparisons(&self) -> u64 {
        self.comparisons
    }

    /// Extracts the results in descending score order.
    pub fn into_sorted(self) -> Vec<ScoredItem> {
        let mut items: Vec<ScoredItem> = self.heap.into_iter().map(|m| m.0).collect();
        sort_desc(&mut items);
        items
    }
}

/// Scans `data`, scoring each tuple with `score`, returning the top-K
/// maximizers with full work accounting.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn scan_top_k<T, F: FnMut(&T) -> f64>(data: &[T], k: usize, mut score: F) -> TopKResult {
    let mut heap = TopKHeap::new(k);
    for (index, tuple) in data.iter().enumerate() {
        heap.offer(ScoredItem {
            index,
            score: score(tuple),
        });
    }
    let comparisons = heap.comparisons();
    TopKResult {
        results: heap.into_sorted(),
        stats: QueryStats {
            tuples_examined: data.len() as u64,
            nodes_visited: 0,
            comparisons,
        },
    }
}

/// Rows per scoring block in [`scan_top_k_flat`]: big enough to amortize
/// the per-block dimension dispatch, small enough that the score buffer
/// stays resident in L1/L2.
const SCAN_BLOCK_ROWS: usize = 4096;

/// Scans a flat [`PointStore`], returning the top-K maximizers of
/// `direction . x` — bit-identical to
/// `scan_top_k(rows, k, |p| direction.iter().zip(p).map(|(a, v)| a * v).sum())`
/// on the same data, but scoring contiguous row blocks through
/// [`kernels::score_block_into`] instead of chasing a pointer per tuple.
/// One block-sized score buffer is the only allocation per call.
///
/// # Panics
///
/// Panics if `k == 0` or the direction length does not match the store.
pub fn scan_top_k_flat(store: &PointStore, direction: &[f64], k: usize) -> TopKResult {
    assert_eq!(
        direction.len(),
        store.dims(),
        "direction length must match store dims"
    );
    let dims = store.dims();
    let mut heap = TopKHeap::new(k);
    let mut scores: Vec<f64> = Vec::with_capacity(SCAN_BLOCK_ROWS.min(store.len()));
    let mut base = 0usize;
    // Cached copy of the heap floor: a score strictly below it can never
    // be kept (`rank_cmp` ranks it worse than the worst item held), so
    // the hot loop is one predictable float compare per tuple instead of
    // a heap probe. `score < floor` is false for NaN and for a tied
    // (±0.0-tied) score, which fall through to `offer` — the one place
    // that decides ties — so the kept set is untouched. Legacy charges
    // one comparison per tuple; the precheck *is* that comparison, so
    // the accounting stays one-per-tuple either way.
    let mut floor: Option<f64> = None;
    for block in store.flat().chunks(SCAN_BLOCK_ROWS * dims) {
        kernels::score_block_into(block, dims, direction, &mut scores);
        for (offset, &score) in scores.iter().enumerate() {
            if let Some(f) = floor {
                if score < f {
                    continue;
                }
            }
            if heap.offer(ScoredItem {
                index: base + offset,
                score,
            }) {
                floor = heap.floor();
            }
        }
        base += scores.len();
    }
    TopKResult {
        results: heap.into_sorted(),
        stats: QueryStats {
            tuples_examined: store.len() as u64,
            nodes_visited: 0,
            comparisons: store.len() as u64,
        },
    }
}

/// Quantized coarse-pass scan: like [`scan_top_k_flat`], but consults an
/// i8 [`QuantizedStore`] first. Once the heap holds K items, a whole
/// 512-row block is rejected by one O(d) bound check when its quantized
/// upper bound is **strictly** below the floor — no f64 row data is
/// touched. Surviving blocks cascade to per-sub-block corner bounds
/// (one O(d) check per [`crate::quant::QUANT_SUB_ROWS`] rows); only
/// sub-blocks whose corner clears the floor are scored by the exact
/// f64 kernel.
///
/// Pruning requires strict `ub < floor`, and the bound soundly dominates
/// the exact kernel score (see [`crate::quant`]), so every pruned row
/// would have been rejected by the heap anyway — `results` are
/// bit-identical to [`scan_top_k_flat`]. Work accounting differs by
/// design: `tuples_examined` counts only exact-scored rows, and the
/// returned [`QuantPruneReport`] breaks down what the coarse pass
/// rejected.
///
/// # Panics
///
/// Panics if `k == 0`, the direction length does not match, or `quant`
/// was not built over a store of the same shape.
pub fn scan_top_k_quant(
    store: &PointStore,
    quant: &QuantizedStore,
    direction: &[f64],
    k: usize,
) -> (TopKResult, QuantPruneReport) {
    assert_eq!(
        direction.len(),
        store.dims(),
        "direction length must match store dims"
    );
    assert_eq!(quant.dims(), store.dims(), "quantized store dims mismatch");
    assert_eq!(quant.rows(), store.len(), "quantized store rows mismatch");
    let dims = store.dims();
    let qq = quant.prepare(direction);
    let mut heap = TopKHeap::new(k);
    let mut report = QuantPruneReport {
        blocks_total: quant.blocks() as u64,
        ..QuantPruneReport::default()
    };
    let mut sub_ubs: Vec<f64> = Vec::new();
    let mut scores: Vec<f64> = Vec::new();
    let mut floor: Option<f64> = None;
    let flat = store.flat();
    for b in 0..quant.blocks() {
        let (_, m) = quant.block_range(b);
        // Snapshot of the floor for this block's prune decisions; the
        // floor only rises, so a stale snapshot is merely less tight.
        let f0 = floor;
        if let Some(f) = f0 {
            if qq.block_upper_bound(b) < f {
                report.blocks_pruned += 1;
                report.rows_pruned += m as u64;
                continue;
            }
            qq.sub_upper_bounds(quant, b, &mut sub_ubs);
        }
        // `sub_ubs` is only populated when a floor exists, so the index
        // loop cannot become an iterator over it.
        #[allow(clippy::needless_range_loop)]
        for s in 0..quant.subs(b) {
            let (sub_start, sub_m) = quant.sub_range(b, s);
            if let Some(f) = f0 {
                if sub_ubs[s] < f {
                    report.subblocks_pruned += 1;
                    report.rows_pruned += sub_m as u64;
                    continue;
                }
            }
            // Exact scoring of the surviving sub-block, with the same
            // cached-floor precheck the flat scan uses.
            let sub = &flat[sub_start * dims..(sub_start + sub_m) * dims];
            kernels::score_block_into(sub, dims, direction, &mut scores);
            report.rows_exact += sub_m as u64;
            for (i, &score) in scores.iter().enumerate() {
                if let Some(cur) = floor {
                    if score < cur {
                        continue;
                    }
                }
                if heap.offer(ScoredItem {
                    index: sub_start + i,
                    score,
                }) {
                    floor = heap.floor();
                }
            }
        }
    }
    let comparisons = heap.comparisons();
    (
        TopKResult {
            results: heap.into_sorted(),
            stats: QueryStats {
                tuples_examined: report.rows_exact,
                nodes_visited: 0,
                comparisons,
            },
        },
        report,
    )
}

/// Batched flat scan: one streaming pass over the store serves every
/// direction in the batch. Each query gets its own [`TopKHeap`] and
/// cached floor; rows are scored for all queries at once through
/// [`kernels::score_block_multi_transposed_into`], so the store's bytes
/// are read from memory once per batch instead of once per query.
///
/// `results[q]` is bit-identical to `scan_top_k_flat(store,
/// &directions[q], k)`: the multi kernel's column `q` matches the solo
/// kernel bit for bit, rows are offered in the same order, and each
/// query's floor precheck consults only that query's own heap.
///
/// # Panics
///
/// Panics if `k == 0` or any direction length does not match the store.
pub fn scan_top_k_flat_multi(
    store: &PointStore,
    directions: &[Vec<f64>],
    k: usize,
) -> Vec<TopKResult> {
    let dims = store.dims();
    let m = directions.len();
    let mut transposed = vec![0.0f64; m * dims];
    for (q, dir) in directions.iter().enumerate() {
        assert_eq!(dir.len(), dims, "direction length must match store dims");
        for (j, &v) in dir.iter().enumerate() {
            transposed[j * m + q] = v;
        }
    }
    let mut heaps: Vec<TopKHeap> = (0..m).map(|_| TopKHeap::new(k)).collect();
    let mut floors: Vec<Option<f64>> = vec![None; m];
    let mut scores: Vec<f64> = Vec::new();
    let mut base = 0usize;
    for block in store.flat().chunks(SCAN_BLOCK_ROWS * dims) {
        kernels::score_block_multi_transposed_into(block, dims, &transposed, m, &mut scores);
        let rows = block.len() / dims;
        for offset in 0..rows {
            let row_scores = &scores[offset * m..(offset + 1) * m];
            for (q, &score) in row_scores.iter().enumerate() {
                if let Some(f) = floors[q] {
                    if score < f {
                        continue;
                    }
                }
                if heaps[q].offer(ScoredItem {
                    index: base + offset,
                    score,
                }) {
                    floors[q] = heaps[q].floor();
                }
            }
        }
        base += rows;
    }
    heaps
        .into_iter()
        .map(|heap| TopKResult {
            results: heap.into_sorted(),
            stats: QueryStats {
                tuples_examined: store.len() as u64,
                nodes_visited: 0,
                comparisons: store.len() as u64,
            },
        })
        .collect()
}

/// Batched quantized coarse-pass scan: one i8 decode pass serves the
/// whole batch. A 512-row block is skipped — its f64 rows never touched
/// — only when **every** query's quantized upper bound falls strictly
/// below that query's floor, i.e. the block survives iff it survives
/// *any* query's floor. Surviving sub-blocks are exact-scored once
/// through the multi kernel and offered to every query under its own
/// cached-floor precheck.
///
/// `results[q]` is bit-identical to the solo
/// [`scan_top_k_quant`] (and hence [`scan_top_k_flat`]) run: a block
/// that query `q` alone would have pruned contains only scores strictly
/// below `q`'s floor (the quantized bound soundly dominates the exact
/// kernel score), so the extra rows `q` sees on behalf of other queries
/// are all rejected by its precheck — the shared traversal can only
/// *add* row visits, never change what a query keeps.
///
/// The returned [`QuantPruneReport`] is batch-wide: `rows_exact` counts
/// rows decoded once for the whole batch, which is the amortization this
/// path exists to deliver.
///
/// # Panics
///
/// Panics if `k == 0`, any direction length does not match, or `quant`
/// was not built over a store of the same shape.
pub fn scan_top_k_quant_multi(
    store: &PointStore,
    quant: &QuantizedStore,
    directions: &[Vec<f64>],
    k: usize,
) -> (Vec<TopKResult>, QuantPruneReport) {
    assert_eq!(quant.dims(), store.dims(), "quantized store dims mismatch");
    assert_eq!(quant.rows(), store.len(), "quantized store rows mismatch");
    let dims = store.dims();
    let m = directions.len();
    let mut transposed = vec![0.0f64; m * dims];
    for (q, dir) in directions.iter().enumerate() {
        assert_eq!(dir.len(), dims, "direction length must match store dims");
        for (j, &v) in dir.iter().enumerate() {
            transposed[j * m + q] = v;
        }
    }
    let qqs: Vec<_> = directions.iter().map(|dir| quant.prepare(dir)).collect();
    let mut heaps: Vec<TopKHeap> = (0..m).map(|_| TopKHeap::new(k)).collect();
    let mut floors: Vec<Option<f64>> = vec![None; m];
    let mut report = QuantPruneReport {
        blocks_total: quant.blocks() as u64,
        ..QuantPruneReport::default()
    };
    let mut sub_ubs: Vec<Vec<f64>> = vec![Vec::new(); m];
    let mut scores: Vec<f64> = Vec::new();
    let flat = store.flat();
    for b in 0..quant.blocks() {
        let (_, rows_in_block) = quant.block_range(b);
        // Snapshot of every floor for this block's prune decisions; floors
        // only rise, so stale snapshots are merely less tight.
        let f0 = floors.clone();
        // The block is fetched iff it survives ANY query's floor.
        let block_dead = m > 0
            && (0..m).all(|q| match f0[q] {
                Some(f) => qqs[q].block_upper_bound(b) < f,
                None => false,
            });
        if block_dead {
            report.blocks_pruned += 1;
            report.rows_pruned += rows_in_block as u64;
            continue;
        }
        let any_floor = f0.iter().any(|f| f.is_some());
        if any_floor {
            for q in 0..m {
                if f0[q].is_some() {
                    qqs[q].sub_upper_bounds(quant, b, &mut sub_ubs[q]);
                }
            }
        }
        // `s` indexes the *inner* per-sub-block dimension of `sub_ubs`
        // (the outer is per-query), so the iterator rewrite clippy wants
        // would obscure the shape.
        #[allow(clippy::needless_range_loop)]
        for s in 0..quant.subs(b) {
            let (sub_start, sub_m) = quant.sub_range(b, s);
            let sub_dead = m > 0
                && (0..m).all(|q| match f0[q] {
                    Some(f) => sub_ubs[q][s] < f,
                    None => false,
                });
            if sub_dead {
                report.subblocks_pruned += 1;
                report.rows_pruned += sub_m as u64;
                continue;
            }
            // Exact scoring of the surviving sub-block, once for the
            // whole batch, with each query's own cached-floor precheck.
            let sub = &flat[sub_start * dims..(sub_start + sub_m) * dims];
            kernels::score_block_multi_transposed_into(sub, dims, &transposed, m, &mut scores);
            report.rows_exact += sub_m as u64;
            for i in 0..sub_m {
                let row_scores = &scores[i * m..(i + 1) * m];
                for (q, &score) in row_scores.iter().enumerate() {
                    if let Some(cur) = floors[q] {
                        if score < cur {
                            continue;
                        }
                    }
                    if heaps[q].offer(ScoredItem {
                        index: sub_start + i,
                        score,
                    }) {
                        floors[q] = heaps[q].floor();
                    }
                }
            }
        }
    }
    let results = heaps
        .into_iter()
        .map(|heap| {
            let comparisons = heap.comparisons();
            TopKResult {
                results: heap.into_sorted(),
                stats: QueryStats {
                    tuples_examined: report.rows_exact,
                    nodes_visited: 0,
                    comparisons,
                },
            }
        })
        .collect();
    (results, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn scan_finds_exact_top_k() {
        let data: Vec<f64> = vec![3.0, 9.0, 1.0, 7.0, 5.0];
        let r = scan_top_k(&data, 3, |x| *x);
        assert_eq!(r.indexes(), vec![1, 3, 4]);
        assert_eq!(r.stats.tuples_examined, 5);
    }

    #[test]
    fn k_larger_than_data_returns_everything() {
        let data = vec![2.0, 1.0];
        let r = scan_top_k(&data, 10, |x| *x);
        assert_eq!(r.indexes(), vec![0, 1]);
    }

    #[test]
    fn ties_break_by_ascending_index() {
        let data = vec![1.0, 1.0, 1.0, 1.0];
        let r = scan_top_k(&data, 2, |x| *x);
        assert_eq!(r.indexes(), vec![0, 1]);
    }

    #[test]
    fn boundary_tie_eviction_keeps_smallest_indices() {
        // A strictly better late arrival forces one eviction at a tied
        // floor; the heap must pop the *largest* index among the tied
        // elements so the kept set is the K best under (score desc,
        // index asc). Order of offers is adversarial: the tied items
        // arrive before the heap is full.
        let data = vec![1.0, 1.0, 1.0, 9.0, 5.0];
        let r = scan_top_k(&data, 3, |x| *x);
        assert_eq!(r.indexes(), vec![3, 4, 0]);
    }

    #[test]
    fn floor_tracks_kth_best() {
        let mut heap = TopKHeap::new(2);
        assert_eq!(heap.floor(), None);
        heap.offer(ScoredItem {
            index: 0,
            score: 5.0,
        });
        assert_eq!(heap.floor(), None);
        heap.offer(ScoredItem {
            index: 1,
            score: 9.0,
        });
        assert_eq!(heap.floor(), Some(5.0));
        heap.offer(ScoredItem {
            index: 2,
            score: 7.0,
        });
        assert_eq!(heap.floor(), Some(7.0));
        assert!(!heap.offer(ScoredItem {
            index: 3,
            score: 6.0
        }));
    }

    #[test]
    #[should_panic(expected = "k >= 1")]
    fn zero_k_panics() {
        let _ = TopKHeap::new(0);
    }

    #[test]
    fn offer_and_sort_share_one_tie_order() {
        // Locks the PR-2 tie-eviction fix through the shared comparator:
        // with the heap full at a tied floor, a smaller index must evict
        // the largest tied index, and a larger index must be rejected —
        // exactly what `rank_cmp` says, with no second opinion in
        // `offer`.
        let mut heap = TopKHeap::new(2);
        heap.offer(ScoredItem {
            index: 5,
            score: 1.0,
        });
        heap.offer(ScoredItem {
            index: 3,
            score: 1.0,
        });
        assert!(
            !heap.offer(ScoredItem {
                index: 7,
                score: 1.0
            }),
            "worse-ranked tie must be rejected"
        );
        assert!(
            heap.offer(ScoredItem {
                index: 1,
                score: 1.0
            }),
            "better-ranked tie must evict index 5"
        );
        assert_eq!(
            heap.into_sorted()
                .iter()
                .map(|s| s.index)
                .collect::<Vec<_>>(),
            vec![1, 3]
        );
    }

    #[test]
    fn flat_scan_matches_legacy_scan() {
        let rows: Vec<Vec<f64>> = (0..500)
            .map(|i| vec![(i as f64 * 0.37).sin(), (i as f64 * 0.91).cos(), i as f64])
            .collect();
        let store = PointStore::from_rows(&rows).unwrap();
        let dir = vec![2.0, -1.5, 0.01];
        for k in [1usize, 7, 100] {
            let flat = scan_top_k_flat(&store, &dir, k);
            let legacy = scan_top_k(&rows, k, |p| dir.iter().zip(p).map(|(a, v)| a * v).sum());
            assert_eq!(flat, legacy, "k={k}");
        }
    }

    #[test]
    fn quant_scan_matches_flat_scan_and_prunes() {
        let mut state = 42u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(11);
            ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        };
        let rows: Vec<Vec<f64>> = (0..6000)
            .map(|_| (0..3).map(|_| next() * 20.0).collect())
            .collect();
        let dir = vec![0.443, 0.222, 0.153];
        let store = PointStore::from_rows(&rows).unwrap();
        let quant = QuantizedStore::build(&store);
        for k in [1usize, 10, 100] {
            let flat = scan_top_k_flat(&store, &dir, k);
            let (q, report) = scan_top_k_quant(&store, &quant, &dir, k);
            assert_eq!(q.results, flat.results, "k={k}");
            assert_eq!(
                report.rows_pruned + report.rows_exact,
                store.len() as u64,
                "every row is accounted for"
            );
        }
        // Small K over uniform data: almost everything sits far below the
        // floor, so the coarse pass must actually reject work.
        let (_, report) = scan_top_k_quant(&store, &quant, &dir, 1);
        assert!(
            report.prune_rate() > 0.5,
            "expected real pruning, got rate {}",
            report.prune_rate()
        );
    }

    #[test]
    fn multi_flat_scan_matches_solo_runs() {
        let rows: Vec<Vec<f64>> = (0..700)
            .map(|i| vec![(i as f64 * 0.37).sin(), (i as f64 * 0.91).cos(), i as f64])
            .collect();
        let store = PointStore::from_rows(&rows).unwrap();
        let dirs: Vec<Vec<f64>> = vec![
            vec![2.0, -1.5, 0.01],
            vec![-1.0, 0.25, 0.5],
            vec![0.0, 0.0, -1.0],
        ];
        for k in [1usize, 7, 50] {
            let batched = scan_top_k_flat_multi(&store, &dirs, k);
            assert_eq!(batched.len(), dirs.len());
            for (q, dir) in dirs.iter().enumerate() {
                let solo = scan_top_k_flat(&store, dir, k);
                assert_eq!(batched[q], solo, "k={k} q={q}");
            }
        }
        assert!(scan_top_k_flat_multi(&store, &[], 3).is_empty());
    }

    #[test]
    fn multi_quant_scan_matches_solo_and_amortizes_decodes() {
        let mut state = 77u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(11);
            ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        };
        let rows: Vec<Vec<f64>> = (0..6000)
            .map(|_| (0..3).map(|_| next() * 20.0).collect())
            .collect();
        let store = PointStore::from_rows(&rows).unwrap();
        let quant = QuantizedStore::build(&store);
        // Perturbations of one hot direction: overlapping survivors, the
        // regime batching is built for.
        let dirs: Vec<Vec<f64>> = (0..8)
            .map(|q| {
                vec![
                    0.443 + q as f64 * 0.001,
                    0.222 - q as f64 * 0.001,
                    0.153 + q as f64 * 0.0005,
                ]
            })
            .collect();
        for k in [1usize, 10] {
            let (batched, breport) = scan_top_k_quant_multi(&store, &quant, &dirs, k);
            let mut solo_exact = 0u64;
            for (q, dir) in dirs.iter().enumerate() {
                let (solo, sreport) = scan_top_k_quant(&store, &quant, dir, k);
                assert_eq!(batched[q].results, solo.results, "k={k} q={q}");
                solo_exact += sreport.rows_exact;
            }
            assert_eq!(
                breport.rows_pruned + breport.rows_exact,
                store.len() as u64,
                "every row is accounted for"
            );
            // One decode serves the batch: batched exact rows can't exceed
            // the sum of solo decodes (and for overlapping queries should
            // be far below it).
            assert!(
                breport.rows_exact <= solo_exact,
                "batched decodes {} exceed solo sum {}",
                breport.rows_exact,
                solo_exact
            );
        }
    }

    proptest! {
        #[test]
        fn prop_multi_flat_scan_bit_identical_to_solo(
            n in 1usize..400,
            d in 1usize..5,
            m in 1usize..6,
            k in 1usize..8,
            seed in 0u64..3_000,
        ) {
            let mut state = seed ^ 0xbac4;
            let mut next = move || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(3);
                ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
            };
            let rows: Vec<Vec<f64>> = (0..n)
                .map(|_| (0..d).map(|_| next() * 20.0).collect())
                .collect();
            let dirs: Vec<Vec<f64>> = (0..m)
                .map(|_| (0..d).map(|_| next() * 4.0).collect())
                .collect();
            let store = PointStore::from_rows(&rows).unwrap();
            let batched = scan_top_k_flat_multi(&store, &dirs, k);
            for (q, dir) in dirs.iter().enumerate() {
                prop_assert_eq!(&batched[q], &scan_top_k_flat(&store, dir, k));
            }
        }

        #[test]
        fn prop_multi_quant_scan_bit_identical_to_solo(
            n in 1usize..1000,
            d in 1usize..5,
            m in 1usize..5,
            k in 1usize..8,
            seed in 0u64..2_000,
        ) {
            let mut state = seed ^ 0x9bad;
            let mut next = move || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(5);
                ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
            };
            let rows: Vec<Vec<f64>> = (0..n)
                .map(|_| (0..d).map(|_| next() * 20.0).collect())
                .collect();
            let dirs: Vec<Vec<f64>> = (0..m)
                .map(|_| (0..d).map(|_| next() * 4.0).collect())
                .collect();
            let store = PointStore::from_rows(&rows).unwrap();
            let quant = QuantizedStore::build(&store);
            let (batched, _) = scan_top_k_quant_multi(&store, &quant, &dirs, k);
            for (q, dir) in dirs.iter().enumerate() {
                let (solo, _) = scan_top_k_quant(&store, &quant, dir, k);
                prop_assert_eq!(&batched[q].results, &solo.results);
            }
        }

        #[test]
        fn prop_quant_scan_bit_identical_to_flat(
            n in 1usize..1200,
            d in 1usize..6,
            k in 1usize..12,
            seed in 0u64..3_000,
        ) {
            let mut state = seed ^ 0x9e37;
            let mut next = move || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(7);
                ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
            };
            let rows: Vec<Vec<f64>> = (0..n)
                .map(|_| (0..d).map(|_| next() * 20.0).collect())
                .collect();
            let dir: Vec<f64> = (0..d).map(|_| next() * 4.0).collect();
            let store = PointStore::from_rows(&rows).unwrap();
            let quant = QuantizedStore::build(&store);
            let flat = scan_top_k_flat(&store, &dir, k);
            let (q, _) = scan_top_k_quant(&store, &quant, &dir, k);
            prop_assert_eq!(q.results, flat.results);
        }

        #[test]
        fn prop_scan_matches_full_sort(
            data in proptest::collection::vec(-1e6f64..1e6, 1..200),
            k in 1usize..20,
        ) {
            let r = scan_top_k(&data, k, |x| *x);
            let mut all: Vec<ScoredItem> = data
                .iter()
                .enumerate()
                .map(|(index, score)| ScoredItem { index, score: *score })
                .collect();
            sort_desc(&mut all);
            all.truncate(k);
            prop_assert_eq!(r.results, all);
        }

        #[test]
        fn prop_scan_matches_full_sort_with_heavy_ties(
            // Scores drawn from five values force constant floor ties, the
            // adversarial regime for offer-time eviction order.
            data in proptest::collection::vec(0u8..5, 1..200),
            k in 1usize..20,
        ) {
            let data: Vec<f64> = data.into_iter().map(f64::from).collect();
            let r = scan_top_k(&data, k, |x| *x);
            let mut all: Vec<ScoredItem> = data
                .iter()
                .enumerate()
                .map(|(index, score)| ScoredItem { index, score: *score })
                .collect();
            sort_desc(&mut all);
            all.truncate(k);
            prop_assert_eq!(r.results, all);
        }

        #[test]
        fn prop_flat_scan_bit_identical_to_legacy(
            n in 1usize..300,
            d in 1usize..6,
            k in 1usize..12,
            seed in 0u64..5_000,
        ) {
            let mut state = seed ^ 0x5ca9;
            let mut next = move || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(11);
                ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
            };
            let rows: Vec<Vec<f64>> = (0..n)
                .map(|_| (0..d).map(|_| next() * 20.0).collect())
                .collect();
            let dir: Vec<f64> = (0..d).map(|_| next() * 4.0).collect();
            let store = PointStore::from_rows(&rows).unwrap();
            let flat = scan_top_k_flat(&store, &dir, k);
            let legacy =
                scan_top_k(&rows, k, |p| dir.iter().zip(p).map(|(a, v)| a * v).sum());
            prop_assert_eq!(flat, legacy);
        }
    }
}
