#![warn(missing_docs)]
//! # mbir-index
//!
//! Model-specific indexing support (paper §3.2):
//!
//! * [`onion`] — the Onion technique \[11\]: convex-hull layer peeling for
//!   linear optimization (top-K max/min of a linear model). The paper quotes
//!   13,000x (top-1) and 1,400x (top-10) speedups over sequential scan on
//!   3-attribute Gaussian data.
//! * [`rstar`] — an R*-tree: the spatial-index baseline the paper calls
//!   "sub-optimal for model-based queries"; provides range queries and a
//!   best-first top-K over linear scores via MBR bounds.
//! * [`sproc`] — SPROC [15, 16]: dynamic-programming pruning for fuzzy
//!   Cartesian (composite multi-component) queries, reducing `O(L^M)` to
//!   `O(M K L^2)` and further with sorted-list early termination.
//! * [`scan`] — the sequential-scan baseline every speedup is measured
//!   against, with tuple accounting.
//! * [`store`] — flat row-major point storage ([`store::PointStore`]):
//!   one contiguous allocation instead of a `Vec` per tuple.
//! * [`kernels`] — batched scoring kernels over flat rows, bit-identical
//!   to the per-point paths by the summation-order contract.
//! * [`quant`] — i8 quantized coarse-pass pruning over point blocks:
//!   sound upper bounds reject rows below the top-K floor before any f64
//!   is touched; prune-only, so answers stay bit-identical.
//!
//! ```
//! use mbir_index::onion::OnionIndex;
//!
//! let points = vec![vec![0.0, 0.0], vec![1.0, 0.0], vec![0.0, 1.0], vec![0.9, 0.9]];
//! let index = OnionIndex::build(points).unwrap();
//! let top = index.top_k_max(&[1.0, 1.0], 1).unwrap();
//! assert_eq!(top.results[0].index, 3);
//! ```

pub mod kernels;
pub mod onion;
pub mod quant;
pub mod rstar;
pub mod scan;
pub mod sproc;
pub mod stats;
pub mod store;

pub use onion::{OnionAppendReport, OnionIndex};
pub use quant::{QuantPruneReport, QuantQuery, QuantizedStore};
pub use rstar::RStarTree;
pub use scan::{scan_top_k, scan_top_k_flat, scan_top_k_quant};
pub use sproc::SprocIndex;
pub use stats::{QueryStats, ScoredItem, TopKResult};
pub use store::PointStore;
