//! The geology riverbed knowledge model of paper Fig. 4:
//!
//! > "the riverbed consisting of: shale, on top of sandstones, on top of
//! > siltstones, and the Gamma ray of these region is higher than 45."
//!
//! The Fig. 4 annotations add "adjacent, < 10 ft" bed constraints and a
//! "delta lobe" context. The model here scores a well log by combining the
//! structural sequence match (fuzzy, via [`SequencePattern`]) with a fuzzy
//! gamma-ray criterion over the matched interval — multi-modal, since
//! lithology comes from image-interpreted FMI logs and gamma from the
//! 1-D tool trace.

use crate::error::ModelError;
use crate::fuzzy::Membership;
use crate::knowledge::{SequenceElement, SequencePattern};
use mbir_archive::lithology::Lithology;
use mbir_archive::welllog::WellLog;

/// A scored riverbed candidate within one well.
#[derive(Debug, Clone, PartialEq)]
pub struct RiverbedMatch {
    /// Index of the first matched run (shale bed) in the well's runs.
    pub run_index: usize,
    /// Top depth of the matched interval in feet.
    pub top_ft: f64,
    /// Bottom depth of the matched interval in feet.
    pub bottom_ft: f64,
    /// Structural sequence quality in `[0, 1]`.
    pub structure_score: f64,
    /// Gamma criterion degree in `[0, 1]`.
    pub gamma_score: f64,
    /// Combined model score in `[0, 1]`.
    pub score: f64,
}

/// The riverbed knowledge model.
///
/// # Examples
///
/// ```
/// use mbir_models::knowledge::geology::RiverbedModel;
/// use mbir_archive::welllog::WellLog;
///
/// let model = RiverbedModel::paper();
/// let well = WellLog::synthetic_with_riverbed(7, 500.0);
/// let matches = model.score_well(&well);
/// assert!(!matches.is_empty());
/// assert!(matches[0].score > 0.5);
/// ```
#[derive(Debug, Clone)]
pub struct RiverbedModel {
    pattern: SequencePattern<Lithology>,
    gamma: Membership,
    min_quality: f64,
}

impl RiverbedModel {
    /// The model as specified in Fig. 4: shale / sandstone / siltstone
    /// adjacent beds under 10 ft, gamma above 45 API (as a soft sigmoid so
    /// near-misses rank rather than vanish).
    pub fn paper() -> Self {
        RiverbedModel {
            pattern: SequencePattern::new(vec![
                SequenceElement::labelled(Lithology::Shale).with_max_thickness(10.0),
                SequenceElement::labelled(Lithology::Sandstone).with_max_thickness(10.0),
                SequenceElement::labelled(Lithology::Siltstone).with_max_thickness(10.0),
            ])
            .expect("non-empty pattern"),
            gamma: Membership::Sigmoid {
                center: 45.0,
                slope: 0.3,
            },
            min_quality: 0.25,
        }
    }

    /// A custom variant.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidValue`] when `min_quality` is outside
    /// `[0, 1]`.
    pub fn with_parameters(
        pattern: SequencePattern<Lithology>,
        gamma: Membership,
        min_quality: f64,
    ) -> Result<Self, ModelError> {
        if !(0.0..=1.0).contains(&min_quality) {
            return Err(ModelError::InvalidValue(format!(
                "min_quality must be in [0,1], got {min_quality}"
            )));
        }
        Ok(RiverbedModel {
            pattern,
            gamma,
            min_quality,
        })
    }

    /// The structural pattern.
    pub fn pattern(&self) -> &SequencePattern<Lithology> {
        &self.pattern
    }

    /// Scores every candidate interval in a well, best first. Candidates
    /// below the model's quality floor are dropped.
    pub fn score_well(&self, well: &WellLog) -> Vec<RiverbedMatch> {
        let runs = well.lithology_runs();
        let run_pairs: Vec<(Lithology, f64)> = runs.iter().map(|(l, _, t)| (*l, *t)).collect();
        let span = self.pattern.len();
        if run_pairs.len() < span {
            return Vec::new();
        }
        let mut matches: Vec<RiverbedMatch> = (0..=run_pairs.len() - span)
            .filter_map(|start| {
                let structure = self.pattern.match_quality(&run_pairs, start);
                if structure < self.min_quality {
                    return None;
                }
                let top_ft = runs[start].1;
                let last = &runs[start + span - 1];
                let bottom_ft = last.1 + last.2;
                let gamma_mean = well.mean_gamma(top_ft, bottom_ft)?;
                let gamma_score = self.gamma.degree(gamma_mean);
                Some(RiverbedMatch {
                    run_index: start,
                    top_ft,
                    bottom_ft,
                    structure_score: structure,
                    gamma_score,
                    score: structure * gamma_score,
                })
            })
            .collect();
        matches.sort_by(|a, b| b.score.total_cmp(&a.score));
        matches
    }

    /// The best score for a well (0 when nothing clears the quality floor) —
    /// the per-well ranking key for top-K retrieval across an archive.
    pub fn well_score(&self, well: &WellLog) -> f64 {
        self.score_well(well)
            .first()
            .map(|m| m.score)
            .unwrap_or(0.0)
    }

    /// Cheap screening score from the well's lithology runs only (no gamma
    /// samples touched): an upper bound on [`RiverbedModel::well_score`],
    /// since the gamma degree can only shrink the product. Screening with
    /// it prunes wells soundly before reading their (much larger) traces.
    pub fn structure_upper_bound(&self, runs: &[(Lithology, f64)]) -> f64 {
        self.pattern.best_match(runs).map(|(_, q)| q).unwrap_or(0.0)
    }

    /// Progressive top-K well retrieval (the F4 pipeline as a library
    /// call): ranks wells by the lithology-level structural bound, reads
    /// gamma traces only while a bound can still beat the provisional
    /// K-th score, and returns `(well index, score)` pairs descending plus
    /// the number of traces actually read. Exact: equals exhaustive
    /// scoring (verified by tests), because the bound dominates the score.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn screened_top_k<'a, W>(&self, wells: W, k: usize) -> (Vec<(usize, f64)>, usize)
    where
        W: IntoIterator<Item = &'a WellLog>,
    {
        assert!(k > 0, "top-K needs k >= 1");
        let mut bounds: Vec<(usize, f64, &WellLog)> = wells
            .into_iter()
            .enumerate()
            .map(|(i, w)| {
                let runs: Vec<(Lithology, f64)> = w
                    .lithology_runs()
                    .iter()
                    .map(|(l, _, t)| (*l, *t))
                    .collect();
                (i, self.structure_upper_bound(&runs), w)
            })
            .collect();
        bounds.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        let mut scored: Vec<(usize, f64)> = Vec::new();
        let mut traces_read = 0usize;
        for (i, bound, well) in &bounds {
            let kth = if scored.len() >= k {
                scored[k - 1].1
            } else {
                f64::NEG_INFINITY
            };
            if *bound <= kth {
                break;
            }
            traces_read += 1;
            scored.push((*i, self.well_score(well)));
            scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        }
        scored.truncate(k);
        (scored, traces_read)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbir_archive::lithology::Layer;

    fn riverbed_layers() -> Vec<Layer> {
        vec![
            Layer {
                lithology: Lithology::Limestone,
                thickness_ft: 40.0,
            },
            Layer {
                lithology: Lithology::Shale,
                thickness_ft: 6.0,
            },
            Layer {
                lithology: Lithology::Sandstone,
                thickness_ft: 8.0,
            },
            Layer {
                lithology: Lithology::Siltstone,
                thickness_ft: 7.0,
            },
            Layer {
                lithology: Lithology::Limestone,
                thickness_ft: 60.0,
            },
        ]
    }

    #[test]
    fn perfect_riverbed_scores_high() {
        let well = WellLog::from_column("w", &riverbed_layers(), 121.0, 3);
        let model = RiverbedModel::paper();
        let matches = model.score_well(&well);
        assert!(!matches.is_empty());
        let best = &matches[0];
        assert_eq!(best.run_index, 1);
        assert!((best.structure_score - 1.0).abs() < 1e-9);
        assert!(best.gamma_score > 0.5, "mixed shale/sand gamma ~64 API");
        assert!(best.score > 0.5);
        assert!((best.top_ft - 40.0).abs() <= 0.5);
        assert!((best.bottom_ft - 61.0).abs() <= 0.5);
    }

    #[test]
    fn well_without_sequence_scores_zero() {
        let layers = vec![
            Layer {
                lithology: Lithology::Limestone,
                thickness_ft: 60.0,
            },
            Layer {
                lithology: Lithology::Sandstone,
                thickness_ft: 60.0,
            },
        ];
        let well = WellLog::from_column("w", &layers, 120.0, 5);
        assert_eq!(RiverbedModel::paper().well_score(&well), 0.0);
    }

    #[test]
    fn thick_beds_rank_below_thin_beds() {
        let mut thick = riverbed_layers();
        thick[1].thickness_ft = 25.0; // shale way over the 10 ft cap
        let thin_well = WellLog::from_column("thin", &riverbed_layers(), 121.0, 3);
        let thick_well = WellLog::from_column("thick", &thick, 140.0, 3);
        let model = RiverbedModel::paper();
        assert!(model.well_score(&thin_well) > model.well_score(&thick_well));
    }

    #[test]
    fn structure_bound_dominates_final_score() {
        let model = RiverbedModel::paper();
        for seed in 0..30 {
            let well = if seed % 3 == 0 {
                WellLog::synthetic_with_riverbed(seed, 400.0)
            } else {
                WellLog::synthetic(seed, 400.0)
            };
            let runs: Vec<(Lithology, f64)> = well
                .lithology_runs()
                .iter()
                .map(|(l, _, t)| (*l, *t))
                .collect();
            let bound = model.structure_upper_bound(&runs);
            let score = model.well_score(&well);
            assert!(
                bound >= score - 1e-9,
                "seed {seed}: bound {bound} < score {score}"
            );
        }
    }

    #[test]
    fn planted_wells_outrank_random_wells_on_average() {
        let model = RiverbedModel::paper();
        let planted: f64 = (0..10)
            .map(|s| model.well_score(&WellLog::synthetic_with_riverbed(s, 500.0)))
            .sum::<f64>()
            / 10.0;
        let random: f64 = (100..110)
            .map(|s| model.well_score(&WellLog::synthetic(s, 500.0)))
            .sum::<f64>()
            / 10.0;
        assert!(
            planted > random,
            "planted mean {planted} vs random mean {random}"
        );
    }

    #[test]
    fn screened_top_k_equals_exhaustive() {
        let model = RiverbedModel::paper();
        let wells: Vec<WellLog> = (0..40)
            .map(|i| {
                if i % 4 == 0 {
                    WellLog::synthetic_with_riverbed(i as u64, 400.0)
                } else {
                    WellLog::synthetic(i as u64, 400.0)
                }
            })
            .collect();
        for k in [1usize, 5, 12] {
            let (screened, traces_read) = model.screened_top_k(&wells, k);
            let mut exhaustive: Vec<(usize, f64)> = wells
                .iter()
                .enumerate()
                .map(|(i, w)| (i, model.well_score(w)))
                .collect();
            exhaustive.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
            exhaustive.truncate(k);
            for ((_, a), (_, b)) in screened.iter().zip(&exhaustive) {
                assert!((a - b).abs() < 1e-9, "k={k}");
            }
            assert!(traces_read <= wells.len());
        }
        // Small K leaves most traces unread.
        let (_, traces_read) = model.screened_top_k(&wells, 1);
        assert!(traces_read < wells.len(), "read {traces_read} of 40");
    }

    #[test]
    fn with_parameters_validates() {
        let p = SequencePattern::new(vec![SequenceElement::labelled(Lithology::Shale)]).unwrap();
        assert!(RiverbedModel::with_parameters(p, Membership::AtLeast(45.0), 1.5).is_err());
    }
}
