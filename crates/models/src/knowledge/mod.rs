//! Knowledge models: multi-modal rule structures over semantic abstractions
//! (paper §2.3 and Fig. 4).
//!
//! A knowledge model combines *structural* predicates (this on top of that,
//! adjacency within a tolerance) with *measurement* predicates (gamma ray
//! above a threshold) into a fuzzy score used for top-K retrieval. The
//! concrete instance shipped here is the geology riverbed model
//! ([`geology`]); the structural machinery ([`SequencePattern`]) is generic
//! over any labelled-run sequence.

pub mod geology;

use crate::error::ModelError;
use std::fmt;

/// One element of a vertical sequence pattern: a label plus optional
/// thickness constraints (in the run's length unit).
#[derive(Debug, Clone, PartialEq)]
pub struct SequenceElement<L> {
    /// Required label of the run.
    pub label: L,
    /// Maximum thickness, if constrained (e.g. "< 10 ft" beds).
    pub max_thickness: Option<f64>,
    /// Minimum thickness, if constrained.
    pub min_thickness: Option<f64>,
}

impl<L> SequenceElement<L> {
    /// An element constrained only by label.
    pub fn labelled(label: L) -> Self {
        SequenceElement {
            label,
            max_thickness: None,
            min_thickness: None,
        }
    }

    /// Adds an upper thickness bound (builder style).
    pub fn with_max_thickness(mut self, max: f64) -> Self {
        self.max_thickness = Some(max);
        self
    }

    /// Adds a lower thickness bound (builder style).
    pub fn with_min_thickness(mut self, min: f64) -> Self {
        self.min_thickness = Some(min);
        self
    }

    /// Whether a run `(label, thickness)` satisfies this element crisply.
    pub fn matches(&self, label: &L, thickness: f64) -> bool
    where
        L: PartialEq,
    {
        &self.label == label
            && self.max_thickness.map(|m| thickness <= m).unwrap_or(true)
            && self.min_thickness.map(|m| thickness >= m).unwrap_or(true)
    }
}

/// A consecutive-run sequence pattern ("shale on top of sandstone on top of
/// siltstone"): elements must match *adjacent* runs in order.
///
/// # Examples
///
/// ```
/// use mbir_models::knowledge::{SequenceElement, SequencePattern};
///
/// let pattern = SequencePattern::new(vec![
///     SequenceElement::labelled("shale"),
///     SequenceElement::labelled("sand"),
/// ])?;
/// let runs = [("mud", 3.0), ("shale", 5.0), ("sand", 8.0)];
/// assert_eq!(pattern.find_matches(&runs), vec![1]);
/// # Ok::<(), mbir_models::ModelError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SequencePattern<L> {
    elements: Vec<SequenceElement<L>>,
}

impl<L: PartialEq + fmt::Debug> SequencePattern<L> {
    /// Creates a pattern.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Empty`] for an empty element list.
    pub fn new(elements: Vec<SequenceElement<L>>) -> Result<Self, ModelError> {
        if elements.is_empty() {
            return Err(ModelError::Empty);
        }
        Ok(SequencePattern { elements })
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// Whether the pattern has no elements (never true once constructed).
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// The elements.
    pub fn elements(&self) -> &[SequenceElement<L>] {
        &self.elements
    }

    /// Start indexes of every crisp match against `(label, thickness)` runs.
    pub fn find_matches(&self, runs: &[(L, f64)]) -> Vec<usize> {
        if runs.len() < self.elements.len() {
            return Vec::new();
        }
        (0..=runs.len() - self.elements.len())
            .filter(|&start| {
                self.elements.iter().enumerate().all(|(j, e)| {
                    let (label, thickness) = &runs[start + j];
                    e.matches(label, *thickness)
                })
            })
            .collect()
    }

    /// Fuzzy match quality at `start`: the fraction of element constraints
    /// satisfied, with thickness violations scored by how close the run is
    /// to the bound (a 12 ft bed against a 10 ft cap scores 10/12). Label
    /// mismatches zero that element. The result is the mean element score —
    /// the "slightly different structure still ranks" semantics of §3.
    pub fn match_quality(&self, runs: &[(L, f64)], start: usize) -> f64 {
        if start + self.elements.len() > runs.len() {
            return 0.0;
        }
        let total: f64 = self
            .elements
            .iter()
            .enumerate()
            .map(|(j, e)| {
                let (label, thickness) = &runs[start + j];
                if &e.label != label {
                    return 0.0;
                }
                let mut s = 1.0f64;
                if let Some(max) = e.max_thickness {
                    if *thickness > max {
                        s = s.min(max / thickness);
                    }
                }
                if let Some(min) = e.min_thickness {
                    if *thickness < min {
                        s = s.min(thickness / min);
                    }
                }
                s
            })
            .sum();
        total / self.elements.len() as f64
    }

    /// The best fuzzy match over all start positions: `(start, quality)`.
    /// Returns `None` for a runs list shorter than the pattern.
    pub fn best_match(&self, runs: &[(L, f64)]) -> Option<(usize, f64)> {
        if runs.len() < self.elements.len() {
            return None;
        }
        (0..=runs.len() - self.elements.len())
            .map(|start| (start, self.match_quality(runs, start)))
            .max_by(|a, b| a.1.total_cmp(&b.1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shale_sand_silt() -> SequencePattern<&'static str> {
        SequencePattern::new(vec![
            SequenceElement::labelled("shale").with_max_thickness(10.0),
            SequenceElement::labelled("sand").with_max_thickness(10.0),
            SequenceElement::labelled("silt"),
        ])
        .unwrap()
    }

    #[test]
    fn crisp_match_requires_adjacency_and_thickness() {
        let p = shale_sand_silt();
        let good = [
            ("lime", 30.0),
            ("shale", 5.0),
            ("sand", 7.0),
            ("silt", 20.0),
        ];
        assert_eq!(p.find_matches(&good), vec![1]);
        let thick = [("shale", 15.0), ("sand", 7.0), ("silt", 20.0)];
        assert!(p.find_matches(&thick).is_empty());
        let gap = [("shale", 5.0), ("lime", 2.0), ("sand", 7.0), ("silt", 20.0)];
        assert!(p.find_matches(&gap).is_empty());
    }

    #[test]
    fn fuzzy_quality_degrades_gracefully() {
        let p = shale_sand_silt();
        let perfect = [("shale", 5.0), ("sand", 7.0), ("silt", 20.0)];
        assert!((p.match_quality(&perfect, 0) - 1.0).abs() < 1e-12);
        // 12 ft shale against a 10 ft cap: that element scores 10/12.
        let slightly_thick = [("shale", 12.0), ("sand", 7.0), ("silt", 20.0)];
        let q = p.match_quality(&slightly_thick, 0);
        let expected = (10.0 / 12.0 + 1.0 + 1.0) / 3.0;
        assert!((q - expected).abs() < 1e-12);
        // Wrong middle label zeroes one element.
        let wrong = [("shale", 5.0), ("lime", 7.0), ("silt", 20.0)];
        assert!((p.match_quality(&wrong, 0) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn best_match_scans_all_offsets() {
        let p = shale_sand_silt();
        let runs = [
            ("sand", 5.0),
            ("shale", 5.0),
            ("sand", 30.0), // too thick: partial credit
            ("silt", 4.0),
            ("shale", 6.0),
            ("sand", 6.0),
            ("silt", 9.0),
        ];
        let (start, q) = p.best_match(&runs).unwrap();
        assert_eq!(start, 4);
        assert!((q - 1.0).abs() < 1e-12);
        assert!(p.best_match(&runs[..2]).is_none());
    }

    #[test]
    fn min_thickness_constraint() {
        let e = SequenceElement::labelled("sand").with_min_thickness(5.0);
        assert!(e.matches(&"sand", 6.0));
        assert!(!e.matches(&"sand", 4.0));
        let p = SequencePattern::new(vec![e]).unwrap();
        let q = p.match_quality(&[("sand", 2.5)], 0);
        assert!((q - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_pattern_rejected() {
        assert!(SequencePattern::<&str>::new(vec![]).is_err());
    }
}
