#![warn(missing_docs)]
//! # mbir-models
//!
//! The three model families of the ICDCS 2000 paper (§2), each with a
//! progressive decomposition (§3.1):
//!
//! * [`linear`] — linear time-invariant models: ordinary least squares
//!   calibration (own dense [`linalg`]), the Hantavirus Pulmonary Syndrome
//!   risk model, the FICO credit-score model, and coefficient-ranked
//!   progressive stages with sound residual bounds.
//! * [`fsm`] — finite-state models: deterministic predicate machines, the
//!   fire-ants model of Fig. 1, event-stream runners, FSM similarity
//!   distance, and over-approximating coarsened machines for progressive
//!   screening.
//! * [`bayes`] + [`fuzzy`] + [`knowledge`] — Bayesian networks (exact
//!   inference, CPT learning), fuzzy memberships/rules, and multi-modal
//!   knowledge models (the high-risk-house network of Fig. 3 and the
//!   geology riverbed model of Fig. 4).
//!
//! ```
//! use mbir_models::linear::LinearModel;
//!
//! let model = LinearModel::new(vec![0.443, 0.222, 0.153, 0.183], 0.0).unwrap();
//! let risk = model.evaluate(&[0.5, 0.3, 0.2, 0.9]);
//! assert!(risk > 0.0);
//! ```

pub mod bayes;
pub mod error;
pub mod fsm;
pub mod fuzzy;
pub mod knowledge;
pub mod linalg;
pub mod linear;

pub use bayes::BayesNet;
pub use error::ModelError;
pub use fsm::Fsm;
pub use linear::{LinearModel, ProgressiveLinearModel};
