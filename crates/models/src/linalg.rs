//! Minimal dense linear algebra for model calibration.
//!
//! Ordinary least squares needs nothing beyond a dense matrix, a
//! transpose-product and a linear solve; implementing those here keeps the
//! workspace inside the allowed offline dependency set.

use crate::error::ModelError;
use std::fmt;

/// A dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero matrix.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from rows.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Empty`] for no rows and
    /// [`ModelError::ArityMismatch`] for ragged rows.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self, ModelError> {
        let first = rows.first().ok_or(ModelError::Empty)?;
        let cols = first.len();
        if cols == 0 {
            return Err(ModelError::Empty);
        }
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            if r.len() != cols {
                return Err(ModelError::ArityMismatch {
                    expected: cols,
                    actual: r.len(),
                });
            }
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// The identity matrix of size `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds indexes.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c]
    }

    /// Sets element `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds indexes.
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c] = v;
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t.set(c, r, self.get(r, c));
            }
        }
        t
    }

    /// Matrix product `self * other`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::ArityMismatch`] when inner dimensions differ.
    pub fn mul(&self, other: &Matrix) -> Result<Matrix, ModelError> {
        if self.cols != other.rows {
            return Err(ModelError::ArityMismatch {
                expected: self.cols,
                actual: other.rows,
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let v = self.get(r, k);
                if v == 0.0 {
                    continue;
                }
                for c in 0..other.cols {
                    out.set(r, c, out.get(r, c) + v * other.get(k, c));
                }
            }
        }
        Ok(out)
    }

    /// Matrix-vector product.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::ArityMismatch`] when lengths differ.
    pub fn mul_vec(&self, v: &[f64]) -> Result<Vec<f64>, ModelError> {
        if self.cols != v.len() {
            return Err(ModelError::ArityMismatch {
                expected: self.cols,
                actual: v.len(),
            });
        }
        Ok((0..self.rows)
            .map(|r| (0..self.cols).map(|c| self.get(r, c) * v[c]).sum())
            .collect())
    }

    /// Solves `self * x = b` by Gaussian elimination with partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::ArityMismatch`] for a non-square system or a
    /// wrong-length `b`, and [`ModelError::Singular`] when no unique
    /// solution exists.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, ModelError> {
        if self.rows != self.cols {
            return Err(ModelError::ArityMismatch {
                expected: self.rows,
                actual: self.cols,
            });
        }
        if b.len() != self.rows {
            return Err(ModelError::ArityMismatch {
                expected: self.rows,
                actual: b.len(),
            });
        }
        let n = self.rows;
        let mut a = self.data.clone();
        let mut x = b.to_vec();
        for col in 0..n {
            // Partial pivot.
            let pivot_row = (col..n)
                .max_by(|&i, &j| a[i * n + col].abs().total_cmp(&a[j * n + col].abs()))
                .expect("non-empty range");
            let pivot = a[pivot_row * n + col];
            if pivot.abs() < 1e-12 {
                return Err(ModelError::Singular);
            }
            if pivot_row != col {
                for k in 0..n {
                    a.swap(col * n + k, pivot_row * n + k);
                }
                x.swap(col, pivot_row);
            }
            for row in (col + 1)..n {
                let factor = a[row * n + col] / a[col * n + col];
                if factor == 0.0 {
                    continue;
                }
                for k in col..n {
                    a[row * n + k] -= factor * a[col * n + k];
                }
                x[row] -= factor * x[col];
            }
        }
        // Back substitution.
        for col in (0..n).rev() {
            let mut sum = x[col];
            for k in (col + 1)..n {
                sum -= a[col * n + k] * x[k];
            }
            x[col] = sum / a[col * n + col];
        }
        Ok(x)
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{}", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            for c in 0..self.cols.min(8) {
                write!(f, "{:>10.4} ", self.get(r, c))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn from_rows_validates() {
        assert!(matches!(Matrix::from_rows(&[]), Err(ModelError::Empty)));
        assert!(matches!(
            Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]),
            Err(ModelError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn mul_identity() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(m.mul(&Matrix::identity(2)).unwrap(), m);
        assert!(m.mul(&Matrix::identity(3)).is_err());
    }

    #[test]
    fn solve_known_system() {
        // 2x + y = 5; x - y = 1 -> x = 2, y = 1.
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, -1.0]]).unwrap();
        let x = a.solve(&[5.0, 1.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Leading zero forces a row swap.
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        let x = a.solve(&[3.0, 7.0]).unwrap();
        assert_eq!(x, vec![7.0, 3.0]);
    }

    #[test]
    fn solve_detects_singular() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]).unwrap();
        assert_eq!(a.solve(&[1.0, 2.0]), Err(ModelError::Singular));
    }

    #[test]
    fn solve_rejects_non_square() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0]]).unwrap();
        assert!(a.solve(&[1.0]).is_err());
    }

    #[test]
    fn display_shows_shape_and_entries() {
        let m = Matrix::from_rows(&[vec![1.5, -2.0]]).unwrap();
        let s = m.to_string();
        assert!(s.contains("1x2"));
        assert!(s.contains("1.5"));
        assert!(s.contains("-2.0"));
    }

    #[test]
    fn mul_vec_matches_manual() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![0.0, -1.0, 1.0]]).unwrap();
        let v = m.mul_vec(&[1.0, 1.0, 1.0]).unwrap();
        assert_eq!(v, vec![6.0, 0.0]);
        assert!(m.mul_vec(&[1.0]).is_err());
    }

    #[test]
    fn solve_larger_hilbert_like_system() {
        // Mildly ill-conditioned but solvable 5x5 system.
        let n = 5;
        let mut a = Matrix::zeros(n, n);
        for r in 0..n {
            for c in 0..n {
                a.set(
                    r,
                    c,
                    1.0 / (r + c + 1) as f64 + if r == c { 0.5 } else { 0.0 },
                );
            }
        }
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64) - 2.0).collect();
        let b = a.mul_vec(&x_true).unwrap();
        let x = a.solve(&b).unwrap();
        for (got, want) in x.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-8, "{got} vs {want}");
        }
    }

    proptest! {
        #[test]
        fn prop_solve_inverts_mul(
            diag in proptest::collection::vec(1.0f64..10.0, 2..6),
            off in proptest::collection::vec(-0.4f64..0.4, 36),
            x_true in proptest::collection::vec(-5.0f64..5.0, 2..6),
        ) {
            // Build a diagonally dominant (hence nonsingular) matrix.
            let n = diag.len().min(x_true.len());
            let mut a = Matrix::zeros(n, n);
            for r in 0..n {
                for c in 0..n {
                    if r == c {
                        a.set(r, c, diag[r] + 1.0);
                    } else {
                        a.set(r, c, off[(r * 6 + c) % off.len()] / n as f64);
                    }
                }
            }
            let x_true = &x_true[..n];
            let b = a.mul_vec(x_true).unwrap();
            let x = a.solve(&b).unwrap();
            for (xi, ti) in x.iter().zip(x_true) {
                prop_assert!((xi - ti).abs() < 1e-8, "{xi} vs {ti}");
            }
        }
    }
}
