//! Finite-state models (paper §2.2).
//!
//! A deterministic finite-state machine over an application-defined symbol
//! alphabet. The paper's finite-state models describe "complex behaviour"
//! of environmental phenomena — the canonical instance is the fire-ants
//! machine of Fig. 1 ([`fire_ants`]). Retrieval with an FSM model means
//! finding the data series (or locations) whose event streams drive the
//! machine into an accepting state; [`distance`] ranks near-misses when the
//! extracted machine differs slightly from the target (§3: "it is also
//! possible to define a distance between these two finite state machines").

pub mod distance;
pub mod fire_ants;
pub mod learn;

use crate::error::ModelError;
use std::collections::{BTreeSet, HashMap, HashSet};
use std::fmt;
use std::hash::Hash;

/// Identifier of a state within an [`Fsm`].
pub type StateId = usize;

/// A deterministic finite-state machine over symbols of type `S`.
///
/// Transitions are total over the alphabet passed to [`Fsm::validate`];
/// running with a symbol that has no transition is an error, which keeps
/// silent model mis-specification from producing wrong retrievals.
///
/// # Examples
///
/// ```
/// use mbir_models::fsm::Fsm;
///
/// let mut fsm: Fsm<char> = Fsm::new();
/// let s0 = fsm.add_state("even");
/// let s1 = fsm.add_state("odd");
/// fsm.set_start(s0).unwrap();
/// fsm.set_accepting(s1, true).unwrap();
/// fsm.add_transition(s0, 'a', s1).unwrap();
/// fsm.add_transition(s1, 'a', s0).unwrap();
/// assert!(fsm.accepts(&['a']).unwrap());
/// assert!(!fsm.accepts(&['a', 'a']).unwrap());
/// ```
#[derive(Debug, Clone)]
pub struct Fsm<S> {
    names: Vec<String>,
    transitions: HashMap<(StateId, S), StateId>,
    start: Option<StateId>,
    accepting: HashSet<StateId>,
}

impl<S: Copy + Eq + Hash> Fsm<S> {
    /// Creates an empty machine.
    pub fn new() -> Self {
        Fsm {
            names: Vec::new(),
            transitions: HashMap::new(),
            start: None,
            accepting: HashSet::new(),
        }
    }

    /// Adds a state, returning its id.
    pub fn add_state(&mut self, name: impl Into<String>) -> StateId {
        self.names.push(name.into());
        self.names.len() - 1
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.names.len()
    }

    /// Name of a state.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Unknown`] for an invalid id.
    pub fn state_name(&self, state: StateId) -> Result<&str, ModelError> {
        self.names
            .get(state)
            .map(String::as_str)
            .ok_or_else(|| ModelError::Unknown(format!("state {state}")))
    }

    /// Sets the start state.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Unknown`] for an invalid id.
    pub fn set_start(&mut self, state: StateId) -> Result<(), ModelError> {
        self.check_state(state)?;
        self.start = Some(state);
        Ok(())
    }

    /// Marks / unmarks a state accepting.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Unknown`] for an invalid id.
    pub fn set_accepting(&mut self, state: StateId, accepting: bool) -> Result<(), ModelError> {
        self.check_state(state)?;
        if accepting {
            self.accepting.insert(state);
        } else {
            self.accepting.remove(&state);
        }
        Ok(())
    }

    /// Whether a state is accepting.
    pub fn is_accepting(&self, state: StateId) -> bool {
        self.accepting.contains(&state)
    }

    /// The start state, if set.
    pub fn start(&self) -> Option<StateId> {
        self.start
    }

    /// Adds a transition `from --sym--> to`, replacing any existing one for
    /// `(from, sym)`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Unknown`] for invalid state ids.
    pub fn add_transition(&mut self, from: StateId, sym: S, to: StateId) -> Result<(), ModelError> {
        self.check_state(from)?;
        self.check_state(to)?;
        self.transitions.insert((from, sym), to);
        Ok(())
    }

    /// One deterministic step; `None` when no transition is defined.
    pub fn step(&self, state: StateId, sym: S) -> Option<StateId> {
        self.transitions.get(&(state, sym)).copied()
    }

    /// Checks the machine is runnable: start state set, and transitions
    /// total over `alphabet` from every state.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Empty`] with no states, or
    /// [`ModelError::Unknown`] naming the first missing transition.
    pub fn validate(&self, alphabet: &[S]) -> Result<(), ModelError>
    where
        S: fmt::Debug,
    {
        if self.names.is_empty() {
            return Err(ModelError::Empty);
        }
        if self.start.is_none() {
            return Err(ModelError::Unknown("start state not set".into()));
        }
        for state in 0..self.names.len() {
            for sym in alphabet {
                if !self.transitions.contains_key(&(state, *sym)) {
                    return Err(ModelError::Unknown(format!(
                        "missing transition from '{}' on {sym:?}",
                        self.names[state]
                    )));
                }
            }
        }
        Ok(())
    }

    /// Runs the machine over `input`, returning the state after each symbol.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Unknown`] when the start state is unset or a
    /// transition is missing.
    pub fn run(&self, input: &[S]) -> Result<Vec<StateId>, ModelError>
    where
        S: fmt::Debug,
    {
        let mut state = self
            .start
            .ok_or_else(|| ModelError::Unknown("start state not set".into()))?;
        let mut trace = Vec::with_capacity(input.len());
        for sym in input {
            state = self.step(state, *sym).ok_or_else(|| {
                ModelError::Unknown(format!(
                    "missing transition from '{}' on {sym:?}",
                    self.names[state]
                ))
            })?;
            trace.push(state);
        }
        Ok(trace)
    }

    /// Whether the machine ends in an accepting state on `input`.
    ///
    /// # Errors
    ///
    /// Propagates [`Fsm::run`] errors.
    pub fn accepts(&self, input: &[S]) -> Result<bool, ModelError>
    where
        S: fmt::Debug,
    {
        let trace = self.run(input)?;
        Ok(trace
            .last()
            .map(|s| self.is_accepting(*s))
            .unwrap_or_else(|| self.start.map(|s| self.is_accepting(s)).unwrap_or(false)))
    }

    /// Indexes of input positions at which the machine *enters* an accepting
    /// state (event detection semantics: position `i` means after consuming
    /// `input[i]`).
    ///
    /// # Errors
    ///
    /// Propagates [`Fsm::run`] errors.
    pub fn acceptance_events(&self, input: &[S]) -> Result<Vec<usize>, ModelError>
    where
        S: fmt::Debug,
    {
        let trace = self.run(input)?;
        let mut events = Vec::new();
        let mut prev_accepting = self.start.map(|s| self.is_accepting(s)).unwrap_or(false);
        for (i, state) in trace.iter().enumerate() {
            let now = self.is_accepting(*state);
            if now && !prev_accepting {
                events.push(i);
            }
            prev_accepting = now;
        }
        Ok(events)
    }

    /// Coarsens the machine by merging states into groups (`partition[s]` =
    /// group of state `s`), producing an NFA that **over-approximates** this
    /// machine's behaviour: every run of the DFA maps to a run of the NFA,
    /// so if the DFA can accept, the NFA can accept. Screening with the
    /// coarse machine therefore never causes false dismissals — the paper's
    /// progressive-model property.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::ArityMismatch`] when `partition.len()` differs
    /// from the state count, or [`ModelError::Unknown`] when the start state
    /// is unset.
    pub fn coarsen(&self, partition: &[usize]) -> Result<CoarseFsm<S>, ModelError> {
        if partition.len() != self.names.len() {
            return Err(ModelError::ArityMismatch {
                expected: self.names.len(),
                actual: partition.len(),
            });
        }
        let start = self
            .start
            .ok_or_else(|| ModelError::Unknown("start state not set".into()))?;
        let groups = partition.iter().copied().max().map(|m| m + 1).unwrap_or(0);
        let mut transitions: HashMap<(usize, S), BTreeSet<usize>> = HashMap::new();
        for ((from, sym), to) in &self.transitions {
            transitions
                .entry((partition[*from], *sym))
                .or_default()
                .insert(partition[*to]);
        }
        let accepting: HashSet<usize> = self.accepting.iter().map(|s| partition[*s]).collect();
        Ok(CoarseFsm {
            groups,
            transitions,
            start: partition[start],
            accepting,
        })
    }

    fn check_state(&self, state: StateId) -> Result<(), ModelError> {
        if state >= self.names.len() {
            return Err(ModelError::Unknown(format!("state {state}")));
        }
        Ok(())
    }
}

impl<S: Copy + Eq + Hash> Default for Fsm<S> {
    fn default() -> Self {
        Fsm::new()
    }
}

/// The nondeterministic coarsening of an [`Fsm`] (see [`Fsm::coarsen`]).
#[derive(Debug, Clone)]
pub struct CoarseFsm<S> {
    groups: usize,
    transitions: HashMap<(usize, S), BTreeSet<usize>>,
    start: usize,
    accepting: HashSet<usize>,
}

impl<S: Copy + Eq + Hash> CoarseFsm<S> {
    /// Number of groups (coarse states).
    pub fn group_count(&self) -> usize {
        self.groups
    }

    /// Whether the coarse machine *may* accept `input` (subset-construction
    /// run). `false` is a sound rejection of the underlying DFA.
    pub fn may_accept(&self, input: &[S]) -> bool {
        let mut current: BTreeSet<usize> = BTreeSet::from([self.start]);
        if input.is_empty() {
            return current.iter().any(|g| self.accepting.contains(g));
        }
        for sym in input {
            let mut next = BTreeSet::new();
            for g in &current {
                if let Some(tos) = self.transitions.get(&(*g, *sym)) {
                    next.extend(tos.iter().copied());
                }
            }
            if next.is_empty() {
                return false;
            }
            current = next;
        }
        current.iter().any(|g| self.accepting.contains(g))
    }

    /// Whether any prefix of `input` drives the coarse machine into an
    /// accepting group — the screening predicate for event detection.
    pub fn may_reach_accepting(&self, input: &[S]) -> bool {
        let mut current: BTreeSet<usize> = BTreeSet::from([self.start]);
        if current.iter().any(|g| self.accepting.contains(g)) {
            return true;
        }
        for sym in input {
            let mut next = BTreeSet::new();
            for g in &current {
                if let Some(tos) = self.transitions.get(&(*g, *sym)) {
                    next.extend(tos.iter().copied());
                }
            }
            if next.is_empty() {
                return false;
            }
            if next.iter().any(|g| self.accepting.contains(g)) {
                return true;
            }
            current = next;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Machine accepting strings with an odd number of 'a's (alphabet a, b).
    fn odd_a() -> Fsm<char> {
        let mut fsm = Fsm::new();
        let even = fsm.add_state("even");
        let odd = fsm.add_state("odd");
        fsm.set_start(even).unwrap();
        fsm.set_accepting(odd, true).unwrap();
        fsm.add_transition(even, 'a', odd).unwrap();
        fsm.add_transition(odd, 'a', even).unwrap();
        fsm.add_transition(even, 'b', even).unwrap();
        fsm.add_transition(odd, 'b', odd).unwrap();
        fsm
    }

    #[test]
    fn validate_catches_gaps() {
        let mut fsm: Fsm<char> = Fsm::new();
        assert_eq!(fsm.validate(&['a']), Err(ModelError::Empty));
        let s = fsm.add_state("s");
        assert!(fsm.validate(&['a']).is_err(), "no start");
        fsm.set_start(s).unwrap();
        assert!(matches!(fsm.validate(&['a']), Err(ModelError::Unknown(_))));
        fsm.add_transition(s, 'a', s).unwrap();
        assert!(fsm.validate(&['a']).is_ok());
    }

    #[test]
    fn run_and_accept() {
        let fsm = odd_a();
        fsm.validate(&['a', 'b']).unwrap();
        assert!(fsm.accepts(&['a']).unwrap());
        assert!(fsm.accepts(&['a', 'b', 'b']).unwrap());
        assert!(!fsm.accepts(&['a', 'a']).unwrap());
        assert!(!fsm.accepts(&[]).unwrap());
        assert!(fsm.run(&['z']).is_err());
    }

    #[test]
    fn acceptance_events_fire_on_entry_only() {
        let fsm = odd_a();
        // States after each symbol: a->odd(0), b->odd, a->even, a->odd(3).
        let events = fsm.acceptance_events(&['a', 'b', 'a', 'a']).unwrap();
        assert_eq!(events, vec![0, 3]);
    }

    #[test]
    fn invalid_ids_are_rejected() {
        let mut fsm: Fsm<char> = Fsm::new();
        let s = fsm.add_state("s");
        assert!(fsm.set_start(7).is_err());
        assert!(fsm.set_accepting(7, true).is_err());
        assert!(fsm.add_transition(s, 'a', 9).is_err());
        assert!(fsm.state_name(3).is_err());
        assert_eq!(fsm.state_name(s).unwrap(), "s");
    }

    #[test]
    fn coarsening_over_approximates() {
        let fsm = odd_a();
        // Merge both states into one group: the NFA may accept anything the
        // DFA accepts (and more).
        let coarse = fsm.coarsen(&[0, 0]).unwrap();
        assert_eq!(coarse.group_count(), 1);
        assert!(coarse.may_accept(&['a']));
        assert!(coarse.may_accept(&['a', 'a']), "over-approximation");
        // Identity partition is exact.
        let exact = fsm.coarsen(&[0, 1]).unwrap();
        assert!(exact.may_accept(&['a']));
        assert!(!exact.may_accept(&['a', 'a']));
    }

    #[test]
    fn coarsen_validates_partition() {
        let fsm = odd_a();
        assert!(fsm.coarsen(&[0]).is_err());
    }

    proptest! {
        #[test]
        fn prop_coarse_never_misses(input in proptest::collection::vec(prop::sample::select(vec!['a','b']), 0..30)) {
            let fsm = odd_a();
            // Every partition of 2 states into <=2 groups.
            for partition in [[0usize, 0], [0, 1]] {
                let coarse = fsm.coarsen(&partition).unwrap();
                if fsm.accepts(&input).unwrap() {
                    prop_assert!(coarse.may_accept(&input), "partition {partition:?} missed");
                }
                let events = fsm.acceptance_events(&input).unwrap();
                if !events.is_empty() {
                    prop_assert!(coarse.may_reach_accepting(&input));
                }
            }
        }
    }
}
