//! Distance between finite-state machines (paper §3):
//!
//! > "When the finite state machine extracted from the data is slightly
//! > different from the target finite state machine, it is also possible to
//! > define a distance between these two finite state machines based on
//! > their similarities."
//!
//! The distance implemented here is a *language* distance: the weighted
//! fraction of input strings (up to a length horizon) on which the two
//! machines disagree about acceptance, computed exactly by dynamic
//! programming over the product automaton. Weighting length `k` by `2^-k`
//! and normalizing yields a value in `[0, 1]` where 0 means the machines
//! agree on every string up to the horizon and 1 means they disagree on all
//! of them.

use crate::error::ModelError;
use crate::fsm::Fsm;
use std::collections::HashMap;
use std::fmt;
use std::hash::Hash;

/// Weighted language disagreement between two machines over `alphabet`,
/// considering strings of length `1..=max_len`.
///
/// # Errors
///
/// Returns [`ModelError::Unknown`] if either machine lacks a start state or
/// a transition over the alphabet, and [`ModelError::InvalidValue`] when
/// `max_len == 0` or the alphabet is empty.
///
/// # Examples
///
/// ```
/// use mbir_models::fsm::Fsm;
/// use mbir_models::fsm::distance::language_distance;
///
/// let make = |accept_odd: bool| {
///     let mut f: Fsm<char> = Fsm::new();
///     let e = f.add_state("e");
///     let o = f.add_state("o");
///     f.set_start(e).unwrap();
///     f.set_accepting(if accept_odd { o } else { e }, true).unwrap();
///     f.add_transition(e, 'a', o).unwrap();
///     f.add_transition(o, 'a', e).unwrap();
///     f
/// };
/// let d_same = language_distance(&make(true), &make(true), &['a'], 8).unwrap();
/// let d_diff = language_distance(&make(true), &make(false), &['a'], 8).unwrap();
/// assert_eq!(d_same, 0.0);
/// assert!(d_diff > 0.9); // they disagree on every string
/// ```
pub fn language_distance<S: Copy + Eq + Hash + fmt::Debug>(
    a: &Fsm<S>,
    b: &Fsm<S>,
    alphabet: &[S],
    max_len: usize,
) -> Result<f64, ModelError> {
    if max_len == 0 || alphabet.is_empty() {
        return Err(ModelError::InvalidValue(
            "need max_len >= 1 and a non-empty alphabet".into(),
        ));
    }
    a.validate(alphabet)?;
    b.validate(alphabet)?;
    let start = (a.start().expect("validated"), b.start().expect("validated"));

    let mut counts: HashMap<(usize, usize), f64> = HashMap::from([(start, 1.0)]);
    let sigma = alphabet.len() as f64;
    let mut weighted_disagree = 0.0;
    let mut weight_total = 0.0;
    let mut weight = 1.0;
    for _k in 1..=max_len {
        let mut next: HashMap<(usize, usize), f64> = HashMap::new();
        for ((sa, sb), n) in &counts {
            for sym in alphabet {
                let ta = a.step(*sa, *sym).expect("validated total");
                let tb = b.step(*sb, *sym).expect("validated total");
                *next.entry((ta, tb)).or_insert(0.0) += n;
            }
        }
        counts = next;
        let total: f64 = counts.values().sum();
        let disagree: f64 = counts
            .iter()
            .filter(|((sa, sb), _)| a.is_accepting(*sa) != b.is_accepting(*sb))
            .map(|(_, n)| n)
            .sum();
        weight /= 2.0;
        weighted_disagree += weight * disagree / total.max(sigma.powi(-1)); // total = sigma^k > 0
        weight_total += weight;
    }
    Ok(weighted_disagree / weight_total)
}

/// Structural (transition-set) similarity under the identity state mapping:
/// the Jaccard index of the two machines' transition sets plus agreement of
/// their accepting sets. Cheap, and appropriate when both machines were
/// built over the same state vocabulary (e.g. a calibrated variant of a
/// reference model). Returns a *distance* in `[0, 1]`.
pub fn structural_distance<S: Copy + Eq + Hash + fmt::Debug>(
    a: &Fsm<S>,
    b: &Fsm<S>,
    alphabet: &[S],
) -> f64 {
    let states = a.state_count().max(b.state_count());
    let mut shared = 0usize;
    let mut union = 0usize;
    for s in 0..states {
        for sym in alphabet {
            let ta = a.step(s, *sym);
            let tb = b.step(s, *sym);
            match (ta, tb) {
                (Some(x), Some(y)) if x == y => {
                    shared += 1;
                    union += 1;
                }
                (None, None) => {}
                _ => union += 1,
            }
        }
        let aa = a.is_accepting(s);
        let ba = b.is_accepting(s);
        if aa || ba {
            union += 1;
            if aa && ba {
                shared += 1;
            }
        }
    }
    if union == 0 {
        0.0
    } else {
        1.0 - shared as f64 / union as f64
    }
}

/// Ranks candidate machines by language distance to a target — the §3
/// retrieval semantics for finite-state models: "locate the top-K data
/// patterns that satisfy a model that can be described by a finite state
/// machine", tolerating machines "slightly different from the target".
/// Returns `(candidate index, distance)` ascending (best match first).
///
/// # Errors
///
/// Propagates [`language_distance`] errors (invalid machines or
/// parameters).
pub fn rank_by_similarity<S: Copy + Eq + Hash + fmt::Debug>(
    target: &Fsm<S>,
    candidates: &[Fsm<S>],
    alphabet: &[S],
    max_len: usize,
) -> Result<Vec<(usize, f64)>, ModelError> {
    let mut ranked: Vec<(usize, f64)> = candidates
        .iter()
        .enumerate()
        .map(|(i, c)| language_distance(target, c, alphabet, max_len).map(|d| (i, d)))
        .collect::<Result<_, _>>()?;
    ranked.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
    Ok(ranked)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fsm::fire_ants::{fire_ants_fsm, DayClass};

    fn mod_counter(modulus: usize, accept: usize) -> Fsm<char> {
        let mut f: Fsm<char> = Fsm::new();
        let states: Vec<_> = (0..modulus).map(|i| f.add_state(format!("s{i}"))).collect();
        f.set_start(states[0]).unwrap();
        f.set_accepting(states[accept], true).unwrap();
        for i in 0..modulus {
            f.add_transition(states[i], 'a', states[(i + 1) % modulus])
                .unwrap();
            f.add_transition(states[i], 'b', states[i]).unwrap();
        }
        f
    }

    #[test]
    fn identical_machines_have_zero_distance() {
        let m = mod_counter(3, 0);
        assert_eq!(language_distance(&m, &m, &['a', 'b'], 10).unwrap(), 0.0);
        assert_eq!(structural_distance(&m, &m, &['a', 'b']), 0.0);
    }

    #[test]
    fn distance_grows_with_disagreement() {
        let base = mod_counter(4, 0);
        let near = mod_counter(4, 1); // same structure, shifted accept
        let far = mod_counter(2, 1); // coarser period
        let d_near = language_distance(&base, &near, &['a', 'b'], 10).unwrap();
        let d_far = language_distance(&base, &far, &['a', 'b'], 10).unwrap();
        assert!(d_near > 0.0);
        assert!(d_far > 0.0);
        // mod-2 accepting odd disagrees with mod-4 accepting 0 on about half
        // the strings; mod-4 shifted accept also disagrees but both are
        // genuine distances in (0, 1].
        assert!(d_near <= 1.0 && d_far <= 1.0);
    }

    #[test]
    fn distance_is_symmetric() {
        let x = mod_counter(3, 1);
        let y = mod_counter(5, 2);
        let d_xy = language_distance(&x, &y, &['a', 'b'], 8).unwrap();
        let d_yx = language_distance(&y, &x, &['a', 'b'], 8).unwrap();
        assert!((d_xy - d_yx).abs() < 1e-12);
    }

    #[test]
    fn rejects_degenerate_parameters() {
        let m = mod_counter(2, 0);
        assert!(language_distance(&m, &m, &[], 5).is_err());
        assert!(language_distance(&m, &m, &['a'], 0).is_err());
    }

    #[test]
    fn ranking_orders_by_closeness_to_target() {
        let target = mod_counter(4, 0);
        let candidates = vec![
            mod_counter(2, 1), // far
            mod_counter(4, 0), // identical
            mod_counter(4, 1), // near (shifted accept)
        ];
        let ranked = rank_by_similarity(&target, &candidates, &['a', 'b'], 8).unwrap();
        assert_eq!(ranked[0].0, 1, "identical machine ranks first");
        assert_eq!(ranked[0].1, 0.0);
        assert!(ranked[1].1 <= ranked[2].1);
        // Empty candidate list is fine.
        assert!(rank_by_similarity(&target, &[], &['a', 'b'], 8)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn ranking_retrieves_regions_with_fire_ant_dynamics() {
        // Three "regions" whose behaviour was abstracted into machines: one
        // true fire-ants machine, one variant, one unrelated parity machine
        // over the same alphabet. The target retrieval must order them
        // true < variant < unrelated.
        let (truth, _) = fire_ants_fsm();
        let (variant, states) = {
            let (mut m, s) = fire_ants_fsm();
            m.add_transition(s.dry1, DayClass::DryWarm, s.fly).unwrap();
            (m, s)
        };
        let _ = states;
        let mut unrelated: Fsm<DayClass> = Fsm::new();
        let a = unrelated.add_state("a");
        let b = unrelated.add_state("b");
        unrelated.set_start(a).unwrap();
        unrelated.set_accepting(b, true).unwrap();
        for sym in DayClass::ALPHABET {
            unrelated.add_transition(a, sym, b).unwrap();
            unrelated.add_transition(b, sym, a).unwrap();
        }
        let candidates = vec![unrelated, variant, truth.clone()];
        let ranked = rank_by_similarity(&truth, &candidates, &DayClass::ALPHABET, 10).unwrap();
        assert_eq!(ranked[0].0, 2, "the true machine first");
        assert_eq!(ranked[1].0, 1, "the near-variant second");
        assert_eq!(ranked[2].0, 0, "the unrelated machine last");
    }

    #[test]
    fn fire_ants_variant_distance_is_small() {
        // A mis-specified fire-ants machine requiring only 2 dry days is
        // close to, but distinct from, the true machine.
        let (truth, _) = fire_ants_fsm();
        let (mut variant, states) = fire_ants_fsm();
        // Short-circuit: from dry-1, a warm dry day already triggers a fly.
        variant
            .add_transition(states.dry1, DayClass::DryWarm, states.fly)
            .unwrap();
        let d = language_distance(&truth, &variant, &DayClass::ALPHABET, 10).unwrap();
        assert!(d > 0.0, "variant must be distinguishable");
        assert!(d < 0.3, "but still close, got {d}");
        let s = structural_distance(&truth, &variant, &DayClass::ALPHABET);
        assert!(s > 0.0 && s < 0.2, "one changed edge, got {s}");
    }
}
