//! The fire-ants finite-state model of paper Fig. 1.
//!
//! "The fire ants of a region will fly if the region has some rain fall, and
//! then remain dry for at least three days. In addition, the temperature
//! needs to reach 25 degrees Celsius or higher for that region."
//!
//! States (as drawn): Rain, Dry-for-one-day, Dry-for-two-days,
//! Dry-for-three-days-or-more, Fire-Ants-Fly. Transitions consume one
//! classified day: `Rains`, `No rain, T >= 25`, `No rain, T < 25`.
//!
//! Besides the exact machine, this module provides the progressive pieces:
//! a coarse state partition for [`super::Fsm::coarsen`]-based screening and
//! a block-summary screen ([`BlockSummary`]) that decides from aggregate
//! (coarse-resolution) weather whether a region can possibly have a fly
//! event — a *necessary* condition, so screening never drops a true event.

use crate::error::ModelError;
use crate::fsm::{Fsm, StateId};
use mbir_archive::series::TimeSeries;
use mbir_archive::weather::WeatherDay;
use std::fmt;

/// One day of weather classified into the fire-ants alphabet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DayClass {
    /// Any rainfall.
    Rains,
    /// No rain, temperature at or above 25 °C.
    DryWarm,
    /// No rain, temperature below 25 °C.
    DryCool,
}

impl DayClass {
    /// The full alphabet.
    pub const ALPHABET: [DayClass; 3] = [DayClass::Rains, DayClass::DryWarm, DayClass::DryCool];

    /// Classifies a weather day.
    pub fn of(day: &WeatherDay) -> Self {
        if day.rained() {
            DayClass::Rains
        } else if day.warm() {
            DayClass::DryWarm
        } else {
            DayClass::DryCool
        }
    }
}

impl fmt::Display for DayClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            DayClass::Rains => "rains",
            DayClass::DryWarm => "dry T>=25",
            DayClass::DryCool => "dry T<25",
        };
        f.write_str(name)
    }
}

/// The state ids of the fire-ants machine, in construction order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FireAntStates {
    /// "Rain" state.
    pub rain: StateId,
    /// "Dry for one day".
    pub dry1: StateId,
    /// "Dry for two days".
    pub dry2: StateId,
    /// "Dry for three days or more".
    pub dry3_plus: StateId,
    /// "Fire ants fly" (accepting).
    pub fly: StateId,
}

/// Builds the Fig. 1 machine. Returns the machine and its named states.
///
/// The start state is `Rain`-pending: we start in `dry3_plus`-like neutral?
/// No — the figure's entry is the `Rain` state: a fly event requires rain
/// first, so before any rain the machine idles in a pre-rain loop. We model
/// that by starting in `dry3_plus` with no fly transition armed... — see
/// the transition table below: the machine starts in `Dry-3+` but `Fly` is
/// reachable only *after* visiting `Rain`, which is encoded by `Dry-3+`
/// (pre-rain) not offering a warm-day fly edge. Instead of a sixth state we
/// start in `Rain` only when the first rain arrives; concretely the start
/// state is a neutral interpretation of `Dry-3+` **without** fly edges:
/// that needs a distinct state, so the machine has six states, the sixth
/// being `idle` (never rained yet).
pub fn fire_ants_fsm() -> (Fsm<DayClass>, FireAntStates) {
    let mut fsm = Fsm::new();
    let idle = fsm.add_state("idle (no rain yet)");
    let rain = fsm.add_state("rain");
    let dry1 = fsm.add_state("dry for one day");
    let dry2 = fsm.add_state("dry for two days");
    let dry3_plus = fsm.add_state("dry for three days or more");
    let fly = fsm.add_state("fire ants fly");
    fsm.set_start(idle).expect("state exists");
    fsm.set_accepting(fly, true).expect("state exists");

    let t = |fsm: &mut Fsm<DayClass>, from, sym, to| {
        fsm.add_transition(from, sym, to).expect("states exist");
    };
    // Idle: wait for the first rain.
    t(&mut fsm, idle, DayClass::Rains, rain);
    t(&mut fsm, idle, DayClass::DryWarm, idle);
    t(&mut fsm, idle, DayClass::DryCool, idle);
    // Rain: stays while raining, first dry day moves to dry-1.
    t(&mut fsm, rain, DayClass::Rains, rain);
    t(&mut fsm, rain, DayClass::DryWarm, dry1);
    t(&mut fsm, rain, DayClass::DryCool, dry1);
    // Dry-1: rain resets; second dry day moves on.
    t(&mut fsm, dry1, DayClass::Rains, rain);
    t(&mut fsm, dry1, DayClass::DryWarm, dry2);
    t(&mut fsm, dry1, DayClass::DryCool, dry2);
    // Dry-2: a third dry day completes the dry spell — warm triggers the
    // flight (Fig. 1's "No rain T>25" edge into Fly), cool parks in dry-3+.
    t(&mut fsm, dry2, DayClass::Rains, rain);
    t(&mut fsm, dry2, DayClass::DryWarm, fly);
    t(&mut fsm, dry2, DayClass::DryCool, dry3_plus);
    // Dry-3+: waits for a warm day; rain resets.
    t(&mut fsm, dry3_plus, DayClass::Rains, rain);
    t(&mut fsm, dry3_plus, DayClass::DryWarm, fly);
    t(&mut fsm, dry3_plus, DayClass::DryCool, dry3_plus);
    // Fly: a new cycle needs new rain.
    t(&mut fsm, fly, DayClass::Rains, rain);
    t(&mut fsm, fly, DayClass::DryWarm, fly);
    t(&mut fsm, fly, DayClass::DryCool, fly);

    (
        fsm,
        FireAntStates {
            rain,
            dry1,
            dry2,
            dry3_plus,
            fly,
        },
    )
}

/// A coarse 4-group partition (idle | rain | dry* merged | fly) for
/// [`Fsm::coarsen`]: a cheap screening automaton with the
/// over-approximation guarantee. The accepting state keeps its own group —
/// merging it into the dry group would make every post-rain dry day look
/// accepting and destroy the screen's pruning power.
pub fn coarse_partition() -> Vec<usize> {
    // idle, rain, dry1, dry2, dry3+, fly
    vec![0, 1, 2, 2, 2, 3]
}

/// Classifies a weather series into the fire-ants alphabet.
pub fn classify_series(series: &TimeSeries<WeatherDay>) -> Vec<DayClass> {
    series.values().iter().map(DayClass::of).collect()
}

/// Detects fly events: the day numbers at which the machine enters `Fly`.
///
/// # Errors
///
/// Propagates machine-run errors (cannot occur for the built-in machine,
/// whose transition table is total).
pub fn detect_fly_days(series: &TimeSeries<WeatherDay>) -> Result<Vec<i64>, ModelError> {
    let (fsm, _) = fire_ants_fsm();
    let symbols = classify_series(series);
    let events = fsm.acceptance_events(&symbols)?;
    Ok(events.into_iter().map(|i| series.day_of(i)).collect())
}

/// Aggregate summary of a block of consecutive days, composable across
/// blocks — the coarse-resolution representation used to screen regions
/// without reading their daily series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockSummary {
    /// Days in the block.
    pub days: usize,
    /// Whether any day had rain.
    pub any_rain: bool,
    /// Maximum temperature over the block.
    pub max_temp_c: f64,
    /// Longest run of dry days fully inside the block.
    pub longest_dry_run: usize,
    /// Length of the dry prefix (dry days before the first rain).
    pub dry_prefix: usize,
    /// Length of the dry suffix (dry days after the last rain).
    pub dry_suffix: usize,
}

impl BlockSummary {
    /// Summarizes a slice of days.
    ///
    /// # Panics
    ///
    /// Panics on an empty slice.
    pub fn of(days: &[WeatherDay]) -> Self {
        assert!(!days.is_empty(), "block must be non-empty");
        let mut longest = 0usize;
        let mut current = 0usize;
        let mut max_temp = f64::NEG_INFINITY;
        let mut any_rain = false;
        for d in days {
            max_temp = max_temp.max(d.temp_c);
            if d.rained() {
                any_rain = true;
                current = 0;
            } else {
                current += 1;
                longest = longest.max(current);
            }
        }
        let dry_suffix = current;
        let dry_prefix = days.iter().take_while(|d| !d.rained()).count();
        BlockSummary {
            days: days.len(),
            any_rain,
            max_temp_c: max_temp,
            longest_dry_run: longest,
            dry_prefix,
            dry_suffix,
        }
    }

    /// Composes two adjacent blocks (self followed by `next`), preserving
    /// the exactness of the dry-run statistics.
    pub fn merge(&self, next: &BlockSummary) -> BlockSummary {
        let bridged = self.dry_suffix + next.dry_prefix;
        BlockSummary {
            days: self.days + next.days,
            any_rain: self.any_rain || next.any_rain,
            max_temp_c: self.max_temp_c.max(next.max_temp_c),
            longest_dry_run: self.longest_dry_run.max(next.longest_dry_run).max(bridged),
            dry_prefix: if self.any_rain {
                self.dry_prefix
            } else {
                self.days + next.dry_prefix
            },
            dry_suffix: if next.any_rain {
                next.dry_suffix
            } else {
                next.days + self.dry_suffix
            },
        }
    }
}

/// The coarse screen: whether a region summarized by `summary` can possibly
/// contain a fly event. The conditions (some rain, a >= 3-day dry run, and
/// a day reaching 25 °C) are each *necessary* for a fly event, so a `false`
/// here soundly prunes the region; a `true` sends it to full FSM refinement.
pub fn may_have_fly_event(summary: &BlockSummary) -> bool {
    summary.any_rain && summary.longest_dry_run >= 3 && summary.max_temp_c >= 25.0
}

/// Work accounting for a screened multi-region detection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ScreenStats {
    /// Regions in the archive.
    pub regions: usize,
    /// Regions pruned by the coarse summary.
    pub screened_out: usize,
    /// Daily readings consumed by full FSM runs.
    pub readings_processed: u64,
    /// Daily readings a screen-less run would have consumed.
    pub readings_total: u64,
}

impl ScreenStats {
    /// The "data touched" speedup of screening (≥ 1).
    pub fn speedup(&self) -> f64 {
        if self.readings_processed == 0 {
            return 1.0;
        }
        self.readings_total as f64 / self.readings_processed as f64
    }
}

/// Progressive multi-region fly detection (the F1 pipeline as a library
/// call): screens every region with composable `block_days`-sized
/// summaries, runs the exact Fig. 1 machine only on survivors, and returns
/// per-region fly days plus work accounting. Pruned regions report no
/// events — soundly, since the screen is a necessary condition (verified
/// by the equivalence test against unscreened detection).
///
/// # Errors
///
/// Propagates machine-run errors; returns [`ModelError::InvalidValue`]
/// when `block_days == 0`.
pub fn screened_fly_detection(
    regions: &[TimeSeries<WeatherDay>],
    block_days: usize,
) -> Result<(Vec<Vec<i64>>, ScreenStats), ModelError> {
    if block_days == 0 {
        return Err(ModelError::InvalidValue("block_days must be >= 1".into()));
    }
    let mut stats = ScreenStats {
        regions: regions.len(),
        ..ScreenStats::default()
    };
    let mut events = Vec::with_capacity(regions.len());
    for series in regions {
        stats.readings_total += series.len() as u64;
        let summary = series
            .values()
            .chunks(block_days)
            .map(BlockSummary::of)
            .reduce(|a, b| a.merge(&b))
            .expect("series are non-empty by construction");
        if !may_have_fly_event(&summary) {
            stats.screened_out += 1;
            events.push(Vec::new());
            continue;
        }
        stats.readings_processed += series.len() as u64;
        events.push(detect_fly_days(series)?);
    }
    Ok((events, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbir_archive::weather::WeatherGenerator;

    fn day(rain: f64, temp: f64) -> WeatherDay {
        WeatherDay {
            rain_mm: rain,
            temp_c: temp,
        }
    }

    #[test]
    fn machine_is_total_over_alphabet() {
        let (fsm, _) = fire_ants_fsm();
        fsm.validate(&DayClass::ALPHABET).unwrap();
    }

    #[test]
    fn textbook_sequence_fires_on_third_warm_dry_day() {
        let days = vec![
            day(5.0, 20.0), // rain
            day(0.0, 22.0), // dry 1 (cool)
            day(0.0, 24.0), // dry 2 (cool)
            day(0.0, 26.0), // dry 3, warm -> FLY
        ];
        let series = TimeSeries::new(100, 1, days).unwrap();
        let events = detect_fly_days(&series).unwrap();
        assert_eq!(events, vec![103]);
    }

    #[test]
    fn no_rain_means_no_flight_even_if_warm_and_dry() {
        let days = vec![day(0.0, 30.0); 10];
        let series = TimeSeries::new(0, 1, days).unwrap();
        assert!(detect_fly_days(&series).unwrap().is_empty());
    }

    #[test]
    fn rain_resets_the_dry_counter() {
        let days = vec![
            day(5.0, 20.0), // rain
            day(0.0, 26.0), // dry 1
            day(0.0, 26.0), // dry 2
            day(2.0, 26.0), // rain again — reset
            day(0.0, 26.0), // dry 1
            day(0.0, 26.0), // dry 2
            day(0.0, 26.0), // dry 3 warm -> FLY (day 6)
        ];
        let series = TimeSeries::new(0, 1, days).unwrap();
        assert_eq!(detect_fly_days(&series).unwrap(), vec![6]);
    }

    #[test]
    fn cool_third_day_defers_until_first_warm_day() {
        let days = vec![
            day(5.0, 20.0), // rain
            day(0.0, 20.0), // dry 1
            day(0.0, 20.0), // dry 2
            day(0.0, 20.0), // dry 3 cool -> dry3+
            day(0.0, 20.0), // dry 4 cool -> dry3+
            day(0.0, 28.0), // warm -> FLY (day 5)
        ];
        let series = TimeSeries::new(0, 1, days).unwrap();
        assert_eq!(detect_fly_days(&series).unwrap(), vec![5]);
    }

    #[test]
    fn repeated_cycles_fire_repeatedly() {
        let cycle = vec![
            day(5.0, 20.0),
            day(0.0, 26.0),
            day(0.0, 26.0),
            day(0.0, 26.0), // fly
        ];
        let mut days = cycle.clone();
        days.extend(cycle);
        let series = TimeSeries::new(0, 1, days).unwrap();
        assert_eq!(detect_fly_days(&series).unwrap(), vec![3, 7]);
    }

    #[test]
    fn block_summary_composes_exactly() {
        let generator = WeatherGenerator::new(42);
        let series = generator.generate(0, 365);
        let whole = BlockSummary::of(series.values());
        // Compose from 30-day blocks.
        let composed = series
            .values()
            .chunks(30)
            .map(BlockSummary::of)
            .reduce(|a, b| a.merge(&b))
            .unwrap();
        assert_eq!(whole, composed);
    }

    #[test]
    fn screen_is_a_necessary_condition() {
        // Over many seeds: whenever the full FSM finds a fly event, the
        // screen must pass.
        for seed in 0..40 {
            let series = WeatherGenerator::new(seed)
                .with_temperature(22.0, 8.0, 2.0)
                .generate(0, 365);
            let events = detect_fly_days(&series).unwrap();
            let summary = BlockSummary::of(series.values());
            if !events.is_empty() {
                assert!(
                    may_have_fly_event(&summary),
                    "seed {seed}: screen dropped a region with {} events",
                    events.len()
                );
            }
        }
    }

    #[test]
    fn screen_rejects_impossible_regions() {
        // Cold region: never reaches 25 C.
        let series = WeatherGenerator::new(1)
            .with_temperature(5.0, 5.0, 1.0)
            .generate(0, 365);
        let summary = BlockSummary::of(series.values());
        assert!(!may_have_fly_event(&summary));
        assert!(detect_fly_days(&series).unwrap().is_empty());
    }

    #[test]
    fn screened_detection_equals_unscreened() {
        let regions: Vec<_> = (0..60u64)
            .map(|seed| {
                WeatherGenerator::new(seed)
                    .with_temperature(6.0 + (seed % 15) as f64 * 1.5, 8.0, 2.0)
                    .generate(0, 365)
            })
            .collect();
        let (events, stats) = screened_fly_detection(&regions, 30).unwrap();
        assert_eq!(events.len(), regions.len());
        for (series, got) in regions.iter().zip(&events) {
            assert_eq!(*got, detect_fly_days(series).unwrap());
        }
        assert!(stats.screened_out > 0, "cold regions should be pruned");
        assert!(stats.speedup() > 1.0);
        assert_eq!(stats.regions, 60);
        assert_eq!(stats.readings_total, 60 * 365);
    }

    #[test]
    fn screened_detection_validates_block_size() {
        let region = WeatherGenerator::new(1).generate(0, 30);
        assert!(matches!(
            screened_fly_detection(&[region], 0),
            Err(ModelError::InvalidValue(_))
        ));
        // Empty archive is fine.
        let (events, stats) = screened_fly_detection(&[], 30).unwrap();
        assert!(events.is_empty());
        assert_eq!(stats.speedup(), 1.0);
    }

    #[test]
    fn coarse_fsm_partition_screens_soundly() {
        let (fsm, _) = fire_ants_fsm();
        let coarse = fsm.coarsen(&coarse_partition()).unwrap();
        for seed in 0..20 {
            let series = WeatherGenerator::new(seed).generate(0, 200);
            let symbols = classify_series(&series);
            let events = fsm.acceptance_events(&symbols).unwrap();
            if !events.is_empty() {
                assert!(coarse.may_reach_accepting(&symbols), "seed {seed}");
            }
        }
    }
}
