//! Learning finite-state machines from data.
//!
//! §3 anticipates machines "extracted from the data" that are "slightly
//! different from the target finite state machine" and then compared by
//! distance. This module provides the extraction step: given traces of
//! `(symbol, resulting state-label)` observations — the form event
//! annotation tools produce — it reconstructs a deterministic machine by
//! majority vote over observed transitions, then [`super::distance`] ranks
//! it against reference machines.

use crate::error::ModelError;
use crate::fsm::Fsm;
use std::collections::HashMap;
use std::fmt;
use std::hash::Hash;

/// One observed trace: the starting state label, then `(symbol, next state
/// label)` steps.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace<S> {
    /// Label of the state the trace starts in.
    pub start: String,
    /// Consecutive `(input symbol, resulting state label)` observations.
    pub steps: Vec<(S, String)>,
}

/// Learns a DFA from labelled traces.
///
/// States are created for every label seen; for each `(state, symbol)` the
/// *most frequently observed* successor wins (majority vote, ties broken by
/// label order, so learning is deterministic). States named in
/// `accepting` are marked accepting.
///
/// # Errors
///
/// Returns [`ModelError::InsufficientData`] for no traces and
/// [`ModelError::Unknown`] when an accepting label never appears.
///
/// # Examples
///
/// ```
/// use mbir_models::fsm::learn::{learn_fsm, Trace};
///
/// let traces = vec![Trace {
///     start: "even".into(),
///     steps: vec![('a', "odd".into()), ('a', "even".into())],
/// }];
/// let fsm = learn_fsm(&traces, &["odd"]).unwrap();
/// assert!(fsm.accepts(&['a']).unwrap());
/// assert!(!fsm.accepts(&['a', 'a']).unwrap());
/// ```
pub fn learn_fsm<S: Copy + Eq + Hash + fmt::Debug>(
    traces: &[Trace<S>],
    accepting: &[&str],
) -> Result<Fsm<S>, ModelError> {
    if traces.is_empty() {
        return Err(ModelError::InsufficientData {
            samples: 0,
            parameters: 1,
        });
    }
    // Collect state labels in first-seen order.
    let mut labels: Vec<String> = Vec::new();
    let mut index: HashMap<String, usize> = HashMap::new();
    let intern = |label: &str, labels: &mut Vec<String>, index: &mut HashMap<String, usize>| {
        if let Some(&i) = index.get(label) {
            return i;
        }
        let i = labels.len();
        labels.push(label.to_owned());
        index.insert(label.to_owned(), i);
        i
    };
    // Count observed transitions.
    let mut counts: HashMap<(usize, S, usize), usize> = HashMap::new();
    let mut start_state: Option<usize> = None;
    for trace in traces {
        let mut state = intern(&trace.start, &mut labels, &mut index);
        if start_state.is_none() {
            start_state = Some(state);
        }
        for (sym, next_label) in &trace.steps {
            let next = intern(next_label, &mut labels, &mut index);
            *counts.entry((state, *sym, next)).or_insert(0) += 1;
            state = next;
        }
    }

    let mut fsm: Fsm<S> = Fsm::new();
    for label in &labels {
        fsm.add_state(label.clone());
    }
    fsm.set_start(start_state.expect("at least one trace"))
        .expect("state exists");
    for acc in accepting {
        let id = index.get(*acc).ok_or_else(|| {
            ModelError::Unknown(format!("accepting label '{acc}' never observed"))
        })?;
        fsm.set_accepting(*id, true).expect("state exists");
    }
    // Majority vote per (state, symbol).
    let mut votes: HashMap<(usize, S), Vec<(usize, usize)>> = HashMap::new();
    for ((from, sym, to), n) in counts {
        votes.entry((from, sym)).or_default().push((to, n));
    }
    for ((from, sym), mut options) in votes {
        options.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let winner = options[0].0;
        fsm.add_transition(from, sym, winner).expect("states exist");
    }
    Ok(fsm)
}

/// Generates traces by running a (total) machine over input sequences —
/// the synthetic "annotation tool" used by tests and experiments.
///
/// # Errors
///
/// Propagates machine-run errors (missing transitions).
pub fn traces_of<S: Copy + Eq + Hash + fmt::Debug>(
    fsm: &Fsm<S>,
    inputs: &[Vec<S>],
) -> Result<Vec<Trace<S>>, ModelError> {
    let start = fsm
        .start()
        .ok_or_else(|| ModelError::Unknown("start state not set".into()))?;
    inputs
        .iter()
        .map(|input| {
            let states = fsm.run(input)?;
            let steps = input
                .iter()
                .zip(&states)
                .map(|(sym, state)| Ok((*sym, fsm.state_name(*state)?.to_owned())))
                .collect::<Result<Vec<_>, ModelError>>()?;
            Ok(Trace {
                start: fsm.state_name(start)?.to_owned(),
                steps,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fsm::distance::language_distance;
    use crate::fsm::fire_ants::{classify_series, fire_ants_fsm, DayClass};
    use mbir_archive::weather::WeatherGenerator;

    #[test]
    fn learn_rejects_empty_and_unknown_labels() {
        assert!(matches!(
            learn_fsm::<char>(&[], &[]),
            Err(ModelError::InsufficientData { .. })
        ));
        let traces = vec![Trace {
            start: "a".into(),
            steps: vec![('x', "a".into())],
        }];
        assert!(matches!(
            learn_fsm(&traces, &["ghost"]),
            Err(ModelError::Unknown(_))
        ));
    }

    #[test]
    fn relearns_parity_machine_exactly() {
        // Build parity ground truth, emit traces, learn, compare languages.
        let mut truth: Fsm<char> = Fsm::new();
        let even = truth.add_state("even");
        let odd = truth.add_state("odd");
        truth.set_start(even).unwrap();
        truth.set_accepting(odd, true).unwrap();
        truth.add_transition(even, 'a', odd).unwrap();
        truth.add_transition(odd, 'a', even).unwrap();
        truth.add_transition(even, 'b', even).unwrap();
        truth.add_transition(odd, 'b', odd).unwrap();

        let inputs: Vec<Vec<char>> = (0..20)
            .map(|i| {
                (0..10)
                    .map(|j| if (i * 7 + j * 3) % 2 == 0 { 'a' } else { 'b' })
                    .collect()
            })
            .collect();
        let traces = traces_of(&truth, &inputs).unwrap();
        let learned = learn_fsm(&traces, &["odd"]).unwrap();
        let d = language_distance(&truth, &learned, &['a', 'b'], 8).unwrap();
        assert_eq!(d, 0.0, "learned machine must match the truth's language");
    }

    #[test]
    fn relearns_fire_ants_machine_from_weather_traces() {
        let (truth, _) = fire_ants_fsm();
        let inputs: Vec<Vec<DayClass>> = (0..30)
            .map(|seed| {
                classify_series(
                    &WeatherGenerator::new(seed)
                        .with_temperature(20.0, 9.0, 2.5)
                        .generate(0, 365),
                )
            })
            .collect();
        let traces = traces_of(&truth, &inputs).unwrap();
        let learned = learn_fsm(&traces, &["fire ants fly"]).unwrap();
        // The learned machine may miss never-observed transitions, so
        // compare behaviour on held-out data instead of structure.
        for seed in 100..120u64 {
            let symbols = classify_series(
                &WeatherGenerator::new(seed)
                    .with_temperature(20.0, 9.0, 2.5)
                    .generate(0, 200),
            );
            let truth_events = truth.acceptance_events(&symbols).unwrap();
            match learned.acceptance_events(&symbols) {
                Ok(events) => assert_eq!(events, truth_events, "seed {seed}"),
                // A missing transition is possible on held-out data;
                // the training climate makes it unlikely but tolerable.
                Err(ModelError::Unknown(_)) => {}
                Err(other) => panic!("unexpected error {other}"),
            }
        }
    }

    #[test]
    fn majority_vote_resolves_noisy_observations() {
        // Two traces disagree on (s0, 'x'): the 2-vote successor wins.
        let traces = vec![
            Trace {
                start: "s0".into(),
                steps: vec![('x', "s1".into())],
            },
            Trace {
                start: "s0".into(),
                steps: vec![('x', "s1".into())],
            },
            Trace {
                start: "s0".into(),
                steps: vec![('x', "s2".into())],
            },
        ];
        let fsm = learn_fsm(&traces, &["s1"]).unwrap();
        assert!(fsm.accepts(&['x']).unwrap());
    }
}
