//! Approximate inference by sampling.
//!
//! Exact variable elimination (the default in [`super::BayesNet::query`])
//! is exponential in treewidth; the paper's knowledge models are small, but
//! a production library needs a path for the larger nets the framework
//! invites ("Bayesian networks can readily handle incomplete data sets").
//! This module adds ancestral (prior) sampling and likelihood weighting;
//! tests verify convergence to the exact posterior.

use crate::bayes::{BayesNet, NodeId};
use crate::error::ModelError;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::HashMap;

impl BayesNet {
    /// Draws one full assignment by ancestral sampling (nodes are stored
    /// parents-first, so a single pass suffices).
    pub fn sample_assignment(&self, rng: &mut StdRng) -> Vec<bool> {
        let mut assignment: Vec<bool> = Vec::with_capacity(self.node_count());
        for node in 0..self.node_count() {
            let p = self.conditional_given(node, &assignment);
            assignment.push(rng.random::<f64>() < p);
        }
        assignment
    }

    /// `P(node = true | prefix)` where `prefix` holds values for all of
    /// the node's parents (they precede it by construction).
    fn conditional_given(&self, node: NodeId, prefix: &[bool]) -> f64 {
        let mut config = 0usize;
        for (j, p) in self.parents(node).iter().enumerate() {
            if prefix[*p] {
                config |= 1 << j;
            }
        }
        self.cpt_entry(node, config)
    }

    /// Approximate posterior `P(target = true | evidence)` by likelihood
    /// weighting with `samples` draws.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Unknown`] for invalid ids,
    /// [`ModelError::InsufficientData`] for zero samples, and
    /// [`ModelError::InvalidValue`] when every sample had zero weight
    /// (evidence of probability ~0).
    pub fn query_approx(
        &self,
        target: NodeId,
        evidence: &[(NodeId, bool)],
        samples: usize,
        seed: u64,
    ) -> Result<f64, ModelError> {
        if target >= self.node_count() {
            return Err(ModelError::Unknown(format!("node {target}")));
        }
        for (n, _) in evidence {
            if *n >= self.node_count() {
                return Err(ModelError::Unknown(format!("node {n}")));
            }
        }
        if samples == 0 {
            return Err(ModelError::InsufficientData {
                samples: 0,
                parameters: 1,
            });
        }
        let ev: HashMap<NodeId, bool> = evidence.iter().copied().collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut weighted_true = 0.0f64;
        let mut weight_total = 0.0f64;
        for _ in 0..samples {
            let mut assignment: Vec<bool> = Vec::with_capacity(self.node_count());
            let mut weight = 1.0f64;
            for node in 0..self.node_count() {
                let p = self.conditional_given(node, &assignment);
                match ev.get(&node) {
                    Some(&value) => {
                        weight *= if value { p } else { 1.0 - p };
                        assignment.push(value);
                    }
                    None => assignment.push(rng.random::<f64>() < p),
                }
            }
            weight_total += weight;
            if assignment[target] {
                weighted_true += weight;
            }
        }
        if weight_total <= 0.0 {
            return Err(ModelError::InvalidValue(
                "all samples had zero weight (impossible evidence?)".into(),
            ));
        }
        Ok(weighted_true / weight_total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bayes::hps_net::hps_network;

    fn sprinkler() -> (BayesNet, NodeId, NodeId, NodeId, NodeId) {
        let mut net = BayesNet::new();
        let cloudy = net.add_node("cloudy", &[], vec![0.5]).unwrap();
        let sprinkler = net
            .add_node("sprinkler", &[cloudy], vec![0.5, 0.1])
            .unwrap();
        let rain = net.add_node("rain", &[cloudy], vec![0.2, 0.8]).unwrap();
        let wet = net
            .add_node("wet", &[sprinkler, rain], vec![0.0, 0.9, 0.9, 0.99])
            .unwrap();
        (net, cloudy, sprinkler, rain, wet)
    }

    #[test]
    fn ancestral_sampling_matches_priors() {
        let (net, cloudy, _, rain, _) = sprinkler();
        let mut rng = StdRng::seed_from_u64(1);
        let n = 40_000;
        let mut cloudy_count = 0u32;
        let mut rain_count = 0u32;
        for _ in 0..n {
            let a = net.sample_assignment(&mut rng);
            cloudy_count += u32::from(a[cloudy]);
            rain_count += u32::from(a[rain]);
        }
        assert!((cloudy_count as f64 / n as f64 - 0.5).abs() < 0.02);
        assert!((rain_count as f64 / n as f64 - 0.5).abs() < 0.02);
    }

    #[test]
    fn likelihood_weighting_converges_to_exact() {
        let (net, cloudy, sprinkler, rain, wet) = sprinkler();
        for (target, evidence) in [
            (rain, vec![(wet, true)]),
            (cloudy, vec![(wet, true), (sprinkler, true)]),
            (sprinkler, vec![(rain, false), (wet, true)]),
        ] {
            let exact = net.query(target, &evidence).unwrap();
            let approx = net.query_approx(target, &evidence, 60_000, 7).unwrap();
            assert!(
                (exact - approx).abs() < 0.02,
                "target {target} evidence {evidence:?}: exact {exact} vs approx {approx}"
            );
        }
    }

    #[test]
    fn hps_network_sampling_agrees_with_exact() {
        let (net, nodes) = hps_network();
        let evidence = vec![
            (nodes.house, true),
            (nodes.bushes, true),
            (nodes.wet_season, true),
            (nodes.dry_season, true),
        ];
        let exact = net.query(nodes.high_risk, &evidence).unwrap();
        let approx = net
            .query_approx(nodes.high_risk, &evidence, 60_000, 3)
            .unwrap();
        assert!((exact - approx).abs() < 0.02, "{exact} vs {approx}");
    }

    #[test]
    fn approx_query_validates() {
        let (net, cloudy, ..) = sprinkler();
        assert!(net.query_approx(99, &[], 100, 1).is_err());
        assert!(net.query_approx(cloudy, &[(99, true)], 100, 1).is_err());
        assert!(net.query_approx(cloudy, &[], 0, 1).is_err());
    }

    #[test]
    fn impossible_evidence_surfaces() {
        let mut net = BayesNet::new();
        let a = net.add_node("a", &[], vec![1.0]).unwrap();
        let b = net.add_node("b", &[a], vec![0.0, 1.0]).unwrap();
        // b = false is impossible: every sample weight is zero.
        assert!(matches!(
            net.query_approx(a, &[(b, false)], 1000, 1),
            Err(ModelError::InvalidValue(_))
        ));
    }
}
