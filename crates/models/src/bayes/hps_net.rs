//! The high-risk-house Bayesian network of paper Figs. 2–3.
//!
//! "The high risk houses that are vulnerable to Hantavirus Pulmonary
//! Syndrome can consist of the following rules: area of houses, which are
//! surrounded by bushes, and has weather pattern of raining season followed
//! by a dry season." The network (Fig. 3) has observable leaves — `house`,
//! `bushes`, `unusual raining season`, `dry season` — two intermediate
//! concepts — `house surrounded by bushes`, `wet season followed by dry
//! season` — and the query node `high risk house`.
//!
//! The model is multi-modal: house/bush evidence comes from imagery, season
//! evidence from weather feeds.

use crate::bayes::{noisy_and_cpt, BayesNet, NodeId};
use crate::error::ModelError;

/// Node handles for the HPS house-risk network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HpsNet {
    /// Observable: a house is present (imagery).
    pub house: NodeId,
    /// Observable: bushes detected around the location (imagery).
    pub bushes: NodeId,
    /// Observable: unusually wet raining season (weather archive).
    pub wet_season: NodeId,
    /// Observable: subsequent dry season (weather archive).
    pub dry_season: NodeId,
    /// Intermediate: house surrounded by bushes.
    pub house_surrounded: NodeId,
    /// Intermediate: wet season followed by dry season.
    pub wet_then_dry: NodeId,
    /// Query node: high-risk house.
    pub high_risk: NodeId,
}

/// Builds the Fig. 3 network with standard priors and noisy-AND gates.
///
/// Priors reflect a rural study area (houses sparse, bushes common); the
/// AND gates are noisy because image classification of bushes and season
/// segmentation both carry error.
pub fn hps_network() -> (BayesNet, HpsNet) {
    let mut net = BayesNet::new();
    let house = net.add_node("house", &[], vec![0.05]).expect("valid prior");
    let bushes = net
        .add_node("bushes", &[], vec![0.35])
        .expect("valid prior");
    let wet_season = net
        .add_node("unusual raining season", &[], vec![0.25])
        .expect("valid prior");
    let dry_season = net
        .add_node("dry season", &[], vec![0.5])
        .expect("valid prior");
    let house_surrounded = net
        .add_node(
            "house surrounded by bushes",
            &[house, bushes],
            noisy_and_cpt(&[0.95, 0.9], 0.01),
        )
        .expect("valid gate");
    let wet_then_dry = net
        .add_node(
            "wet season followed by dry season",
            &[wet_season, dry_season],
            noisy_and_cpt(&[0.9, 0.9], 0.02),
        )
        .expect("valid gate");
    let high_risk = net
        .add_node(
            "high risk house",
            &[house_surrounded, wet_then_dry],
            noisy_and_cpt(&[0.9, 0.85], 0.01),
        )
        .expect("valid gate");
    (
        net,
        HpsNet {
            house,
            bushes,
            wet_season,
            dry_season,
            house_surrounded,
            wet_then_dry,
            high_risk,
        },
    )
}

/// Scores a location given hard multi-modal evidence, returning
/// `P(high risk | evidence)` — the ranking key for top-K retrieval of
/// vulnerable houses.
///
/// # Errors
///
/// Propagates [`BayesNet::query`] errors.
pub fn risk_given_observations(
    net: &BayesNet,
    nodes: &HpsNet,
    house: bool,
    bushes: bool,
    wet_season: bool,
    dry_season: bool,
) -> Result<f64, ModelError> {
    net.query(
        nodes.high_risk,
        &[
            (nodes.house, house),
            (nodes.bushes, bushes),
            (nodes.wet_season, wet_season),
            (nodes.dry_season, dry_season),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_evidence_dominates() {
        let (net, nodes) = hps_network();
        let all = risk_given_observations(&net, &nodes, true, true, true, true).unwrap();
        let no_bushes = risk_given_observations(&net, &nodes, true, false, true, true).unwrap();
        let no_house = risk_given_observations(&net, &nodes, false, true, true, true).unwrap();
        let no_wet = risk_given_observations(&net, &nodes, true, true, false, true).unwrap();
        assert!(all > 0.5, "textbook case should be high risk, got {all}");
        for (name, p) in [
            ("no bushes", no_bushes),
            ("no house", no_house),
            ("no wet", no_wet),
        ] {
            assert!(p < all / 3.0, "{name} should slash the risk: {p} vs {all}");
        }
    }

    #[test]
    fn prior_risk_is_low() {
        let (net, nodes) = hps_network();
        let prior = net.query(nodes.high_risk, &[]).unwrap();
        assert!(
            prior < 0.05,
            "unconditioned risk should be rare, got {prior}"
        );
    }

    #[test]
    fn risk_is_monotone_in_each_observation() {
        let (net, nodes) = hps_network();
        for mask in 0..8u32 {
            let b = |bit: u32| mask & (1 << bit) != 0;
            // Flipping any single false->true must not decrease risk.
            let base = risk_given_observations(&net, &nodes, false, b(0), b(1), b(2)).unwrap();
            let with_house = risk_given_observations(&net, &nodes, true, b(0), b(1), b(2)).unwrap();
            assert!(
                with_house >= base - 1e-12,
                "house evidence must not lower risk"
            );
        }
    }

    #[test]
    fn intermediate_nodes_respond_to_their_modality_only() {
        let (net, nodes) = hps_network();
        // Imagery evidence moves the imagery intermediate...
        let p_hsb = net
            .query(
                nodes.house_surrounded,
                &[(nodes.house, true), (nodes.bushes, true)],
            )
            .unwrap();
        assert!(p_hsb > 0.8);
        // ...but not the weather intermediate.
        let p_wtd_base = net.query(nodes.wet_then_dry, &[]).unwrap();
        let p_wtd = net
            .query(
                nodes.wet_then_dry,
                &[(nodes.house, true), (nodes.bushes, true)],
            )
            .unwrap();
        assert!((p_wtd - p_wtd_base).abs() < 1e-9, "modality independence");
    }

    #[test]
    fn diagnostic_reasoning_flows_backwards() {
        let (net, nodes) = hps_network();
        let p_bushes_prior = net.query(nodes.bushes, &[]).unwrap();
        let p_bushes_given_risk = net.query(nodes.bushes, &[(nodes.high_risk, true)]).unwrap();
        assert!(
            p_bushes_given_risk > p_bushes_prior,
            "knowing a house is high-risk raises belief in bushes: {p_bushes_given_risk} vs {p_bushes_prior}"
        );
    }
}
