//! Learning Bayesian network CPTs from data (paper §2.3: "Recently, methods
//! have been developed to learn Bayesian networks from data").
//!
//! Structure is given (parents-first node order, as in [`super::BayesNet`]);
//! parameters are maximum-a-posteriori estimates with Laplace (add-one)
//! smoothing, so unseen parent configurations stay usable.

use crate::bayes::BayesNet;
use crate::error::ModelError;

/// A network structure: for each node (in parents-first order), its name
/// and parent ids.
#[derive(Debug, Clone, PartialEq)]
pub struct Structure {
    nodes: Vec<(String, Vec<usize>)>,
}

impl Structure {
    /// Creates an empty structure.
    pub fn new() -> Self {
        Structure { nodes: Vec::new() }
    }

    /// Adds a node; parents must reference earlier nodes.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Unknown`] when a parent id is not yet defined
    /// (this is the acyclicity guarantee).
    pub fn add_node(
        &mut self,
        name: impl Into<String>,
        parents: &[usize],
    ) -> Result<usize, ModelError> {
        let id = self.nodes.len();
        for p in parents {
            if *p >= id {
                return Err(ModelError::Unknown(format!(
                    "parent {p} must precede its child"
                )));
            }
        }
        self.nodes.push((name.into(), parents.to_vec()));
        Ok(id)
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }
}

impl Default for Structure {
    fn default() -> Self {
        Structure::new()
    }
}

/// Fits CPTs for `structure` from complete binary samples (one `Vec<bool>`
/// per observation, indexed by node id) with add-one smoothing.
///
/// # Errors
///
/// * [`ModelError::Empty`] — empty structure.
/// * [`ModelError::InsufficientData`] — no samples.
/// * [`ModelError::ArityMismatch`] — a sample of the wrong width.
pub fn fit_cpts(structure: &Structure, samples: &[Vec<bool>]) -> Result<BayesNet, ModelError> {
    if structure.node_count() == 0 {
        return Err(ModelError::Empty);
    }
    if samples.is_empty() {
        return Err(ModelError::InsufficientData {
            samples: 0,
            parameters: structure.node_count(),
        });
    }
    for s in samples {
        if s.len() != structure.node_count() {
            return Err(ModelError::ArityMismatch {
                expected: structure.node_count(),
                actual: s.len(),
            });
        }
    }
    let mut net = BayesNet::new();
    for (node, (name, parents)) in structure.nodes.iter().enumerate() {
        let configs = 1usize << parents.len();
        let mut true_counts = vec![1.0f64; configs]; // Laplace prior
        let mut totals = vec![2.0f64; configs];
        for s in samples {
            let mut config = 0usize;
            for (j, p) in parents.iter().enumerate() {
                if s[*p] {
                    config |= 1 << j;
                }
            }
            totals[config] += 1.0;
            if s[node] {
                true_counts[config] += 1.0;
            }
        }
        let cpt: Vec<f64> = true_counts
            .iter()
            .zip(&totals)
            .map(|(t, n)| t / n)
            .collect();
        net.add_node(name.clone(), parents, cpt)?;
    }
    Ok(net)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbir_archive::randx;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn sample_net(net: &BayesNet, rng: &mut StdRng, n: usize) -> Vec<Vec<bool>> {
        // Ancestral sampling: nodes are in parents-first order.
        (0..n)
            .map(|_| {
                let mut s: Vec<bool> = Vec::with_capacity(net.node_count());
                for node in 0..net.node_count() {
                    let mut config = 0usize;
                    for (j, p) in net.parents(node).iter().enumerate() {
                        if s[*p] {
                            config |= 1 << j;
                        }
                    }
                    // Reach into the CPT via a tiny query-free shortcut:
                    // P(node | parents) computed by a 1-node query on a
                    // cloned net is overkill; reconstruct via joint ratio.
                    let mut with_true = s.clone();
                    with_true.push(true);
                    let _ = config;
                    let p_true = conditional_of(net, node, &s);
                    s.push(rng.random::<f64>() < p_true);
                }
                s
            })
            .collect()
    }

    /// P(node=true | prefix assignment of its parents).
    fn conditional_of(net: &BayesNet, node: usize, prefix: &[bool]) -> f64 {
        // Query with all parents as evidence gives exactly the CPT entry.
        let evidence: Vec<(usize, bool)> =
            net.parents(node).iter().map(|p| (*p, prefix[*p])).collect();
        net.query(node, &evidence).expect("valid query")
    }

    fn truth_net() -> BayesNet {
        let mut net = BayesNet::new();
        let a = net.add_node("a", &[], vec![0.3]).unwrap();
        let b = net.add_node("b", &[a], vec![0.2, 0.7]).unwrap();
        let _c = net
            .add_node("c", &[a, b], vec![0.1, 0.5, 0.4, 0.9])
            .unwrap();
        net
    }

    #[test]
    fn structure_enforces_parent_order() {
        let mut s = Structure::new();
        let a = s.add_node("a", &[]).unwrap();
        assert!(s.add_node("b", &[a]).is_ok());
        assert!(s.add_node("c", &[7]).is_err());
    }

    #[test]
    fn recovers_planted_cpts() {
        let truth = truth_net();
        let mut rng = StdRng::seed_from_u64(11);
        let samples = sample_net(&truth, &mut rng, 30_000);
        let mut structure = Structure::new();
        let a = structure.add_node("a", &[]).unwrap();
        let b = structure.add_node("b", &[a]).unwrap();
        structure.add_node("c", &[a, b]).unwrap();
        let learned = fit_cpts(&structure, &samples).unwrap();
        // Compare posteriors on several queries.
        for (target, evidence) in [
            (0usize, vec![]),
            (1, vec![(0usize, true)]),
            (1, vec![(0, false)]),
            (2, vec![(0, true), (1, true)]),
            (2, vec![(0, false), (1, true)]),
        ] {
            let t = truth.query(target, &evidence).unwrap();
            let l = learned.query(target, &evidence).unwrap();
            assert!(
                (t - l).abs() < 0.02,
                "target {target} evidence {evidence:?}: {t} vs {l}"
            );
        }
        // Seed-based check that randx is deterministic for docs elsewhere.
        let _ = randx::standard_normal(&mut rng);
    }

    #[test]
    fn smoothing_handles_unseen_configs() {
        let mut structure = Structure::new();
        let a = structure.add_node("a", &[]).unwrap();
        structure.add_node("b", &[a]).unwrap();
        // Only a=false ever observed; a=true config is unseen.
        let samples = vec![vec![false, true], vec![false, false]];
        let net = fit_cpts(&structure, &samples).unwrap();
        let p = net.query(1, &[(a, true)]).unwrap();
        assert!((p - 0.5).abs() < 1e-12, "Laplace prior gives 1/2, got {p}");
    }

    #[test]
    fn fit_validates_inputs() {
        let structure = Structure::new();
        assert!(matches!(fit_cpts(&structure, &[]), Err(ModelError::Empty)));
        let mut s2 = Structure::new();
        s2.add_node("a", &[]).unwrap();
        assert!(matches!(
            fit_cpts(&s2, &[]),
            Err(ModelError::InsufficientData { .. })
        ));
        assert!(matches!(
            fit_cpts(&s2, &[vec![true, false]]),
            Err(ModelError::ArityMismatch { .. })
        ));
    }
}
