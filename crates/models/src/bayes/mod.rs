//! Bayesian networks over binary variables (paper §2.3).
//!
//! "A Bayesian network is a graphical model for probabilistic relationships
//! among a set of variables ... Bayesian networks can readily handle
//! incomplete data sets ... and has become a popular representation for
//! encoding expert knowledge in expert systems. Recently, methods have been
//! developed to learn Bayesian networks from data."
//!
//! All the paper's knowledge-model examples are propositional (house,
//! bushes, wet season, ...), so variables here are binary. Inference is
//! exact: [`BayesNet::query`] runs variable elimination, cross-checked in
//! tests against brute-force enumeration. CPTs can be learned from data
//! ([`learn`]) or built from noisy-OR/AND gates ([`noisy_or_cpt`],
//! [`noisy_and_cpt`]).

pub mod hps_net;
pub mod learn;
pub mod sample;

use crate::error::ModelError;
use std::collections::{HashMap, HashSet};

/// Identifier of a node within a [`BayesNet`].
pub type NodeId = usize;

/// A Bayesian network over binary variables.
///
/// Nodes must be added parents-first (a node's parents must already exist),
/// which guarantees acyclicity by construction.
///
/// # Examples
///
/// ```
/// use mbir_models::bayes::BayesNet;
///
/// let mut net = BayesNet::new();
/// let rain = net.add_node("rain", &[], vec![0.3]).unwrap();
/// // P(wet | rain) = 0.9, P(wet | !rain) = 0.1
/// let wet = net.add_node("wet", &[rain], vec![0.1, 0.9]).unwrap();
/// let p = net.query(wet, &[]).unwrap();
/// assert!((p - (0.3 * 0.9 + 0.7 * 0.1)).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct BayesNet {
    names: Vec<String>,
    parents: Vec<Vec<NodeId>>,
    /// `cpts[n][config]` = P(node n = true | parents in `config`), where
    /// `config` encodes parent values with parent `j` (in declaration
    /// order) contributing bit `j`.
    cpts: Vec<Vec<f64>>,
}

impl BayesNet {
    /// Creates an empty network.
    pub fn new() -> Self {
        BayesNet {
            names: Vec::new(),
            parents: Vec::new(),
            cpts: Vec::new(),
        }
    }

    /// Adds a node with the given parents and CPT.
    ///
    /// The CPT must have `2^parents.len()` entries, each a probability of
    /// the node being *true* for the corresponding parent configuration
    /// (parent `j` contributes bit `j`; e.g. with parents `[a, b]`, entry
    /// `0b10` is `P(node | !a, b)`).
    ///
    /// # Errors
    ///
    /// * [`ModelError::Unknown`] — a parent id does not exist yet (adding
    ///   parents-first is what keeps the graph acyclic).
    /// * [`ModelError::ArityMismatch`] — CPT size is not `2^|parents|`.
    /// * [`ModelError::InvalidValue`] — a CPT entry is outside `[0, 1]`.
    pub fn add_node(
        &mut self,
        name: impl Into<String>,
        parents: &[NodeId],
        cpt: Vec<f64>,
    ) -> Result<NodeId, ModelError> {
        let id = self.names.len();
        for p in parents {
            if *p >= id {
                return Err(ModelError::Unknown(format!(
                    "parent {p} must be added before its child"
                )));
            }
        }
        let expected = 1usize << parents.len();
        if cpt.len() != expected {
            return Err(ModelError::ArityMismatch {
                expected,
                actual: cpt.len(),
            });
        }
        if cpt
            .iter()
            .any(|p| !p.is_finite() || !(0.0..=1.0).contains(p))
        {
            return Err(ModelError::InvalidValue(
                "CPT entries must be probabilities".into(),
            ));
        }
        self.names.push(name.into());
        self.parents.push(parents.to_vec());
        self.cpts.push(cpt);
        Ok(id)
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.names.len()
    }

    /// Node lookup by name.
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.names.iter().position(|n| n == name)
    }

    /// Name of a node.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Unknown`] for an invalid id.
    pub fn node_name(&self, node: NodeId) -> Result<&str, ModelError> {
        self.names
            .get(node)
            .map(String::as_str)
            .ok_or_else(|| ModelError::Unknown(format!("node {node}")))
    }

    /// Parents of a node.
    pub fn parents(&self, node: NodeId) -> &[NodeId] {
        &self.parents[node]
    }

    /// Raw CPT entry `P(node = true | parent config)` (crate-internal; the
    /// sampling module reads it directly).
    pub(crate) fn cpt_entry(&self, node: NodeId, config: usize) -> f64 {
        self.cpts[node][config]
    }

    /// P(node = true | its parents' values in `assignment`).
    fn conditional(&self, node: NodeId, assignment: &[bool]) -> f64 {
        let mut config = 0usize;
        for (j, p) in self.parents[node].iter().enumerate() {
            if assignment[*p] {
                config |= 1 << j;
            }
        }
        self.cpts[node][config]
    }

    /// Joint probability of a full assignment.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::ArityMismatch`] unless exactly one value per
    /// node is given.
    pub fn joint(&self, assignment: &[bool]) -> Result<f64, ModelError> {
        if assignment.len() != self.node_count() {
            return Err(ModelError::ArityMismatch {
                expected: self.node_count(),
                actual: assignment.len(),
            });
        }
        let mut p = 1.0;
        for node in 0..self.node_count() {
            let c = self.conditional(node, assignment);
            p *= if assignment[node] { c } else { 1.0 - c };
        }
        Ok(p)
    }

    /// Exact posterior `P(target = true | evidence)` by variable
    /// elimination.
    ///
    /// # Errors
    ///
    /// * [`ModelError::Empty`] — empty network.
    /// * [`ModelError::Unknown`] — invalid node ids.
    /// * [`ModelError::InvalidValue`] — evidence has probability zero, or
    ///   duplicate/conflicting evidence entries.
    pub fn query(&self, target: NodeId, evidence: &[(NodeId, bool)]) -> Result<f64, ModelError> {
        if self.node_count() == 0 {
            return Err(ModelError::Empty);
        }
        if target >= self.node_count() {
            return Err(ModelError::Unknown(format!("node {target}")));
        }
        let mut seen = HashSet::new();
        for (n, _) in evidence {
            if *n >= self.node_count() {
                return Err(ModelError::Unknown(format!("node {n}")));
            }
            if !seen.insert(*n) {
                return Err(ModelError::InvalidValue(format!(
                    "duplicate evidence for node {n}"
                )));
            }
        }
        let ev: HashMap<NodeId, bool> = evidence.iter().copied().collect();

        // Build one factor per node: scope = {node} ∪ parents, reduced by
        // evidence.
        let mut factors: Vec<Factor> = Vec::new();
        for node in 0..self.node_count() {
            factors.push(self.node_factor(node, &ev));
        }

        // Eliminate hidden variables (not target, not evidence), lowest
        // degree first (min-fill is overkill for these nets).
        let mut hidden: Vec<NodeId> = (0..self.node_count())
            .filter(|n| *n != target && !ev.contains_key(n))
            .collect();
        hidden.sort_by_key(|n| {
            factors
                .iter()
                .filter(|f| f.scope.contains(n))
                .map(|f| f.scope.len())
                .sum::<usize>()
        });
        for var in hidden {
            let (with, without): (Vec<Factor>, Vec<Factor>) =
                factors.into_iter().partition(|f| f.scope.contains(&var));
            let mut product = with
                .into_iter()
                .reduce(|a, b| a.multiply(&b))
                .unwrap_or_else(Factor::unit);
            product = product.sum_out(var);
            factors = without;
            factors.push(product);
        }
        let joint = factors
            .into_iter()
            .reduce(|a, b| a.multiply(&b))
            .unwrap_or_else(Factor::unit);

        // joint now has scope ⊆ {target}.
        let p_true = joint.value_for(target, true);
        let p_false = joint.value_for(target, false);
        let total = p_true + p_false;
        if total <= 0.0 {
            return Err(ModelError::InvalidValue(
                "evidence has probability zero".into(),
            ));
        }
        Ok(p_true / total)
    }

    /// The factor for one node's CPT with evidence substituted.
    fn node_factor(&self, node: NodeId, ev: &HashMap<NodeId, bool>) -> Factor {
        let mut scope: Vec<NodeId> = Vec::new();
        scope.push(node);
        scope.extend(self.parents[node].iter().copied());
        let free: Vec<NodeId> = scope
            .iter()
            .copied()
            .filter(|v| !ev.contains_key(v))
            .collect();
        let mut values = vec![0.0; 1 << free.len()];
        for (idx, slot) in values.iter_mut().enumerate() {
            // Assignment over scope from free bits + evidence.
            let value_of = |v: NodeId| -> bool {
                if let Some(b) = ev.get(&v) {
                    *b
                } else {
                    let pos = free.iter().position(|f| *f == v).expect("free var");
                    idx & (1 << pos) != 0
                }
            };
            let mut config = 0usize;
            for (j, p) in self.parents[node].iter().enumerate() {
                if value_of(*p) {
                    config |= 1 << j;
                }
            }
            let c = self.cpts[node][config];
            *slot = if value_of(node) { c } else { 1.0 - c };
        }
        Factor {
            scope: free,
            values,
        }
    }
}

impl Default for BayesNet {
    fn default() -> Self {
        BayesNet::new()
    }
}

/// A factor over binary variables (internal to variable elimination, but
/// exposed for tests).
#[derive(Debug, Clone)]
struct Factor {
    /// Variables in this factor, in index order of the value table bits.
    scope: Vec<NodeId>,
    /// `values[bits]` where bit `i` is the value of `scope[i]`.
    values: Vec<f64>,
}

impl Factor {
    fn unit() -> Self {
        Factor {
            scope: Vec::new(),
            values: vec![1.0],
        }
    }

    fn multiply(&self, other: &Factor) -> Factor {
        let mut scope = self.scope.clone();
        for v in &other.scope {
            if !scope.contains(v) {
                scope.push(*v);
            }
        }
        let mut values = vec![0.0; 1 << scope.len()];
        for (idx, slot) in values.iter_mut().enumerate() {
            let bit = |vars: &[NodeId]| -> usize {
                let mut sub = 0usize;
                for (j, v) in vars.iter().enumerate() {
                    let pos = scope.iter().position(|s| s == v).expect("in scope");
                    if idx & (1 << pos) != 0 {
                        sub |= 1 << j;
                    }
                }
                sub
            };
            *slot = self.values[bit(&self.scope)] * other.values[bit(&other.scope)];
        }
        Factor { scope, values }
    }

    fn sum_out(&self, var: NodeId) -> Factor {
        let pos = match self.scope.iter().position(|v| *v == var) {
            Some(p) => p,
            None => return self.clone(),
        };
        let mut scope = self.scope.clone();
        scope.remove(pos);
        let mut values = vec![0.0; 1 << scope.len()];
        for (idx, v) in self.values.iter().enumerate() {
            // Remove bit `pos` from idx.
            let low = idx & ((1 << pos) - 1);
            let high = (idx >> (pos + 1)) << pos;
            values[low | high] += v;
        }
        Factor { scope, values }
    }

    /// Value for `var = value`, summing out any other remaining scope and
    /// treating an absent `var` as a constant factor.
    fn value_for(&self, var: NodeId, value: bool) -> f64 {
        let mut f = self.clone();
        let others: Vec<NodeId> = f.scope.iter().copied().filter(|v| *v != var).collect();
        for o in others {
            f = f.sum_out(o);
        }
        match f.scope.iter().position(|v| *v == var) {
            Some(_) => f.values[usize::from(value)],
            // Scope empty: the target was evidence-free but eliminated —
            // cannot happen for query()'s target; treat as symmetric.
            None => f.values[0] / 2.0,
        }
    }
}

/// A noisy-OR CPT: the child fires if any active parent's independent cause
/// fires; `leak` is the probability with no active parent.
///
/// # Panics
///
/// Panics unless every probability is in `[0, 1]`.
pub fn noisy_or_cpt(parent_strengths: &[f64], leak: f64) -> Vec<f64> {
    assert!(
        parent_strengths
            .iter()
            .chain(std::iter::once(&leak))
            .all(|p| (0.0..=1.0).contains(p)),
        "probabilities must be in [0,1]"
    );
    let n = parent_strengths.len();
    (0..(1 << n))
        .map(|config| {
            let mut p_not = 1.0 - leak;
            for (j, s) in parent_strengths.iter().enumerate() {
                if config & (1 << j) != 0 {
                    p_not *= 1.0 - s;
                }
            }
            1.0 - p_not
        })
        .collect()
}

/// A noisy-AND CPT: the child fires only when all parents are active (each
/// active parent enables with its strength; any inactive parent caps the
/// probability at `inhibit`).
///
/// # Panics
///
/// Panics unless every probability is in `[0, 1]`.
pub fn noisy_and_cpt(parent_strengths: &[f64], inhibit: f64) -> Vec<f64> {
    assert!(
        parent_strengths
            .iter()
            .chain(std::iter::once(&inhibit))
            .all(|p| (0.0..=1.0).contains(p)),
        "probabilities must be in [0,1]"
    );
    let n = parent_strengths.len();
    (0..(1 << n))
        .map(|config| {
            if config == (1 << n) - 1 {
                parent_strengths.iter().product()
            } else {
                inhibit
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force posterior by enumeration, the reference for VE.
    fn enumerate_query(net: &BayesNet, target: NodeId, evidence: &[(NodeId, bool)]) -> f64 {
        let n = net.node_count();
        let ev: HashMap<NodeId, bool> = evidence.iter().copied().collect();
        let mut p_true = 0.0;
        let mut p_total = 0.0;
        for bits in 0..(1usize << n) {
            let assignment: Vec<bool> = (0..n).map(|i| bits & (1 << i) != 0).collect();
            if ev.iter().any(|(k, v)| assignment[*k] != *v) {
                continue;
            }
            let p = net.joint(&assignment).unwrap();
            p_total += p;
            if assignment[target] {
                p_true += p;
            }
        }
        p_true / p_total
    }

    fn sprinkler_net() -> (BayesNet, NodeId, NodeId, NodeId, NodeId) {
        // The classic rain/sprinkler/wet-grass net.
        let mut net = BayesNet::new();
        let cloudy = net.add_node("cloudy", &[], vec![0.5]).unwrap();
        let sprinkler = net
            .add_node("sprinkler", &[cloudy], vec![0.5, 0.1])
            .unwrap();
        let rain = net.add_node("rain", &[cloudy], vec![0.2, 0.8]).unwrap();
        let wet = net
            .add_node("wet", &[sprinkler, rain], vec![0.0, 0.9, 0.9, 0.99])
            .unwrap();
        (net, cloudy, sprinkler, rain, wet)
    }

    #[test]
    fn add_node_validates() {
        let mut net = BayesNet::new();
        assert!(net.add_node("a", &[5], vec![0.5]).is_err());
        assert!(matches!(
            net.add_node("a", &[], vec![0.5, 0.5]),
            Err(ModelError::ArityMismatch { .. })
        ));
        assert!(matches!(
            net.add_node("a", &[], vec![1.5]),
            Err(ModelError::InvalidValue(_))
        ));
        let a = net.add_node("a", &[], vec![0.5]).unwrap();
        assert_eq!(net.node_by_name("a"), Some(a));
        assert_eq!(net.node_name(a).unwrap(), "a");
    }

    #[test]
    fn joint_sums_to_one() {
        let (net, ..) = sprinkler_net();
        let n = net.node_count();
        let total: f64 = (0..(1usize << n))
            .map(|bits| {
                let a: Vec<bool> = (0..n).map(|i| bits & (1 << i) != 0).collect();
                net.joint(&a).unwrap()
            })
            .sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn query_prior_matches_hand_computation() {
        let (net, _, _, rain, _) = sprinkler_net();
        // P(rain) = 0.5*0.8 + 0.5*0.2 = 0.5.
        let p = net.query(rain, &[]).unwrap();
        assert!((p - 0.5).abs() < 1e-12);
    }

    #[test]
    fn query_matches_enumeration_everywhere() {
        let (net, cloudy, sprinkler, rain, wet) = sprinkler_net();
        let cases: Vec<Vec<(NodeId, bool)>> = vec![
            vec![],
            vec![(wet, true)],
            vec![(wet, true), (sprinkler, false)],
            vec![(cloudy, true), (wet, false)],
            vec![(rain, true), (sprinkler, true), (cloudy, false)],
        ];
        for evidence in &cases {
            for target in [cloudy, sprinkler, rain, wet] {
                if evidence.iter().any(|(n, _)| *n == target) {
                    continue;
                }
                let ve = net.query(target, evidence).unwrap();
                let brute = enumerate_query(&net, target, evidence);
                assert!(
                    (ve - brute).abs() < 1e-9,
                    "target {target} evidence {evidence:?}: VE {ve} vs brute {brute}"
                );
            }
        }
    }

    #[test]
    fn explaining_away() {
        let (net, _, sprinkler, rain, wet) = sprinkler_net();
        let p_rain_wet = net.query(rain, &[(wet, true)]).unwrap();
        let p_rain_wet_sprinkler = net.query(rain, &[(wet, true), (sprinkler, true)]).unwrap();
        assert!(
            p_rain_wet_sprinkler < p_rain_wet,
            "sprinkler explains the wet grass away"
        );
    }

    #[test]
    fn query_rejects_bad_input() {
        let (net, cloudy, ..) = sprinkler_net();
        assert!(net.query(99, &[]).is_err());
        assert!(net.query(cloudy, &[(99, true)]).is_err());
        assert!(matches!(
            net.query(cloudy, &[(1, true), (1, false)]),
            Err(ModelError::InvalidValue(_))
        ));
        assert!(BayesNet::new().query(0, &[]).is_err());
    }

    #[test]
    fn impossible_evidence_is_an_error() {
        let mut net = BayesNet::new();
        let a = net.add_node("a", &[], vec![1.0]).unwrap();
        let b = net.add_node("b", &[a], vec![0.0, 1.0]).unwrap();
        // a is always true and forces b: evidence b=false is impossible.
        assert!(matches!(
            net.query(a, &[(b, false)]),
            Err(ModelError::InvalidValue(_))
        ));
    }

    #[test]
    fn noisy_or_properties() {
        let cpt = noisy_or_cpt(&[0.7, 0.5], 0.05);
        assert_eq!(cpt.len(), 4);
        assert!((cpt[0] - 0.05).abs() < 1e-12, "leak only");
        assert!(cpt[1] > cpt[0] && cpt[2] > cpt[0]);
        assert!(cpt[3] > cpt[1].max(cpt[2]), "both parents strongest");
        assert!((cpt[3] - (1.0 - 0.95 * 0.3 * 0.5)).abs() < 1e-12);
    }

    #[test]
    fn noisy_and_properties() {
        let cpt = noisy_and_cpt(&[0.9, 0.8], 0.02);
        assert_eq!(cpt.len(), 4);
        assert_eq!(cpt[0], 0.02);
        assert_eq!(cpt[1], 0.02);
        assert_eq!(cpt[2], 0.02);
        assert!((cpt[3] - 0.72).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "probabilities")]
    fn noisy_or_rejects_bad_probability() {
        let _ = noisy_or_cpt(&[1.2], 0.0);
    }
}
