//! The Hantavirus Pulmonary Syndrome risk model (paper §2.1):
//!
//! > `R(x,y) = 0.443 X1 + 0.222 X2 + 0.153 X3 + 0.183 X4`, where X1, X2 and
//! > X3 correspond to the pixel value of band 4, 5 and 7 of the Landsat
//! > Thematic Mapper image at location (x,y), while X4 corresponds to the
//! > elevation (in meters) from the corresponding DEM.
//!
//! Also provides the temporal recursive form of §3.1,
//! `R(x,y,t) = a1 X1 + a2 X2 + a3 X3 + a4 R(x,y,t-1)`.

use crate::error::ModelError;
use crate::linear::LinearModel;
use mbir_archive::dem::Dem;
use mbir_archive::grid::Grid2;
use mbir_archive::scene::{BandId, Scene};

/// The published HPS coefficients for (TM4, TM5, TM7, elevation).
pub const HPS_COEFFICIENTS: [f64; 4] = [0.443, 0.222, 0.153, 0.183];

/// The HPS risk model bound to its multi-modal inputs.
///
/// # Examples
///
/// ```
/// use mbir_models::linear::HpsRiskModel;
///
/// let m = HpsRiskModel::paper();
/// let r = m.risk(120.0, 80.0, 60.0, 1500.0);
/// assert!(r > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct HpsRiskModel {
    model: LinearModel,
}

impl HpsRiskModel {
    /// The model with the paper's published coefficients.
    pub fn paper() -> Self {
        HpsRiskModel {
            model: LinearModel::new(HPS_COEFFICIENTS.to_vec(), 0.0)
                .expect("published coefficients are valid"),
        }
    }

    /// A variant with custom coefficients (e.g. recalibrated by the
    /// workflow loop).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::ArityMismatch`] unless exactly 4 coefficients
    /// are given, or [`ModelError::InvalidValue`] for non-finite ones.
    pub fn with_coefficients(coefficients: [f64; 4]) -> Result<Self, ModelError> {
        Ok(HpsRiskModel {
            model: LinearModel::new(coefficients.to_vec(), 0.0)?,
        })
    }

    /// The underlying linear model.
    pub fn model(&self) -> &LinearModel {
        &self.model
    }

    /// Point risk from the four attributes.
    pub fn risk(&self, tm4: f64, tm5: f64, tm7: f64, elevation_m: f64) -> f64 {
        self.model.evaluate(&[tm4, tm5, tm7, elevation_m])
    }
}

/// Evaluates the HPS model over co-registered scene + DEM, returning the
/// risk surface. This is the naive `O(nN)` full-archive execution that the
/// progressive engine is benchmarked against.
///
/// # Errors
///
/// Returns [`ModelError::ArityMismatch`] when scene and DEM shapes differ
/// and [`ModelError::Unknown`] when a required band is missing.
pub fn hps_risk_grid(
    model: &HpsRiskModel,
    scene: &Scene,
    dem: &Dem,
) -> Result<Grid2<f64>, ModelError> {
    if scene.rows() != dem.grid().rows() || scene.cols() != dem.grid().cols() {
        return Err(ModelError::ArityMismatch {
            expected: scene.rows() * scene.cols(),
            actual: dem.grid().len(),
        });
    }
    let b4 = scene
        .band(BandId::TM4)
        .map_err(|e| ModelError::Unknown(e.to_string()))?;
    let b5 = scene
        .band(BandId::TM5)
        .map_err(|e| ModelError::Unknown(e.to_string()))?;
    let b7 = scene
        .band(BandId::TM7)
        .map_err(|e| ModelError::Unknown(e.to_string()))?;
    Ok(Grid2::from_fn(scene.rows(), scene.cols(), |r, c| {
        model.risk(
            *b4.at(r, c),
            *b5.at(r, c),
            *b7.at(r, c),
            *dem.grid().at(r, c),
        )
    }))
}

/// The temporal-recursive HPS form of §3.1: risk today blends current
/// observations with yesterday's risk.
#[derive(Debug, Clone, PartialEq)]
pub struct TemporalHpsModel {
    /// Weights on (X1, X2, X3).
    pub observation_coeffs: [f64; 3],
    /// Weight a4 on `R(x, y, t-1)`.
    pub persistence: f64,
}

impl TemporalHpsModel {
    /// Creates the temporal model.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidValue`] for non-finite weights or
    /// `|persistence| >= 1` (which would make the recursion divergent).
    pub fn new(observation_coeffs: [f64; 3], persistence: f64) -> Result<Self, ModelError> {
        if observation_coeffs.iter().any(|c| !c.is_finite()) || !persistence.is_finite() {
            return Err(ModelError::InvalidValue("weights must be finite".into()));
        }
        if persistence.abs() >= 1.0 {
            return Err(ModelError::InvalidValue(format!(
                "persistence {persistence} must satisfy |a4| < 1"
            )));
        }
        Ok(TemporalHpsModel {
            observation_coeffs,
            persistence,
        })
    }

    /// One recursion step: `R_t = a1 X1 + a2 X2 + a3 X3 + a4 R_{t-1}`.
    pub fn step(&self, observations: [f64; 3], previous_risk: f64) -> f64 {
        self.observation_coeffs
            .iter()
            .zip(&observations)
            .map(|(a, x)| a * x)
            .sum::<f64>()
            + self.persistence * previous_risk
    }

    /// Runs the recursion over a time series of observations, starting from
    /// `initial_risk`; returns the risk trajectory (one entry per step).
    pub fn run(&self, observations: &[[f64; 3]], initial_risk: f64) -> Vec<f64> {
        let mut risk = initial_risk;
        observations
            .iter()
            .map(|obs| {
                risk = self.step(*obs, risk);
                risk
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbir_archive::scene::SyntheticScene;

    #[test]
    fn paper_coefficients_are_wired() {
        let m = HpsRiskModel::paper();
        assert_eq!(m.model().coefficients(), &HPS_COEFFICIENTS);
        let r = m.risk(1.0, 1.0, 1.0, 1.0);
        assert!((r - (0.443 + 0.222 + 0.153 + 0.183)).abs() < 1e-12);
    }

    #[test]
    fn risk_grid_matches_pointwise() {
        let scene = SyntheticScene::new(3, 16, 16).generate();
        let dem = Dem::synthetic(4, 16, 16, 0.0, 2000.0);
        let m = HpsRiskModel::paper();
        let grid = hps_risk_grid(&m, &scene, &dem).unwrap();
        let b4 = scene.band(BandId::TM4).unwrap();
        let b5 = scene.band(BandId::TM5).unwrap();
        let b7 = scene.band(BandId::TM7).unwrap();
        for r in 0..16 {
            for c in 0..16 {
                let expected = m.risk(
                    *b4.at(r, c),
                    *b5.at(r, c),
                    *b7.at(r, c),
                    *dem.grid().at(r, c),
                );
                assert!((grid.at(r, c) - expected).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn risk_grid_rejects_misaligned_or_missing() {
        let scene = SyntheticScene::new(3, 16, 16).generate();
        let dem = Dem::synthetic(4, 8, 8, 0.0, 2000.0);
        assert!(hps_risk_grid(&HpsRiskModel::paper(), &scene, &dem).is_err());
        let empty = Scene::new(16, 16);
        let dem16 = Dem::synthetic(4, 16, 16, 0.0, 2000.0);
        assert!(matches!(
            hps_risk_grid(&HpsRiskModel::paper(), &empty, &dem16),
            Err(ModelError::Unknown(_))
        ));
    }

    #[test]
    fn temporal_model_converges_for_constant_input() {
        let m = TemporalHpsModel::new([0.4, 0.3, 0.3], 0.5).unwrap();
        let obs = [[1.0, 1.0, 1.0]; 60];
        let trajectory = m.run(&obs, 0.0);
        // Fixed point: r = 1.0 + 0.5 r -> r = 2.
        let last = trajectory.last().copied().unwrap();
        assert!((last - 2.0).abs() < 1e-6, "last {last}");
    }

    #[test]
    fn temporal_model_rejects_divergent_persistence() {
        assert!(TemporalHpsModel::new([0.1, 0.1, 0.1], 1.0).is_err());
        assert!(TemporalHpsModel::new([0.1, f64::NAN, 0.1], 0.5).is_err());
    }
}
