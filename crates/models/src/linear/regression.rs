//! Ordinary least squares calibration — "well known techniques exist in
//! deriving the 'optimal' weights based on collections of data" (§2.1).

use crate::error::ModelError;
use crate::linalg::Matrix;
use crate::linear::LinearModel;

/// Result of an OLS fit.
#[derive(Debug, Clone, PartialEq)]
pub struct OlsFit {
    /// The fitted model (with intercept).
    pub model: LinearModel,
    /// Coefficient of determination on the training data.
    pub r_squared: f64,
    /// Residual standard deviation.
    pub residual_std: f64,
}

/// Fits `y ~ X` by ordinary least squares with an intercept, solving the
/// normal equations `(X'X) beta = X'y`.
///
/// # Errors
///
/// * [`ModelError::Empty`] — no samples or zero-width rows.
/// * [`ModelError::ArityMismatch`] — `xs` and `ys` lengths differ or rows
///   are ragged.
/// * [`ModelError::InsufficientData`] — fewer samples than parameters.
/// * [`ModelError::Singular`] — collinear attributes.
///
/// # Examples
///
/// ```
/// use mbir_models::linear::fit_ols;
///
/// let xs = vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0]];
/// let ys = vec![1.0, 3.0, 5.0, 7.0]; // y = 2x + 1
/// let fit = fit_ols(&xs, &ys)?;
/// assert!((fit.model.coefficients()[0] - 2.0).abs() < 1e-9);
/// assert!((fit.model.intercept() - 1.0).abs() < 1e-9);
/// # Ok::<(), mbir_models::ModelError>(())
/// ```
pub fn fit_ols(xs: &[Vec<f64>], ys: &[f64]) -> Result<OlsFit, ModelError> {
    let first = xs.first().ok_or(ModelError::Empty)?;
    let dims = first.len();
    if dims == 0 {
        return Err(ModelError::Empty);
    }
    if xs.len() != ys.len() {
        return Err(ModelError::ArityMismatch {
            expected: xs.len(),
            actual: ys.len(),
        });
    }
    let params = dims + 1; // + intercept
    if xs.len() < params {
        return Err(ModelError::InsufficientData {
            samples: xs.len(),
            parameters: params,
        });
    }

    // Design matrix with a leading 1-column for the intercept.
    let design: Vec<Vec<f64>> = xs
        .iter()
        .map(|row| {
            let mut d = Vec::with_capacity(params);
            d.push(1.0);
            d.extend_from_slice(row);
            d
        })
        .collect();
    let x = Matrix::from_rows(&design)?;
    let xt = x.transpose();
    let xtx = xt.mul(&x)?;
    let xty = xt.mul_vec(ys)?;
    let beta = xtx.solve(&xty)?;

    let model = LinearModel::new(beta[1..].to_vec(), beta[0])?;

    // Goodness of fit.
    let mean_y: f64 = ys.iter().sum::<f64>() / ys.len() as f64;
    let mut ss_res = 0.0;
    let mut ss_tot = 0.0;
    for (row, y) in xs.iter().zip(ys) {
        let pred = model.evaluate(row);
        ss_res += (y - pred) * (y - pred);
        ss_tot += (y - mean_y) * (y - mean_y);
    }
    let r_squared = if ss_tot > 0.0 {
        1.0 - ss_res / ss_tot
    } else {
        1.0
    };
    let residual_std = (ss_res / xs.len() as f64).sqrt();
    Ok(OlsFit {
        model,
        r_squared,
        residual_std,
    })
}

/// Fits `y ~ X` by ridge regression: solves
/// `(X'X + lambda I) beta = X'y` with the intercept left unpenalized.
///
/// Ridge is the productive answer to the collinear-attribute case where
/// [`fit_ols`] correctly refuses ([`ModelError::Singular`]): multi-spectral
/// bands are strongly correlated, and workflow refits on small feedback
/// sets need the stabilizer.
///
/// # Errors
///
/// Same as [`fit_ols`], except collinearity no longer yields
/// [`ModelError::Singular`] for `lambda > 0`;
/// [`ModelError::InvalidValue`] for a negative or non-finite `lambda`.
///
/// # Examples
///
/// ```
/// use mbir_models::linear::fit_ridge;
///
/// // Perfectly collinear attributes: OLS would be singular.
/// let xs: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64, 2.0 * i as f64]).collect();
/// let ys: Vec<f64> = (0..10).map(|i| 5.0 * i as f64).collect();
/// let fit = fit_ridge(&xs, &ys, 0.1)?;
/// // The fitted model still predicts well even though neither coefficient
/// // is individually identified.
/// assert!((fit.model.evaluate(&[4.0, 8.0]) - 20.0).abs() < 0.5);
/// # Ok::<(), mbir_models::ModelError>(())
/// ```
pub fn fit_ridge(xs: &[Vec<f64>], ys: &[f64], lambda: f64) -> Result<OlsFit, ModelError> {
    if lambda < 0.0 || lambda.is_nan() || !lambda.is_finite() {
        return Err(ModelError::InvalidValue(format!(
            "ridge lambda must be finite and non-negative, got {lambda}"
        )));
    }
    let first = xs.first().ok_or(ModelError::Empty)?;
    let dims = first.len();
    if dims == 0 {
        return Err(ModelError::Empty);
    }
    if xs.len() != ys.len() {
        return Err(ModelError::ArityMismatch {
            expected: xs.len(),
            actual: ys.len(),
        });
    }
    let params = dims + 1;
    if xs.len() < 2 {
        return Err(ModelError::InsufficientData {
            samples: xs.len(),
            parameters: params,
        });
    }
    let design: Vec<Vec<f64>> = xs
        .iter()
        .map(|row| {
            let mut d = Vec::with_capacity(params);
            d.push(1.0);
            d.extend_from_slice(row);
            d
        })
        .collect();
    let x = Matrix::from_rows(&design)?;
    let xt = x.transpose();
    let mut xtx = xt.mul(&x)?;
    // Penalize every coefficient except the intercept.
    for i in 1..params {
        xtx.set(i, i, xtx.get(i, i) + lambda);
    }
    let xty = xt.mul_vec(ys)?;
    let beta = xtx.solve(&xty)?;
    let model = LinearModel::new(beta[1..].to_vec(), beta[0])?;

    let mean_y: f64 = ys.iter().sum::<f64>() / ys.len() as f64;
    let mut ss_res = 0.0;
    let mut ss_tot = 0.0;
    for (row, y) in xs.iter().zip(ys) {
        let pred = model.evaluate(row);
        ss_res += (y - pred) * (y - pred);
        ss_tot += (y - mean_y) * (y - mean_y);
    }
    let r_squared = if ss_tot > 0.0 {
        1.0 - ss_res / ss_tot
    } else {
        1.0
    };
    Ok(OlsFit {
        model,
        r_squared,
        residual_std: (ss_res / xs.len() as f64).sqrt(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbir_archive::randx;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn recovers_planted_coefficients_exactly_without_noise() {
        let truth = [0.443, 0.222, 0.153, 0.183];
        let mut rng = StdRng::seed_from_u64(1);
        let xs: Vec<Vec<f64>> = (0..200)
            .map(|_| {
                (0..4)
                    .map(|_| randx::standard_normal(&mut rng) * 50.0)
                    .collect()
            })
            .collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| truth.iter().zip(x).map(|(a, v)| a * v).sum::<f64>() + 5.0)
            .collect();
        let fit = fit_ols(&xs, &ys).unwrap();
        for (est, tru) in fit.model.coefficients().iter().zip(&truth) {
            assert!((est - tru).abs() < 1e-9, "{est} vs {tru}");
        }
        assert!((fit.model.intercept() - 5.0).abs() < 1e-9);
        assert!(fit.r_squared > 0.9999);
        assert!(fit.residual_std < 1e-9);
    }

    #[test]
    fn recovers_coefficients_under_noise() {
        let truth = [2.0, -1.5];
        let mut rng = StdRng::seed_from_u64(7);
        let xs: Vec<Vec<f64>> = (0..2000)
            .map(|_| {
                vec![
                    randx::standard_normal(&mut rng),
                    randx::standard_normal(&mut rng),
                ]
            })
            .collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| {
                truth.iter().zip(x).map(|(a, v)| a * v).sum::<f64>()
                    + randx::normal(&mut rng, 0.0, 0.5)
            })
            .collect();
        let fit = fit_ols(&xs, &ys).unwrap();
        for (est, tru) in fit.model.coefficients().iter().zip(&truth) {
            assert!((est - tru).abs() < 0.05, "{est} vs {tru}");
        }
        assert!((fit.residual_std - 0.5).abs() < 0.05);
        assert!(fit.r_squared > 0.9);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(matches!(fit_ols(&[], &[]), Err(ModelError::Empty)));
        assert!(fit_ols(&[vec![1.0]], &[1.0, 2.0]).is_err());
        assert!(matches!(
            fit_ols(&[vec![1.0]], &[1.0]),
            Err(ModelError::InsufficientData { .. })
        ));
    }

    #[test]
    fn detects_collinearity() {
        // Second attribute is exactly twice the first.
        let xs: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64, 2.0 * i as f64]).collect();
        let ys: Vec<f64> = (0..10).map(|i| i as f64).collect();
        assert_eq!(fit_ols(&xs, &ys).unwrap_err(), ModelError::Singular);
    }

    #[test]
    fn ridge_handles_collinearity() {
        let xs: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64, 2.0 * i as f64]).collect();
        let ys: Vec<f64> = (0..10).map(|i| i as f64).collect();
        assert_eq!(fit_ols(&xs, &ys).unwrap_err(), ModelError::Singular);
        let fit = fit_ridge(&xs, &ys, 0.01).unwrap();
        // Predicts on the collinear manifold despite unidentifiable betas.
        for i in 0..10 {
            let pred = fit.model.evaluate(&[i as f64, 2.0 * i as f64]);
            assert!((pred - i as f64).abs() < 0.1, "i={i} pred={pred}");
        }
        assert!(fit.r_squared > 0.99);
    }

    #[test]
    fn ridge_at_zero_matches_ols() {
        let mut rng = StdRng::seed_from_u64(3);
        let xs: Vec<Vec<f64>> = (0..50)
            .map(|_| {
                vec![
                    randx::standard_normal(&mut rng),
                    randx::standard_normal(&mut rng),
                ]
            })
            .collect();
        let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x[0] - x[1] + 0.5).collect();
        let ols = fit_ols(&xs, &ys).unwrap();
        let ridge = fit_ridge(&xs, &ys, 0.0).unwrap();
        for (a, b) in ols
            .model
            .coefficients()
            .iter()
            .zip(ridge.model.coefficients())
        {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn ridge_shrinks_coefficients() {
        let mut rng = StdRng::seed_from_u64(5);
        let xs: Vec<Vec<f64>> = (0..100)
            .map(|_| vec![randx::standard_normal(&mut rng)])
            .collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| 3.0 * x[0] + randx::normal(&mut rng, 0.0, 0.1))
            .collect();
        let small = fit_ridge(&xs, &ys, 0.1).unwrap();
        let large = fit_ridge(&xs, &ys, 100.0).unwrap();
        assert!(
            large.model.coefficients()[0].abs() < small.model.coefficients()[0].abs(),
            "larger lambda must shrink"
        );
    }

    #[test]
    fn ridge_validates_lambda() {
        let xs = vec![vec![1.0], vec![2.0]];
        let ys = vec![1.0, 2.0];
        assert!(matches!(
            fit_ridge(&xs, &ys, -1.0),
            Err(ModelError::InvalidValue(_))
        ));
        assert!(matches!(
            fit_ridge(&xs, &ys, f64::NAN),
            Err(ModelError::InvalidValue(_))
        ));
    }

    proptest! {
        #[test]
        fn prop_recovers_1d_line(a in -10.0f64..10.0, b in -10.0f64..10.0) {
            let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
            let ys: Vec<f64> = (0..20).map(|i| a * i as f64 + b).collect();
            let fit = fit_ols(&xs, &ys).unwrap();
            prop_assert!((fit.model.coefficients()[0] - a).abs() < 1e-7);
            prop_assert!((fit.model.intercept() - b).abs() < 1e-6);
        }
    }
}
