//! Linear time-invariant models (paper §2.1) and their progressive
//! decomposition (§3.1).

mod fico;
mod hps;
mod progressive;
mod regression;

pub use fico::{Applicant, ApplicantGenerator, FicoModel};
pub use hps::{hps_risk_grid, HpsRiskModel, TemporalHpsModel, HPS_COEFFICIENTS};
pub use progressive::{ProgressiveLinearModel, StageBound};
pub use regression::{fit_ols, fit_ridge, OlsFit};

use crate::error::ModelError;
use std::fmt;

/// A linear model `Y = a_1 X_1 + a_2 X_2 + ... + a_n X_n + b`.
///
/// This is the paper's linear time-invariant form; the intercept `b` is 0
/// for the HPS risk model and 900 for the FICO score.
///
/// # Examples
///
/// ```
/// use mbir_models::linear::LinearModel;
///
/// let m = LinearModel::new(vec![2.0, -1.0], 1.0).unwrap();
/// assert_eq!(m.evaluate(&[3.0, 4.0]), 3.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LinearModel {
    coefficients: Vec<f64>,
    intercept: f64,
}

impl LinearModel {
    /// Creates a model from coefficients and intercept.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Empty`] for zero terms and
    /// [`ModelError::InvalidValue`] for non-finite values.
    pub fn new(coefficients: Vec<f64>, intercept: f64) -> Result<Self, ModelError> {
        if coefficients.is_empty() {
            return Err(ModelError::Empty);
        }
        if !intercept.is_finite() || coefficients.iter().any(|c| !c.is_finite()) {
            return Err(ModelError::InvalidValue(
                "coefficients and intercept must be finite".to_owned(),
            ));
        }
        Ok(LinearModel {
            coefficients,
            intercept,
        })
    }

    /// Number of attributes (model arity).
    pub fn arity(&self) -> usize {
        self.coefficients.len()
    }

    /// The coefficients `a_1..a_n`.
    pub fn coefficients(&self) -> &[f64] {
        &self.coefficients
    }

    /// The intercept `b`.
    pub fn intercept(&self) -> f64 {
        self.intercept
    }

    /// Evaluates the model on an attribute vector.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != arity()`; use [`LinearModel::try_evaluate`] for
    /// a fallible variant.
    pub fn evaluate(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.arity(), "attribute count mismatch");
        self.intercept
            + self
                .coefficients
                .iter()
                .zip(x)
                .map(|(a, v)| a * v)
                .sum::<f64>()
    }

    /// Fallible evaluation.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::ArityMismatch`] for a wrong-length input.
    pub fn try_evaluate(&self, x: &[f64]) -> Result<f64, ModelError> {
        if x.len() != self.arity() {
            return Err(ModelError::ArityMismatch {
                expected: self.arity(),
                actual: x.len(),
            });
        }
        Ok(self.evaluate(x))
    }

    /// Interval image of the model over an attribute box: given per-attribute
    /// `[lo, hi]` ranges, returns the exact `[min, max]` of the model over
    /// the box (coefficient sign picks the extremal corner). This is the
    /// bound used to prune pyramid regions soundly.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::ArityMismatch`] for a wrong-length input.
    pub fn bound_over_box(&self, ranges: &[(f64, f64)]) -> Result<(f64, f64), ModelError> {
        if ranges.len() != self.arity() {
            return Err(ModelError::ArityMismatch {
                expected: self.arity(),
                actual: ranges.len(),
            });
        }
        let mut lo = self.intercept;
        let mut hi = self.intercept;
        for (a, (rlo, rhi)) in self.coefficients.iter().zip(ranges) {
            if *a >= 0.0 {
                lo += a * rlo;
                hi += a * rhi;
            } else {
                lo += a * rhi;
                hi += a * rlo;
            }
        }
        Ok((lo, hi))
    }

    /// Cost of one evaluation in multiply-adds (`n` in the paper's `O(nN)`).
    pub fn eval_cost(&self) -> usize {
        self.arity()
    }
}

impl fmt::Display for LinearModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Y = ")?;
        for (i, a) in self.coefficients.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            write!(f, "{a:.4}*X{}", i + 1)?;
        }
        if self.intercept != 0.0 {
            write!(f, " + {:.4}", self.intercept)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_validates() {
        assert!(matches!(
            LinearModel::new(vec![], 0.0),
            Err(ModelError::Empty)
        ));
        assert!(matches!(
            LinearModel::new(vec![f64::NAN], 0.0),
            Err(ModelError::InvalidValue(_))
        ));
        assert!(matches!(
            LinearModel::new(vec![1.0], f64::INFINITY),
            Err(ModelError::InvalidValue(_))
        ));
    }

    #[test]
    fn evaluate_matches_formula() {
        let m = LinearModel::new(vec![0.443, 0.222, 0.153, 0.183], 0.0).unwrap();
        let x = [100.0, 50.0, 30.0, 1200.0];
        let expected = 0.443 * 100.0 + 0.222 * 50.0 + 0.153 * 30.0 + 0.183 * 1200.0;
        assert!((m.evaluate(&x) - expected).abs() < 1e-12);
    }

    #[test]
    fn try_evaluate_checks_arity() {
        let m = LinearModel::new(vec![1.0, 2.0], 0.0).unwrap();
        assert!(m.try_evaluate(&[1.0]).is_err());
        assert_eq!(m.try_evaluate(&[1.0, 1.0]).unwrap(), 3.0);
    }

    #[test]
    fn box_bound_is_exact_on_corners() {
        let m = LinearModel::new(vec![2.0, -3.0], 1.0).unwrap();
        let (lo, hi) = m.bound_over_box(&[(0.0, 1.0), (0.0, 1.0)]).unwrap();
        // Corners: 1, 3, -2, 0 -> min -2, max 3.
        assert_eq!(lo, -2.0);
        assert_eq!(hi, 3.0);
        assert!(m.bound_over_box(&[(0.0, 1.0)]).is_err());
    }

    #[test]
    fn display_renders_equation() {
        let m = LinearModel::new(vec![1.0, -2.0], 0.5).unwrap();
        let s = m.to_string();
        assert!(s.contains("X1"));
        assert!(s.contains("X2"));
        assert!(s.contains("0.5"));
    }
}
