//! Progressive decomposition of a linear model (paper §3.1).
//!
//! "If |a1, a2| >> |a3, a4| then a coarser representation of the model ...
//! will be R*(x,y,t) ~ a1 X1 + a2 X2. Consequently R and R* represent two
//! levels of progressive models. In general, the generation of progressively
//! coarser representation of a model can be accomplished by analyzing the
//! relative contribution of each parameter to the overall model."
//!
//! Terms are ranked by contribution `|a_i| * range(X_i)` — the coefficient
//! alone is meaningless without the attribute's dynamic range. Every stage
//! carries a *residual bound*: the largest amount the unevaluated suffix can
//! move the score, so stage evaluations return sound intervals and pruning
//! on them never changes the exact top-K (verified by property tests and by
//! the engine's equivalence tests).

use crate::error::ModelError;
use crate::linear::LinearModel;

/// The interval produced by evaluating a prefix of the model's terms.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageBound {
    /// Score lower bound.
    pub lo: f64,
    /// Score upper bound.
    pub hi: f64,
    /// Multiply-adds spent so far on this tuple.
    pub cost: usize,
}

impl StageBound {
    /// Midpoint estimate.
    pub fn mid(&self) -> f64 {
        (self.lo + self.hi) / 2.0
    }

    /// Interval width.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }
}

/// A linear model decomposed into contribution-ranked progressive stages.
///
/// # Examples
///
/// ```
/// use mbir_models::linear::{LinearModel, ProgressiveLinearModel};
///
/// let model = LinearModel::new(vec![0.01, 5.0, 0.2], 0.0).unwrap();
/// let ranges = vec![(0.0, 1.0), (0.0, 1.0), (0.0, 1.0)];
/// let prog = ProgressiveLinearModel::new(model, &ranges).unwrap();
/// // The dominant term (a2 = 5.0) is evaluated first.
/// assert_eq!(prog.term_order()[0], 1);
/// let b = prog.evaluate_stage(&[0.5, 0.5, 0.5], 1);
/// assert!(b.lo <= 2.6 && 2.6 <= b.hi);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ProgressiveLinearModel {
    model: LinearModel,
    ranges: Vec<(f64, f64)>,
    /// Attribute indexes in descending contribution order.
    order: Vec<usize>,
    /// `residual[j]` = max possible |suffix contribution| after evaluating
    /// the first `j` ordered terms, relative to the suffix midpoint.
    residual: Vec<f64>,
    /// Midpoint contribution of the suffix after `j` terms (center of the
    /// unevaluated mass, so intervals are tight).
    suffix_mid: Vec<f64>,
}

impl ProgressiveLinearModel {
    /// Decomposes `model` given per-attribute value ranges observed on (a
    /// sample of) the archive.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::ArityMismatch`] when `ranges` disagrees with
    /// the model arity and [`ModelError::InvalidValue`] for inverted or
    /// non-finite ranges.
    pub fn new(model: LinearModel, ranges: &[(f64, f64)]) -> Result<Self, ModelError> {
        if ranges.len() != model.arity() {
            return Err(ModelError::ArityMismatch {
                expected: model.arity(),
                actual: ranges.len(),
            });
        }
        for (lo, hi) in ranges {
            if !lo.is_finite() || !hi.is_finite() || lo > hi {
                return Err(ModelError::InvalidValue(format!(
                    "invalid attribute range [{lo}, {hi}]"
                )));
            }
        }
        let n = model.arity();
        let mut order: Vec<usize> = (0..n).collect();
        let contribution = |i: usize| {
            let (lo, hi) = ranges[i];
            model.coefficients()[i].abs() * (hi - lo)
        };
        order.sort_by(|&i, &j| contribution(j).total_cmp(&contribution(i)));

        // Suffix interval of term i over its range: a_i * [lo, hi] (sign
        // handled); accumulate suffix midpoints and half-widths back-to-front.
        let mut residual = vec![0.0; n + 1];
        let mut suffix_mid = vec![0.0; n + 1];
        for j in (0..n).rev() {
            let i = order[j];
            let a = model.coefficients()[i];
            let (lo, hi) = ranges[i];
            let (t_lo, t_hi) = if a >= 0.0 {
                (a * lo, a * hi)
            } else {
                (a * hi, a * lo)
            };
            suffix_mid[j] = suffix_mid[j + 1] + (t_lo + t_hi) / 2.0;
            residual[j] = residual[j + 1] + (t_hi - t_lo) / 2.0;
        }
        Ok(ProgressiveLinearModel {
            model,
            ranges: ranges.to_vec(),
            order,
            residual,
            suffix_mid,
        })
    }

    /// The underlying exact model.
    pub fn model(&self) -> &LinearModel {
        &self.model
    }

    /// Attribute ranges the decomposition assumed.
    pub fn ranges(&self) -> &[(f64, f64)] {
        &self.ranges
    }

    /// Attribute indexes in evaluation (descending contribution) order.
    pub fn term_order(&self) -> &[usize] {
        &self.order
    }

    /// Number of stages (= model arity; stage `j` evaluates `j` terms;
    /// stage `arity()` is exact).
    pub fn stages(&self) -> usize {
        self.model.arity()
    }

    /// Evaluates the first `terms` ordered terms of the model on `x`,
    /// returning a sound score interval.
    ///
    /// Soundness requires each `x[i]` to lie inside the range supplied at
    /// construction; out-of-range values are clamped into it (keeping the
    /// interval sound for the clamped value, and pragmatic for stragglers
    /// beyond the calibration sample).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != arity` or `terms > stages()`.
    pub fn evaluate_stage(&self, x: &[f64], terms: usize) -> StageBound {
        assert_eq!(x.len(), self.model.arity(), "attribute count mismatch");
        assert!(terms <= self.stages(), "stage out of range");
        let mut partial = self.model.intercept();
        for &i in &self.order[..terms] {
            let (lo, hi) = self.ranges[i];
            partial += self.model.coefficients()[i] * x[i].clamp(lo, hi);
        }
        let center = partial + self.suffix_mid[terms];
        let half = self.residual[terms];
        StageBound {
            lo: center - half,
            hi: center + half,
            cost: terms,
        }
    }

    /// Exact evaluation (all terms).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != arity`.
    pub fn evaluate_exact(&self, x: &[f64]) -> f64 {
        self.model.evaluate(x)
    }

    /// The coarse model keeping only the first `terms` ordered terms — the
    /// literal `R*` of the paper. Coefficients of dropped terms are zero.
    ///
    /// # Panics
    ///
    /// Panics if `terms == 0` or `terms > stages()`.
    pub fn truncated(&self, terms: usize) -> LinearModel {
        assert!(terms > 0 && terms <= self.stages(), "stage out of range");
        let mut coeffs = vec![0.0; self.model.arity()];
        for &i in &self.order[..terms] {
            coeffs[i] = self.model.coefficients()[i];
        }
        LinearModel::new(coeffs, self.model.intercept()).expect("built from a valid model")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn hps_like() -> ProgressiveLinearModel {
        let model = LinearModel::new(vec![0.443, 0.222, 0.153, 0.183], 0.0).unwrap();
        // Bands 0..255, elevation 0..3000 — elevation dominates by range.
        let ranges = vec![(0.0, 255.0), (0.0, 255.0), (0.0, 255.0), (0.0, 3000.0)];
        ProgressiveLinearModel::new(model, &ranges).unwrap()
    }

    #[test]
    fn ordering_uses_coefficient_times_range() {
        let p = hps_like();
        // 0.183 * 3000 = 549 dominates 0.443 * 255 = 113.
        assert_eq!(p.term_order()[0], 3);
        assert_eq!(p.term_order()[1], 0);
    }

    #[test]
    fn stage_zero_bounds_whole_model_range() {
        let p = hps_like();
        let x = [100.0, 50.0, 200.0, 1500.0];
        let b = p.evaluate_stage(&x, 0);
        let exact = p.evaluate_exact(&x);
        assert!(b.lo <= exact && exact <= b.hi);
        assert_eq!(b.cost, 0);
        let (lo, hi) = p
            .model()
            .bound_over_box(p.ranges())
            .expect("ranges match arity");
        assert!((b.lo - lo).abs() < 1e-9);
        assert!((b.hi - hi).abs() < 1e-9);
    }

    #[test]
    fn intervals_nest_and_converge() {
        let p = hps_like();
        let x = [100.0, 50.0, 200.0, 1500.0];
        let exact = p.evaluate_exact(&x);
        let mut prev_width = f64::INFINITY;
        for stage in 0..=p.stages() {
            let b = p.evaluate_stage(&x, stage);
            assert!(
                b.lo <= exact + 1e-9 && exact <= b.hi + 1e-9,
                "stage {stage}"
            );
            assert!(b.width() <= prev_width + 1e-9, "widths must shrink");
            prev_width = b.width();
        }
        let last = p.evaluate_stage(&x, p.stages());
        assert!(last.width() < 1e-9, "final stage is exact");
        assert!((last.mid() - exact).abs() < 1e-9);
    }

    #[test]
    fn truncated_matches_paper_formula() {
        let p = hps_like();
        let coarse = p.truncated(2);
        // Keeps terms 3 (elevation) and 0 (band 4).
        assert_eq!(coarse.coefficients()[3], 0.183);
        assert_eq!(coarse.coefficients()[0], 0.443);
        assert_eq!(coarse.coefficients()[1], 0.0);
        assert_eq!(coarse.coefficients()[2], 0.0);
    }

    #[test]
    fn constructor_validates() {
        let m = LinearModel::new(vec![1.0, 2.0], 0.0).unwrap();
        assert!(ProgressiveLinearModel::new(m.clone(), &[(0.0, 1.0)]).is_err());
        assert!(matches!(
            ProgressiveLinearModel::new(m, &[(1.0, 0.0), (0.0, 1.0)]),
            Err(ModelError::InvalidValue(_))
        ));
    }

    #[test]
    fn out_of_range_inputs_are_clamped() {
        let p = hps_like();
        let b = p.evaluate_stage(&[500.0, 0.0, 0.0, 0.0], p.stages());
        // 500 clamps to 255.
        assert!((b.mid() - 0.443 * 255.0).abs() < 1e-9);
    }

    proptest! {
        #[test]
        fn prop_every_stage_brackets_exact(
            coeffs in proptest::collection::vec(-5.0f64..5.0, 1..8),
            seed in 0u64..500,
        ) {
            let n = coeffs.len();
            let model = LinearModel::new(coeffs, 0.3).unwrap();
            let ranges: Vec<(f64, f64)> = (0..n)
                .map(|i| {
                    let w = ((seed + i as u64) % 7 + 1) as f64;
                    (-w, w * 2.0)
                })
                .collect();
            let p = ProgressiveLinearModel::new(model, &ranges).unwrap();
            // A point inside the box.
            let x: Vec<f64> = ranges
                .iter()
                .enumerate()
                .map(|(i, (lo, hi))| lo + (hi - lo) * (((seed as usize + i * 13) % 10) as f64 / 9.0))
                .collect();
            let exact = p.evaluate_exact(&x);
            for stage in 0..=p.stages() {
                let b = p.evaluate_stage(&x, stage);
                prop_assert!(b.lo <= exact + 1e-9 && exact <= b.hi + 1e-9);
            }
        }
    }
}
