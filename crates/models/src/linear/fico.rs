//! The FICO-style credit-scoring model (paper §2.1):
//!
//! > `FICO = 900 - a1 X1 - ... - aN XN` where the attributes include late
//! > payments, the amount of time credit has been established, utilization,
//! > length of time at present residence, employment history, and negative
//! > credit information; scores range 300–900, with P(foreclosure) < 2% above
//! > 680 and 8% below 620.

use crate::error::ModelError;
use crate::linear::LinearModel;
use mbir_archive::randx;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A credit applicant record over the six attribute families the paper
/// lists.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Applicant {
    /// Number of late payments on record.
    pub late_payments: f64,
    /// Years since the first credit line.
    pub credit_age_years: f64,
    /// Credit used / credit available, in `[0, 1]`.
    pub utilization: f64,
    /// Years at present residence.
    pub residence_years: f64,
    /// Gaps / instability in employment history (0 = stable).
    pub employment_gaps: f64,
    /// Count of bankruptcies, charge-offs, collections.
    pub derogatories: f64,
}

impl Applicant {
    /// The attribute vector in model order.
    pub fn to_vector(self) -> [f64; 6] {
        [
            self.late_payments,
            self.credit_age_years,
            self.utilization,
            self.residence_years,
            self.employment_gaps,
            self.derogatories,
        ]
    }
}

/// The scoring model `score = 900 - Σ a_i X_i`, clamped to `[300, 900]`.
///
/// Note the sign convention: *protective* attributes (credit age, residence
/// stability) carry negative `a_i` so they add to the score.
///
/// # Examples
///
/// ```
/// use mbir_models::linear::{Applicant, FicoModel};
///
/// let model = FicoModel::standard();
/// let clean = Applicant {
///     late_payments: 0.0, credit_age_years: 20.0, utilization: 0.1,
///     residence_years: 10.0, employment_gaps: 0.0, derogatories: 0.0,
/// };
/// assert!(model.score(&clean) > 750.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FicoModel {
    penalties: LinearModel,
}

impl FicoModel {
    /// A standard penalty weighting over the six attributes.
    pub fn standard() -> Self {
        // (late, credit_age, utilization, residence, employment, derogs).
        FicoModel {
            penalties: LinearModel::new(vec![22.0, -4.0, 120.0, -2.5, 15.0, 70.0], 0.0)
                .expect("standard weights are valid"),
        }
    }

    /// A model with custom penalty weights `a_1..a_6`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidValue`] for non-finite weights.
    pub fn with_penalties(weights: [f64; 6]) -> Result<Self, ModelError> {
        Ok(FicoModel {
            penalties: LinearModel::new(weights.to_vec(), 0.0)?,
        })
    }

    /// The penalty sub-model (the `Σ a_i X_i` part).
    pub fn penalties(&self) -> &LinearModel {
        &self.penalties
    }

    /// The applicant's score, clamped to the 300–900 published range.
    pub fn score(&self, applicant: &Applicant) -> f64 {
        (900.0 - self.penalties.evaluate(&applicant.to_vector())).clamp(300.0, 900.0)
    }

    /// P(foreclosure | score), a logistic curve anchored to the paper's
    /// figures: <2% above 680 and 8% below 620.
    pub fn foreclosure_probability(&self, score: f64) -> f64 {
        // p(s) = 1 / (1 + exp(k (s - s0))); solving p(680) = 0.02 and
        // p(620) = 0.08 gives k ≈ 0.0451, s0 ≈ 593.6.
        let k = 0.045_1;
        let s0 = 593.6;
        1.0 / (1.0 + (k * (score - s0)).exp())
    }
}

/// Seeded generator of synthetic applicant populations with realistic
/// attribute couplings (risky applicants tend to be risky on several axes).
#[derive(Debug, Clone)]
pub struct ApplicantGenerator {
    seed: u64,
}

impl ApplicantGenerator {
    /// Creates a generator.
    pub fn new(seed: u64) -> Self {
        ApplicantGenerator { seed }
    }

    /// Generates `n` applicants.
    pub fn generate(&self, n: usize) -> Vec<Applicant> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        (0..n)
            .map(|_| {
                // Latent riskiness couples the attributes.
                let risk: f64 = rng.random();
                let late = randx::poisson(&mut rng, 4.0 * risk) as f64;
                Applicant {
                    late_payments: late,
                    credit_age_years: (randx::normal(&mut rng, 18.0 * (1.0 - risk) + 2.0, 4.0))
                        .max(0.0),
                    utilization: (risk * 0.8 + 0.2 * rng.random::<f64>()).clamp(0.0, 1.0),
                    residence_years: (randx::exponential(&mut rng, 0.2) * (1.2 - risk)).max(0.0),
                    employment_gaps: randx::poisson(&mut rng, 2.0 * risk) as f64,
                    derogatories: randx::poisson(&mut rng, 1.2 * risk * risk) as f64,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clean() -> Applicant {
        Applicant {
            late_payments: 0.0,
            credit_age_years: 25.0,
            utilization: 0.05,
            residence_years: 12.0,
            employment_gaps: 0.0,
            derogatories: 0.0,
        }
    }

    fn risky() -> Applicant {
        Applicant {
            late_payments: 8.0,
            credit_age_years: 1.0,
            utilization: 0.95,
            residence_years: 0.5,
            employment_gaps: 4.0,
            derogatories: 2.0,
        }
    }

    #[test]
    fn scores_order_applicants_sensibly() {
        let m = FicoModel::standard();
        let good = m.score(&clean());
        let bad = m.score(&risky());
        assert!(good > 750.0, "clean applicant scored {good}");
        assert!(bad < 620.0, "risky applicant scored {bad}");
        assert!(good > bad);
    }

    #[test]
    fn scores_are_clamped_to_published_range() {
        let m = FicoModel::standard();
        let catastrophic = Applicant {
            late_payments: 100.0,
            credit_age_years: 0.0,
            utilization: 1.0,
            residence_years: 0.0,
            employment_gaps: 50.0,
            derogatories: 20.0,
        };
        assert_eq!(m.score(&catastrophic), 300.0);
        let saintly = Applicant {
            credit_age_years: 80.0,
            residence_years: 60.0,
            ..clean()
        };
        assert_eq!(m.score(&saintly), 900.0);
    }

    #[test]
    fn foreclosure_anchors_match_paper() {
        let m = FicoModel::standard();
        assert!(
            m.foreclosure_probability(680.0) < 0.021,
            "paper: <2% above 680"
        );
        assert!(
            m.foreclosure_probability(620.0) >= 0.075,
            "paper: 8% below 620"
        );
        // Monotone decreasing in score.
        assert!(m.foreclosure_probability(500.0) > m.foreclosure_probability(700.0));
    }

    #[test]
    fn generator_is_deterministic_and_spread() {
        let g = ApplicantGenerator::new(5);
        let a = g.generate(500);
        assert_eq!(a, ApplicantGenerator::new(5).generate(500));
        let m = FicoModel::standard();
        let scores: Vec<f64> = a.iter().map(|x| m.score(x)).collect();
        let lo = scores.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(lo < 620.0, "population should include subprime, min {lo}");
        assert!(hi > 800.0, "population should include prime, max {hi}");
    }

    #[test]
    fn generated_attributes_are_physical() {
        for a in ApplicantGenerator::new(9).generate(300) {
            assert!(a.late_payments >= 0.0);
            assert!((0.0..=1.0).contains(&a.utilization));
            assert!(a.credit_age_years >= 0.0);
            assert!(a.residence_years >= 0.0);
        }
    }
}
