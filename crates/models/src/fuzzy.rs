//! Fuzzy memberships and rule sets — the "fuzzy and/or probabilistic rules
//! specified within the model" (paper §3) that knowledge models compile to,
//! and the score algebra SPROC-style composite queries operate over.

use crate::error::ModelError;
use std::fmt;

/// A fuzzy membership function mapping a raw value to a degree in `[0, 1]`.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Membership {
    /// 1 inside `[lo, hi]`, falling linearly to 0 over `ramp` outside.
    Trapezoid {
        /// Lower edge of the plateau.
        lo: f64,
        /// Upper edge of the plateau.
        hi: f64,
        /// Width of the linear ramps on each side.
        ramp: f64,
    },
    /// Smooth step rising through `center` with steepness `slope` (positive
    /// slope: larger values → higher degree).
    Sigmoid {
        /// Midpoint (degree 0.5).
        center: f64,
        /// Steepness; sign sets direction.
        slope: f64,
    },
    /// 1 iff the value is at or above the threshold (crisp).
    AtLeast(f64),
    /// 1 iff the value is at or below the threshold (crisp).
    AtMost(f64),
}

impl Membership {
    /// The membership degree of `value`.
    pub fn degree(&self, value: f64) -> f64 {
        match self {
            Membership::Trapezoid { lo, hi, ramp } => {
                if value >= *lo && value <= *hi {
                    1.0
                } else if *ramp <= 0.0 {
                    0.0
                } else if value < *lo {
                    (1.0 - (lo - value) / ramp).max(0.0)
                } else {
                    (1.0 - (value - hi) / ramp).max(0.0)
                }
            }
            Membership::Sigmoid { center, slope } => {
                1.0 / (1.0 + (-(value - center) * slope).exp())
            }
            Membership::AtLeast(t) => {
                if value >= *t {
                    1.0
                } else {
                    0.0
                }
            }
            Membership::AtMost(t) => {
                if value <= *t {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }
}

impl fmt::Display for Membership {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Membership::Trapezoid { lo, hi, ramp } => {
                write!(f, "trapezoid[{lo}, {hi}] ±{ramp}")
            }
            Membership::Sigmoid { center, slope } => write!(f, "sigmoid({center}, {slope})"),
            Membership::AtLeast(t) => write!(f, ">= {t}"),
            Membership::AtMost(t) => write!(f, "<= {t}"),
        }
    }
}

/// T-norm used to combine antecedent degrees.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TNorm {
    /// Gödel t-norm (minimum) — the classical fuzzy AND.
    #[default]
    Min,
    /// Product t-norm — probabilistic AND.
    Product,
}

impl TNorm {
    /// Combines two degrees.
    pub fn combine(&self, a: f64, b: f64) -> f64 {
        match self {
            TNorm::Min => a.min(b),
            TNorm::Product => a * b,
        }
    }

    /// Combines many degrees (identity 1).
    pub fn combine_all<I: IntoIterator<Item = f64>>(&self, degrees: I) -> f64 {
        degrees.into_iter().fold(1.0, |acc, d| self.combine(acc, d))
    }
}

/// One fuzzy rule: a weighted conjunction of per-attribute memberships.
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzyRule {
    name: String,
    antecedents: Vec<(usize, Membership)>,
    weight: f64,
}

impl FuzzyRule {
    /// Creates a rule over `(attribute index, membership)` antecedents.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Empty`] with no antecedents, or
    /// [`ModelError::InvalidValue`] for a non-positive weight.
    pub fn new(
        name: impl Into<String>,
        antecedents: Vec<(usize, Membership)>,
        weight: f64,
    ) -> Result<Self, ModelError> {
        if antecedents.is_empty() {
            return Err(ModelError::Empty);
        }
        if weight <= 0.0 || weight.is_nan() || !weight.is_finite() {
            return Err(ModelError::InvalidValue(format!(
                "rule weight must be positive, got {weight}"
            )));
        }
        Ok(FuzzyRule {
            name: name.into(),
            antecedents,
            weight,
        })
    }

    /// The rule name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The rule weight.
    pub fn weight(&self) -> f64 {
        self.weight
    }

    /// Degree of this rule on an attribute vector (missing attributes score
    /// zero, which poisons the conjunction — intended).
    pub fn degree(&self, attributes: &[f64], tnorm: TNorm) -> f64 {
        tnorm.combine_all(
            self.antecedents
                .iter()
                .map(|(idx, m)| attributes.get(*idx).map(|v| m.degree(*v)).unwrap_or(0.0)),
        )
    }
}

/// A weighted rule set scoring attribute vectors in `[0, 1]`.
///
/// # Examples
///
/// ```
/// use mbir_models::fuzzy::{FuzzyRule, Membership, RuleSet, TNorm};
///
/// let rule = FuzzyRule::new("hot", vec![(0, Membership::AtLeast(25.0))], 1.0)?;
/// let rules = RuleSet::new(vec![rule], TNorm::Min)?;
/// assert_eq!(rules.score(&[30.0]), 1.0);
/// assert_eq!(rules.score(&[20.0]), 0.0);
/// # Ok::<(), mbir_models::ModelError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RuleSet {
    rules: Vec<FuzzyRule>,
    tnorm: TNorm,
}

impl RuleSet {
    /// Creates a rule set.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Empty`] when `rules` is empty.
    pub fn new(rules: Vec<FuzzyRule>, tnorm: TNorm) -> Result<Self, ModelError> {
        if rules.is_empty() {
            return Err(ModelError::Empty);
        }
        Ok(RuleSet { rules, tnorm })
    }

    /// The rules.
    pub fn rules(&self) -> &[FuzzyRule] {
        &self.rules
    }

    /// The weighted-average rule degree in `[0, 1]`.
    pub fn score(&self, attributes: &[f64]) -> f64 {
        let total_weight: f64 = self.rules.iter().map(FuzzyRule::weight).sum();
        self.rules
            .iter()
            .map(|r| r.weight() * r.degree(attributes, self.tnorm))
            .sum::<f64>()
            / total_weight
    }

    /// Per-rule degrees, for explanation output.
    pub fn explain(&self, attributes: &[f64]) -> Vec<(&str, f64)> {
        self.rules
            .iter()
            .map(|r| (r.name(), r.degree(attributes, self.tnorm)))
            .collect()
    }

    /// Calibrates the rule weights from labelled examples
    /// `(attributes, target score)` by least squares over the per-rule
    /// degrees, clamping weights to be positive — the knowledge-model
    /// analogue of §2.1's "weights can be trained by using historical
    /// data". Returns a new rule set; memberships are untouched.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InsufficientData`] with fewer samples than
    /// rules and [`ModelError::Singular`] when the rule degrees are
    /// collinear across all samples.
    pub fn calibrate_weights(&self, samples: &[(Vec<f64>, f64)]) -> Result<RuleSet, ModelError> {
        let r = self.rules.len();
        if samples.len() < r {
            return Err(ModelError::InsufficientData {
                samples: samples.len(),
                parameters: r,
            });
        }
        // Least squares on the degree matrix (no intercept: a rule set
        // scoring zero degrees should score zero).
        let degrees: Vec<Vec<f64>> = samples
            .iter()
            .map(|(x, _)| {
                self.rules
                    .iter()
                    .map(|rule| rule.degree(x, self.tnorm))
                    .collect()
            })
            .collect();
        let targets: Vec<f64> = samples.iter().map(|(_, y)| *y).collect();
        let d = crate::linalg::Matrix::from_rows(&degrees)?;
        let dt = d.transpose();
        let dtd = dt.mul(&d)?;
        let dty = dt.mul_vec(&targets)?;
        let weights = dtd.solve(&dty)?;
        let rules: Vec<FuzzyRule> = self
            .rules
            .iter()
            .zip(&weights)
            .map(|(rule, w)| {
                FuzzyRule::new(
                    rule.name().to_owned(),
                    rule.antecedents.clone(),
                    w.max(1e-6), // weights stay positive; dead rules fade out
                )
            })
            .collect::<Result<_, _>>()?;
        RuleSet::new(rules, self.tnorm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn trapezoid_shape() {
        let m = Membership::Trapezoid {
            lo: 10.0,
            hi: 20.0,
            ramp: 5.0,
        };
        assert_eq!(m.degree(15.0), 1.0);
        assert_eq!(m.degree(10.0), 1.0);
        assert_eq!(m.degree(20.0), 1.0);
        assert!((m.degree(7.5) - 0.5).abs() < 1e-12);
        assert!((m.degree(22.5) - 0.5).abs() < 1e-12);
        assert_eq!(m.degree(4.9), 0.0);
        assert_eq!(m.degree(25.1), 0.0);
    }

    #[test]
    fn zero_ramp_trapezoid_is_crisp() {
        let m = Membership::Trapezoid {
            lo: 0.0,
            hi: 1.0,
            ramp: 0.0,
        };
        assert_eq!(m.degree(0.5), 1.0);
        assert_eq!(m.degree(1.0001), 0.0);
    }

    #[test]
    fn sigmoid_direction_and_midpoint() {
        let rising = Membership::Sigmoid {
            center: 45.0,
            slope: 0.5,
        };
        assert!((rising.degree(45.0) - 0.5).abs() < 1e-12);
        assert!(rising.degree(60.0) > 0.99);
        assert!(rising.degree(30.0) < 0.01);
        let falling = Membership::Sigmoid {
            center: 45.0,
            slope: -0.5,
        };
        assert!(falling.degree(60.0) < 0.01);
    }

    #[test]
    fn crisp_thresholds() {
        assert_eq!(Membership::AtLeast(45.0).degree(45.0), 1.0);
        assert_eq!(Membership::AtLeast(45.0).degree(44.9), 0.0);
        assert_eq!(Membership::AtMost(10.0).degree(10.0), 1.0);
        assert_eq!(Membership::AtMost(10.0).degree(10.1), 0.0);
    }

    #[test]
    fn tnorms() {
        assert_eq!(TNorm::Min.combine(0.3, 0.7), 0.3);
        assert_eq!(TNorm::Product.combine(0.5, 0.5), 0.25);
        assert_eq!(TNorm::Min.combine_all([0.9, 0.4, 0.6]), 0.4);
        assert_eq!(TNorm::Product.combine_all(std::iter::empty()), 1.0);
    }

    #[test]
    fn rule_validation() {
        assert!(matches!(
            FuzzyRule::new("r", vec![], 1.0),
            Err(ModelError::Empty)
        ));
        assert!(matches!(
            FuzzyRule::new("r", vec![(0, Membership::AtLeast(0.0))], 0.0),
            Err(ModelError::InvalidValue(_))
        ));
        assert!(RuleSet::new(vec![], TNorm::Min).is_err());
    }

    #[test]
    fn missing_attribute_poisons_conjunction() {
        let rule = FuzzyRule::new("r", vec![(5, Membership::AtLeast(0.0))], 1.0).unwrap();
        assert_eq!(rule.degree(&[1.0], TNorm::Min), 0.0);
    }

    #[test]
    fn ruleset_weighted_average() {
        let always = FuzzyRule::new("always", vec![(0, Membership::AtLeast(-1e9))], 3.0).unwrap();
        let never = FuzzyRule::new("never", vec![(0, Membership::AtLeast(1e9))], 1.0).unwrap();
        let rs = RuleSet::new(vec![always, never], TNorm::Min).unwrap();
        assert!((rs.score(&[0.0]) - 0.75).abs() < 1e-12);
        let explained = rs.explain(&[0.0]);
        assert_eq!(explained[0], ("always", 1.0));
        assert_eq!(explained[1], ("never", 0.0));
    }

    #[test]
    fn calibration_recovers_planted_weights() {
        // Two rules over one attribute with non-overlapping supports.
        let low = FuzzyRule::new("low", vec![(0, Membership::AtMost(5.0))], 1.0).unwrap();
        let high = FuzzyRule::new("high", vec![(0, Membership::AtLeast(10.0))], 1.0).unwrap();
        let rs = RuleSet::new(vec![low, high], TNorm::Min).unwrap();
        // Planted: low fires worth 0.2, high worth 0.8 (per unit weight).
        let samples: Vec<(Vec<f64>, f64)> = (0..30)
            .map(|i| {
                let x = (i % 3) as f64 * 7.0; // 0, 7, 14
                let y = if x <= 5.0 {
                    0.2
                } else if x >= 10.0 {
                    0.8
                } else {
                    0.0
                };
                (vec![x], y)
            })
            .collect();
        let calibrated = rs.calibrate_weights(&samples).unwrap();
        let w_low = calibrated.rules()[0].weight();
        let w_high = calibrated.rules()[1].weight();
        assert!((w_low - 0.2).abs() < 1e-9, "{w_low}");
        assert!((w_high - 0.8).abs() < 1e-9, "{w_high}");
    }

    #[test]
    fn calibration_validates() {
        let rule = FuzzyRule::new("r", vec![(0, Membership::AtLeast(0.0))], 1.0).unwrap();
        let rs = RuleSet::new(vec![rule], TNorm::Min).unwrap();
        assert!(matches!(
            rs.calibrate_weights(&[]),
            Err(ModelError::InsufficientData { .. })
        ));
        // All degrees zero -> singular.
        let never = FuzzyRule::new("n", vec![(0, Membership::AtLeast(1e12))], 1.0).unwrap();
        let rs = RuleSet::new(vec![never], TNorm::Min).unwrap();
        let samples = vec![(vec![0.0], 0.5), (vec![1.0], 0.7)];
        assert_eq!(
            rs.calibrate_weights(&samples).unwrap_err(),
            ModelError::Singular
        );
    }

    proptest! {
        #[test]
        fn prop_degrees_in_unit_interval(v in -1e6f64..1e6) {
            let memberships = [
                Membership::Trapezoid { lo: -5.0, hi: 5.0, ramp: 2.0 },
                Membership::Sigmoid { center: 0.0, slope: 0.1 },
                Membership::AtLeast(3.0),
                Membership::AtMost(-3.0),
            ];
            for m in &memberships {
                let d = m.degree(v);
                prop_assert!((0.0..=1.0).contains(&d), "{m} gave {d}");
            }
        }
    }
}
