//! Error type for model construction, calibration and evaluation.

use std::error::Error;
use std::fmt;

/// Error raised by model operations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ModelError {
    /// A model was constructed with no terms / states / nodes.
    Empty,
    /// A coefficient, probability or input was not finite or out of range.
    InvalidValue(String),
    /// Input vector length does not match the model arity.
    ArityMismatch {
        /// Expected attribute count.
        expected: usize,
        /// Supplied attribute count.
        actual: usize,
    },
    /// Calibration had fewer samples than parameters (or none at all).
    InsufficientData {
        /// Samples supplied.
        samples: usize,
        /// Parameters to estimate.
        parameters: usize,
    },
    /// A linear system was singular (collinear attributes).
    Singular,
    /// A named entity (state, node, symbol) was not found.
    Unknown(String),
    /// A graph that must be acyclic had a cycle.
    Cyclic,
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::Empty => write!(f, "model has no terms"),
            ModelError::InvalidValue(what) => write!(f, "invalid value: {what}"),
            ModelError::ArityMismatch { expected, actual } => {
                write!(f, "expected {expected} attributes, got {actual}")
            }
            ModelError::InsufficientData {
                samples,
                parameters,
            } => write!(
                f,
                "calibration needs at least {parameters} samples, got {samples}"
            ),
            ModelError::Singular => write!(f, "singular system: attributes are collinear"),
            ModelError::Unknown(name) => write!(f, "unknown entity: {name}"),
            ModelError::Cyclic => write!(f, "graph contains a cycle"),
        }
    }
}

impl Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(ModelError::Empty.to_string().contains("no terms"));
        assert!(ModelError::ArityMismatch {
            expected: 4,
            actual: 2
        }
        .to_string()
        .contains("4"));
        assert!(ModelError::Singular.to_string().contains("collinear"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ModelError>();
    }
}
