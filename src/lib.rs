#![warn(missing_docs)]
//! # mbir — Model-Based Multi-Modal Information Retrieval
//!
//! Facade crate re-exporting the whole MBIR workspace: a reproduction of
//! *"Model-Based Multi-modal Information Retrieval from Large Archives"*
//! (Li, Chang, Bergman, Smith — ICDCS 2000).
//!
//! The paper's thesis: in scientific and business decision support, the
//! query is a **model** — linear, finite-state, or knowledge/Bayesian — and
//! the answer is the top-K data subsets that optimize it. Executing models
//! **progressively** over **progressively represented data** with
//! **model-specific indexes** turns a full-archive scan into a search that
//! touches orders of magnitude less data.
//!
//! Crate map:
//!
//! * [`mbir_archive`] (re-exported as `archive`) — multi-modal containers + synthetic archives
//! * [`mbir_progressive`] (`progressive`) — wavelets, pyramids, features,
//!   semantics
//! * [`mbir_models`] (`models`) — linear / FSM / Bayesian-knowledge models
//! * [`mbir_index`] (`index`) — Onion, R*-tree, SPROC, scan baselines
//! * [`mbir_core`] (`core`) — the retrieval engine, metrics, workflow

pub use mbir_archive as archive;
pub use mbir_core as core;
pub use mbir_index as index;
pub use mbir_models as models;
pub use mbir_progressive as progressive;
