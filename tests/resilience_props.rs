//! Property tests for the resilience contract.
//!
//! The central property: fault profiles whose every fault heals within
//! the retry budget are *invisible* — the resilient engine returns exactly
//! the fault-free `pyramid_top_k` answer (cells, scores, completeness).
//! And under arbitrary permanent faults the engine never panics and never
//! reports unsound bounds.

use mbir::core::engine::pyramid_top_k;
use mbir::core::lifecycle::CancelToken;
use mbir::core::resilient::{
    resilient_top_k, resilient_top_k_cancellable, BudgetStop, ExecutionBudget,
};
use mbir::core::source::{CellSource, TileSource};
use mbir::models::linear::LinearModel;
use mbir::progressive::pyramid::AggregatePyramid;
use mbir_archive::error::ArchiveError;
use mbir_archive::fault::{FaultProfile, ResilienceConfig, RetryPolicy};
use mbir_archive::grid::Grid2;
use mbir_archive::tile::TileStore;
use proptest::prelude::*;

/// Delegating source that cancels `token` once the inner source has read
/// `after` pages — deterministic page-granular mid-flight cancellation.
struct CancelAfterPages<'a, S: CellSource> {
    inner: &'a S,
    token: CancelToken,
    after: u64,
}

impl<S: CellSource> CellSource for CancelAfterPages<'_, S> {
    fn base_cell(&self, attr: usize, row: usize, col: usize) -> Result<f64, ArchiveError> {
        let v = self.inner.base_cell(attr, row, col);
        if self.inner.pages_read() >= self.after {
            self.token.cancel();
        }
        v
    }
    fn page_of(&self, row: usize, col: usize) -> Option<usize> {
        self.inner.page_of(row, col)
    }
    fn pages_read(&self) -> u64 {
        self.inner.pages_read()
    }
    fn ticks_elapsed(&self) -> u64 {
        self.inner.ticks_elapsed()
    }
}

fn world(
    seed: u64,
    side: usize,
    tile: usize,
) -> (LinearModel, Vec<AggregatePyramid>, Vec<TileStore>) {
    let grids: Vec<Grid2<f64>> = (0..2)
        .map(|i| {
            Grid2::from_fn(side, side, |r, c| {
                let phase = (seed % 13) as f64 * 0.37 + i as f64;
                ((r as f64 / 6.0 + phase).sin() + (c as f64 / 8.0 - phase).cos()) * 30.0
                    + (seed % 7) as f64
            })
        })
        .collect();
    let pyramids = grids.iter().map(AggregatePyramid::build).collect();
    let stores = grids
        .iter()
        .map(|g| TileStore::new(g.clone(), tile).unwrap())
        .collect();
    let w = 0.4 + (seed % 5) as f64 * 0.2;
    (
        LinearModel::new(vec![1.0, w], 0.1).unwrap(),
        pyramids,
        stores,
    )
}

/// A deterministic pseudo-random subset of pages derived from `seed`.
fn fault_pages(seed: u64, page_count: usize) -> Vec<usize> {
    (0..page_count)
        .filter(|p| {
            seed.wrapping_mul(0x9e3779b97f4a7c15)
                .wrapping_add(*p as u64)
                .wrapping_mul(6364136223846793005)
                >> 61
                == 0
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Transient faults that heal within the retry budget leave the
    /// answer bit-identical to the fault-free engine.
    #[test]
    fn prop_healing_faults_are_invisible(
        seed in 0u64..200,
        side_pow in 3u32..6,   // 8..32
        tile in 2usize..9,
        k in 1usize..7,
        fails in 1u32..4,      // heals after 1..3 failures
    ) {
        let side = 1usize << side_pow;
        let (model, pyramids, stores) = world(seed, side, tile);
        let strict = pyramid_top_k(&model, &pyramids, k).unwrap();

        // Every selected page flakes `fails` times; the retry budget is
        // always one larger, so every fault heals within it.
        let profile = fault_pages(seed, stores[0].page_count())
            .into_iter()
            .fold(FaultProfile::new(seed), |p, page| p.transient(page, fails));
        let stores: Vec<TileStore> = stores
            .into_iter()
            .map(|s| {
                s.with_faults(profile.clone())
                    .with_resilience(ResilienceConfig::new(RetryPolicy::retries(fails), None))
            })
            .collect();
        let src = TileSource::new(&stores).unwrap();
        let r = resilient_top_k(&model, &pyramids, k, &src, &ExecutionBudget::unlimited())
            .unwrap();

        prop_assert!(!r.is_degraded());
        prop_assert_eq!(r.completeness, 1.0);
        prop_assert!(r.skipped_pages.is_empty());
        prop_assert_eq!(r.results.len(), strict.results.len());
        for (a, b) in r.results.iter().zip(&strict.results) {
            prop_assert_eq!(a.cell, b.cell);
            prop_assert_eq!(a.score, b.score);
            prop_assert!(a.exact);
        }
    }

    /// Under arbitrary permanent faults the engine never panics, reports
    /// completeness in [0, 1], and every hit's bounds contain its score.
    #[test]
    fn prop_permanent_faults_degrade_soundly(
        seed in 0u64..200,
        side_pow in 3u32..6,
        tile in 2usize..9,
        k in 1usize..7,
    ) {
        let side = 1usize << side_pow;
        let (model, pyramids, stores) = world(seed, side, tile);
        let faulty = fault_pages(seed, stores[0].page_count());
        let profile = faulty
            .iter()
            .fold(FaultProfile::new(seed), |p, page| p.permanent(*page));
        let stores: Vec<TileStore> = stores
            .into_iter()
            .map(|s| s.with_faults(profile.clone()))
            .collect();
        let src = TileSource::new(&stores).unwrap();
        let r = resilient_top_k(&model, &pyramids, k, &src, &ExecutionBudget::unlimited())
            .unwrap();

        prop_assert!((0.0..=1.0).contains(&r.completeness));
        prop_assert!(!r.results.is_empty());
        for hit in &r.results {
            prop_assert!(hit.score.is_finite());
            prop_assert!(hit.bounds.lo <= hit.score && hit.score <= hit.bounds.hi);
        }
        // Skipped pages can only be pages that actually carry faults.
        for page in &r.skipped_pages {
            prop_assert!(faulty.contains(page), "page {} was not faulty", page);
        }
        // No faults selected -> no degradation at all.
        if faulty.is_empty() {
            prop_assert!(!r.is_degraded());
        }
    }

    /// Cancelling at a random page index under random permanent faults
    /// still yields sound bounds, and some reported bound always covers
    /// the true winner's exact score.
    #[test]
    fn prop_cancellation_under_faults_keeps_winner_in_bounds(
        seed in 0u64..200,
        side_pow in 3u32..6,
        tile in 2usize..9,
        k in 1usize..7,
        cancel_after in 0u64..24,
    ) {
        let side = 1usize << side_pow;
        let (model, pyramids, stores) = world(seed, side, tile);
        let strict = pyramid_top_k(&model, &pyramids, k).unwrap();
        let truth = strict.results[0].score;
        let profile = fault_pages(seed, stores[0].page_count())
            .into_iter()
            .fold(FaultProfile::new(seed), |p, page| p.permanent(page));
        let stores: Vec<TileStore> = stores
            .into_iter()
            .map(|s| s.with_faults(profile.clone()))
            .collect();
        let inner = TileSource::new(&stores).unwrap();
        let token = CancelToken::new();
        let src = CancelAfterPages { inner: &inner, token: token.clone(), after: cancel_after };
        let r = resilient_top_k_cancellable(
            &model, &pyramids, k, &src, &ExecutionBudget::unlimited(), &token,
        )
        .unwrap();

        // Under an unlimited budget the only possible early stop is the
        // cancellation itself (a run that finishes before the token trips
        // reports no stop at all).
        prop_assert!(matches!(r.budget_stop, None | Some(BudgetStop::Cancelled)));
        prop_assert!((0.0..=1.0).contains(&r.completeness));
        for hit in &r.results {
            prop_assert!(hit.score.is_finite());
            prop_assert!(hit.bounds.lo <= hit.score && hit.score <= hit.bounds.hi);
        }
        prop_assert!(
            r.results
                .iter()
                .any(|h| h.bounds.lo <= truth && truth <= h.bounds.hi),
            "winner score {} escaped all bounds", truth
        );
    }
}
