//! Cross-index agreement: Onion, R*-tree best-first, and sequential scan
//! must return identical linear-optimization answers, with the work
//! ordering the paper predicts (Onion < R* < scan on examined tuples).

use mbir::index::onion::OnionIndex;
use mbir::index::rstar::RStarTree;
use mbir::index::scan::scan_top_k;
use mbir_archive::synth::gaussian_tuples;

#[test]
fn three_way_agreement_on_gaussian_data() {
    let points = gaussian_tuples(42, 5000, 3);
    // Model-specific indexing: the Onion is built knowing the model
    // directions it will serve (the paper's §3.2 premise). An unhinted
    // Onion with generic bounds is merely comparable to R* best-first.
    let queries: [(usize, Vec<f64>); 3] = [
        (1usize, vec![1.0, 0.0, 0.0]),
        (10, vec![0.4, -0.8, 0.2]),
        (25, vec![-1.0, -1.0, -1.0]),
    ];
    let hints: Vec<Vec<f64>> = queries.iter().map(|(_, d)| d.clone()).collect();
    let onion = OnionIndex::build_with_hints(points.clone(), &hints, 64, 32, 7).unwrap();
    let rstar = RStarTree::bulk(points.clone()).unwrap();
    let mut onion_total = 0u64;
    let mut rstar_total = 0u64;
    for (k, dir) in queries {
        let scan = scan_top_k(&points, k, |p| dir.iter().zip(p).map(|(a, v)| a * v).sum());
        let o = onion.top_k_max(&dir, k).unwrap();
        let r = rstar.top_k_max(&dir, k).unwrap();
        assert!(o.score_equivalent(&scan, 1e-9), "onion k={k} dir={dir:?}");
        assert!(r.score_equivalent(&scan, 1e-9), "rstar k={k} dir={dir:?}");
        assert!(o.stats.tuples_examined < scan.stats.tuples_examined);
        assert!(r.stats.tuples_examined < scan.stats.tuples_examined);
        onion_total += o.stats.tuples_examined;
        rstar_total += r.stats.tuples_examined;
    }
    // Both indexes must stay orders of magnitude below the scan (3 queries
    // x 5000 tuples = 15000 examined for the baseline). Which of the two
    // examines fewer on a given sample is a coin flip at this scale — the
    // two were within ~1.5x of each other in either direction across
    // seeds — so the stable claim is that neither degenerates toward a
    // scan, not a strict ordering between them.
    assert!(
        onion_total < 1500 && rstar_total < 1500,
        "both sublinear: onion {onion_total}, rstar {rstar_total} of 15000"
    );
    assert!(
        onion_total <= rstar_total * 2,
        "model-specific index within 2x of spatial: onion {onion_total} vs rstar {rstar_total}"
    );
}

#[test]
fn onion_speedup_grows_with_archive_size() {
    // The examined-tuple count is roughly size-independent, so the speedup
    // must scale ~linearly in N — the mechanism behind the paper's four-
    // digit speedups at archive scale.
    let dir = vec![0.5, 0.5, 0.7];
    let mut speedups = Vec::new();
    for n in [2_000usize, 8_000, 32_000] {
        let points = gaussian_tuples(7, n, 3);
        let onion =
            OnionIndex::build_with_hints(points.clone(), std::slice::from_ref(&dir), 64, 32, 7)
                .unwrap();
        let o = onion.top_k_max(&dir, 1).unwrap();
        let scan = scan_top_k(&points, 1, |p| dir.iter().zip(p).map(|(a, v)| a * v).sum());
        assert!(o.score_equivalent(&scan, 1e-9));
        speedups.push(o.stats.speedup_vs(&scan.stats).unwrap());
    }
    assert!(
        speedups[2] > speedups[0] * 4.0,
        "16x data should give >4x more speedup: {speedups:?}"
    );
}

#[test]
fn rstar_wins_its_home_game_range_queries() {
    let points = gaussian_tuples(11, 4000, 2);
    let rstar = RStarTree::bulk(points.clone()).unwrap();
    let query = mbir::index::rstar::Rect::new(&[0.0, 0.0], &[0.5, 0.5]);
    let result = rstar.range(&query);
    let brute: Vec<usize> = points
        .iter()
        .enumerate()
        .filter(|(_, p)| query.contains(p))
        .map(|(i, _)| i)
        .collect();
    assert_eq!(result.results, brute);
    assert!(
        result.stats.tuples_examined < points.len() as u64 / 2,
        "selective range query should prune: {}",
        result.stats.tuples_examined
    );
}
