//! Integration tests for the query planner and the temporal tracker over
//! realistic synthetic archives.

use mbir::core::plan::{execute_planned, plan_grid_query, EngineChoice, PlannerConfig};
use mbir::core::temporal::TemporalRiskTracker;
use mbir::models::linear::{HpsRiskModel, TemporalHpsModel};
use mbir::progressive::pyramid::AggregatePyramid;
use mbir_archive::dem::Dem;
use mbir_archive::scene::{BandId, SyntheticScene};
use mbir_archive::synth::GaussianField;
use mbir_archive::temporal::TemporalStack;

#[test]
fn planner_picks_an_indexed_engine_for_satellite_archives() {
    let scene = SyntheticScene::new(3, 128, 128).generate();
    let dem = Dem::synthetic(4, 128, 128, 0.0, 2500.0);
    let pyramids: Vec<AggregatePyramid> = vec![
        AggregatePyramid::build(scene.band(BandId::TM4).unwrap()),
        AggregatePyramid::build(scene.band(BandId::TM5).unwrap()),
        AggregatePyramid::build(scene.band(BandId::TM7).unwrap()),
        AggregatePyramid::build(dem.grid()),
    ];
    let model = HpsRiskModel::paper();
    let plan = plan_grid_query(model.model(), &pyramids, &PlannerConfig::default()).unwrap();
    assert_ne!(
        plan.choice,
        EngineChoice::Naive,
        "satellite fields are coherent: {}",
        plan.rationale
    );
    // Execution through the planner is exact and beats the naive budget.
    let (_, result) =
        execute_planned(model.model(), &pyramids, 10, &PlannerConfig::default()).unwrap();
    assert!(result.effort.speedup() > 1.0);
}

#[test]
fn temporal_tracker_follows_a_moving_hotspot() {
    // A hotspot that jumps to a different corner in the final frames; the
    // tracker's per-frame top-1 must follow it (after persistence decays).
    let rows = 32;
    let cols = 32;
    let frames = 8usize;
    let make_stack = |salt: u64| {
        let mut s = TemporalStack::new(rows, cols);
        for f in 0..frames {
            let hot_corner_late = f >= 4;
            let base = GaussianField::new(salt * 10 + f as u64)
                .with_roughness(0.6)
                .generate(rows, cols)
                .normalized(0.0, 0.2);
            let grid = mbir_archive::grid::Grid2::from_fn(rows, cols, |r, c| {
                let in_early = r < 8 && c < 8;
                let in_late = r >= 24 && c >= 24;
                let hot = if hot_corner_late { in_late } else { in_early };
                let boost = if hot { 1.0 } else { 0.0 };
                base.at(r, c) + boost
            });
            s.push(f as i64, grid).unwrap();
        }
        s
    };
    let obs = [make_stack(1), make_stack(2), make_stack(3)];
    // Low persistence so the hotspot move shows quickly.
    let model = TemporalHpsModel::new([0.4, 0.3, 0.3], 0.2).unwrap();
    let result = TemporalRiskTracker::new(model).run(&obs, 1).unwrap();
    let early_top = result[2].top_k.results[0].cell;
    let late_top = result[7].top_k.results[0].cell;
    assert!(
        early_top.row < 8 && early_top.col < 8,
        "early frames peak in the NW corner, got {early_top}"
    );
    assert!(
        late_top.row >= 24 && late_top.col >= 24,
        "late frames peak in the SE corner, got {late_top}"
    );
}
