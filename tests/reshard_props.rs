//! Live-resharding property tests: random topology changes driven through
//! the epoch-fenced migration coordinator.
//!
//! The invariants:
//!
//! * Any split / merge / boundary-move of a random tile-aligned plan
//!   produces a valid successor plan, and `plan_diff` partitions the
//!   destination bands exactly: every band is carried over or belongs to
//!   exactly one migration group whose source and destination sides span
//!   the same global rows.
//! * A healthy copy phase is bit-exact: every migrated band's stores hold
//!   byte-for-byte the rows `extract_band` produces from the raw grids
//!   under the destination plan.
//! * During dual-read, a healthy query is bit-identical to the plain
//!   (pre-migration) scatter — and to the unsharded resilient engine —
//!   at every thread count: migration is invisible until something fails.
//! * Killing the migrating source band mid-dual-read is covered wholesale
//!   by its destination copies (still bit-identical); killing *both*
//!   sides degrades soundly — the true winner's score never escapes every
//!   reported bound.
//! * An aborted migration rolls back completely: partial copies dropped,
//!   the source epoch still active, and source-plan answers bit-identical
//!   to never having started.

use mbir::core::parallel::WorkerPool;
use mbir::core::reshard::{
    AbortReason, CopyOutcome, MigrationState, ReshardCoordinator, ReshardPolicy,
};
use mbir::core::resilient::{resilient_top_k, ExecutionBudget};
use mbir::core::shard::{
    scatter_gather_top_k, scatter_gather_top_k_dual, ArchiveShard, ScatterPolicy, ShardedArchive,
};
use mbir::core::source::TileSource;
use mbir::models::linear::LinearModel;
use mbir::progressive::pyramid::AggregatePyramid;
use mbir_archive::fault::FaultProfile;
use mbir_archive::grid::Grid2;
use mbir_archive::shard::{plan_diff, EpochedShardPlan, ShardPlan};
use mbir_archive::tile::TileStore;
use proptest::prelude::*;

fn world(seed: u64, side: usize) -> (LinearModel, Vec<AggregatePyramid>, Vec<Grid2<f64>>) {
    let grids: Vec<Grid2<f64>> = (0..2)
        .map(|i| {
            Grid2::from_fn(side, side, |r, c| {
                let phase = (seed % 11) as f64 * 0.43 + i as f64;
                ((r as f64 / 5.0 + phase).sin() + (c as f64 / 7.0 - phase).cos()) * 25.0
                    + (seed % 5) as f64
            })
        })
        .collect();
    let pyramids = grids.iter().map(AggregatePyramid::build).collect();
    let w = 0.5 + (seed % 4) as f64 * 0.25;
    (
        LinearModel::new(vec![1.0, w], 0.2).unwrap(),
        pyramids,
        grids,
    )
}

/// Derives a valid destination plan from `plan` by trying a
/// `sel`-selected split, merge, or boundary move (rotating through the
/// kinds until one applies). `None` when no transform is possible.
fn derive_dest(plan: &ShardPlan, sel: u64) -> Option<ShardPlan> {
    let n = plan.shard_count();
    for t in 0..3u64 {
        match (sel + t) % 3 {
            0 => {
                for i in 0..n {
                    let b = (i + sel as usize) % n;
                    if let Ok(p) = plan.split_band(b) {
                        return Some(p);
                    }
                }
            }
            1 => {
                if n >= 2 {
                    if let Ok(p) = plan.merge_bands(sel as usize % (n - 1)) {
                        return Some(p);
                    }
                }
            }
            _ => {
                for i in 0..n.saturating_sub(1) {
                    let b = (i + sel as usize) % (n - 1);
                    if let Ok(p) = plan.move_tile_rows(b, 1) {
                        return Some(p);
                    }
                }
            }
        }
    }
    None
}

/// Per-source-shard store sets (one slice per shard) over the raw grids.
fn band_stores(plan: &ShardPlan, grids: &[Grid2<f64>], tile: usize) -> Vec<Vec<TileStore>> {
    (0..plan.shard_count())
        .map(|s| {
            grids
                .iter()
                .map(|g| TileStore::new(plan.extract_band(g, s).unwrap(), tile).unwrap())
                .collect()
        })
        .collect()
}

/// Runs the migration up to `DualRead` over healthy sources; returns the
/// coordinator (holding the copies).
fn migrate_to_dual_read(
    from_plan: &ShardPlan,
    dest_plan: ShardPlan,
    grids: &[Grid2<f64>],
    tile: usize,
) -> ReshardCoordinator {
    let mut coord = ReshardCoordinator::new(
        EpochedShardPlan::initial(from_plan.clone()),
        dest_plan,
        ReshardPolicy::default(),
    )
    .unwrap();
    let sources = band_stores(from_plan, grids, tile);
    let refs: Vec<&[TileStore]> = sources.iter().map(Vec::as_slice).collect();
    coord.begin_copy().unwrap();
    assert_eq!(coord.run_copy(&refs, None).unwrap(), CopyOutcome::Complete);
    coord.enter_dual_read().unwrap();
    coord
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random plan transforms stay valid, and `plan_diff` partitions the
    /// destination bands exactly into carried-over bands and migration
    /// groups with row-identical source and destination sides.
    #[test]
    fn prop_plan_transforms_and_diffs_partition_exactly(
        side_pow in 4u32..6,
        tile in 1usize..6,
        shards_raw in 0usize..8,
        sel in 0u64..1024,
    ) {
        let side = 1usize << side_pow;
        let shards = 1 + shards_raw % side.div_ceil(tile).min(5);
        let from = ShardPlan::row_bands(side, side, shards, tile).unwrap();
        let Some(to) = derive_dest(&from, sel) else { return; };

        // Bands stay contiguous, tile-aligned, and cover the grid.
        prop_assert_eq!(to.shape(), from.shape());
        prop_assert_eq!(to.tile_size(), tile);
        let mut next = 0usize;
        for band in to.bands() {
            prop_assert_eq!(band.row_offset, next);
            prop_assert!(band.rows > 0);
            if band.row_end() != side {
                prop_assert_eq!(band.rows % tile, 0, "interior band must be tile-aligned");
            }
            next = band.row_end();
        }
        prop_assert_eq!(next, side);

        // The diff partitions both sides exactly.
        let diff = plan_diff(&from, &to).unwrap();
        let mut dest_seen = vec![false; to.shard_count()];
        for &(d, s) in &diff.carried_over {
            prop_assert_eq!(to.bands()[d].row_offset, from.bands()[s].row_offset);
            prop_assert_eq!(to.bands()[d].rows, from.bands()[s].rows);
            prop_assert!(!dest_seen[d]);
            dest_seen[d] = true;
        }
        for group in &diff.groups {
            let src_rows: usize = group.source_bands.iter().map(|&s| from.bands()[s].rows).sum();
            let dst_rows: usize = group.dest_bands.iter().map(|&d| to.bands()[d].rows).sum();
            prop_assert_eq!(src_rows, group.rows);
            prop_assert_eq!(dst_rows, group.rows);
            for &d in &group.dest_bands {
                prop_assert!(!dest_seen[d]);
                dest_seen[d] = true;
            }
        }
        prop_assert!(dest_seen.iter().all(|&b| b), "every dest band carried or migrating");
    }

    /// `plan_diff` round-trips through the topology transforms: the
    /// reverse diff is the exact mirror of the forward one, a
    /// split-then-merge chain restores the original plan (and diffs to
    /// the empty change), and the forward diff's carried bands plus
    /// migration groups reconstruct the destination band layout exactly.
    #[test]
    fn prop_plan_diff_round_trips_through_transforms(
        side_pow in 4u32..6,
        tile in 1usize..6,
        shards_raw in 0usize..8,
        sel in 0u64..1024,
        chain in 1usize..4,
    ) {
        let side = 1usize << side_pow;
        let shards = 1 + shards_raw % side.div_ceil(tile).min(5);
        let from = ShardPlan::row_bands(side, side, shards, tile).unwrap();

        // Chain several transforms; the diff properties must hold across
        // the composition, not just single steps.
        let mut to = from.clone();
        for step in 0..chain {
            let Some(next) = derive_dest(&to, sel.wrapping_add(step as u64 * 37)) else { return; };
            to = next;
        }

        // Round-trip 1: diff(B, A) mirrors diff(A, B) — carried pairs
        // swap, and each group swaps its source and destination sides
        // over the same row range.
        let fwd = plan_diff(&from, &to).unwrap();
        let rev = plan_diff(&to, &from).unwrap();
        let mut fwd_carried: Vec<(usize, usize)> =
            fwd.carried_over.iter().map(|&(d, s)| (s, d)).collect();
        fwd_carried.sort_unstable();
        let mut rev_carried = rev.carried_over.clone();
        rev_carried.sort_unstable();
        prop_assert_eq!(fwd_carried, rev_carried);
        prop_assert_eq!(fwd.groups.len(), rev.groups.len());
        for (f, r) in fwd.groups.iter().zip(&rev.groups) {
            prop_assert_eq!(f.row_offset, r.row_offset);
            prop_assert_eq!(f.rows, r.rows);
            prop_assert_eq!(&f.source_bands, &r.dest_bands);
            prop_assert_eq!(&f.dest_bands, &r.source_bands);
        }

        // Round-trip 2: the forward diff reconstructs the destination
        // layout. Carried bands take their source geometry; each group's
        // destination bands tile the group's row range in order.
        let mut rebuilt = vec![None; to.shard_count()];
        for &(d, s) in &fwd.carried_over {
            rebuilt[d] = Some((from.bands()[s].row_offset, from.bands()[s].rows));
        }
        for group in &fwd.groups {
            let mut row = group.row_offset;
            for &d in &group.dest_bands {
                rebuilt[d] = Some((row, to.bands()[d].rows));
                row += to.bands()[d].rows;
            }
            prop_assert_eq!(row, group.row_end());
        }
        for (d, band) in to.bands().iter().enumerate() {
            prop_assert_eq!(rebuilt[d], Some((band.row_offset, band.rows)));
        }

        // Round-trip 3: split-then-merge is the identity, and the
        // identity diffs to no migration at all.
        for b in 0..from.shard_count() {
            if let Ok(split) = from.split_band(b) {
                let back = split.merge_bands(b).unwrap();
                prop_assert_eq!(back.band_rows(), from.band_rows());
                let idt = plan_diff(&from, &back).unwrap();
                prop_assert!(idt.groups.is_empty());
                prop_assert_eq!(idt.carried_over.len(), from.shard_count());
                break;
            }
        }
    }

    /// A healthy copy phase reproduces every migrated band byte-for-byte.
    #[test]
    fn prop_copy_round_trip_is_bit_exact(
        seed in 0u64..100,
        side_pow in 4u32..6,
        tile in 2usize..6,
        shards_raw in 0usize..8,
        sel in 0u64..1024,
    ) {
        let side = 1usize << side_pow;
        let shards = 1 + shards_raw % side.div_ceil(tile).min(4);
        let (_, _, grids) = world(seed, side);
        let from = ShardPlan::row_bands(side, side, shards, tile).unwrap();
        let Some(to) = derive_dest(&from, sel) else { return; };
        let coord = migrate_to_dual_read(&from, to.clone(), &grids, tile);

        for band in coord.migrated_bands() {
            for (a, grid) in grids.iter().enumerate() {
                let expect = to.extract_band(grid, band.dest_band()).unwrap();
                for r in 0..expect.rows() {
                    for c in 0..expect.cols() {
                        prop_assert_eq!(
                            band.stores()[a].read(r, c).unwrap().to_bits(),
                            expect.at(r, c).to_bits(),
                            "band {} attr {} cell ({r},{c})", band.dest_band(), a
                        );
                    }
                }
            }
        }
    }

    /// Healthy dual-read is bit-identical to the plain pre-migration
    /// scatter and the unsharded resilient engine at every thread count;
    /// killing the migrating source band is covered by the copies
    /// (bit-identical still); killing both sides stays sound.
    #[test]
    fn prop_dual_read_identity_and_chaos_soundness(
        seed in 0u64..100,
        side_pow in 4u32..6,
        tile in 2usize..6,
        shards_raw in 1usize..8,
        sel in 0u64..1024,
        k in 1usize..6,
        threads_idx in 0usize..3,
    ) {
        let side = 1usize << side_pow;
        let shards = 2 + shards_raw % (side.div_ceil(tile).clamp(2, 4) - 1);
        let threads = [1usize, 2, 4][threads_idx];
        let (model, pyramids, grids) = world(seed, side);
        let from = ShardPlan::row_bands(side, side, shards, tile).unwrap();
        let Some(to) = derive_dest(&from, sel) else { return; };
        let coord = migrate_to_dual_read(&from, to, &grids, tile);
        let groups = coord.dual_read_groups().unwrap();
        let budget = ExecutionBudget::unlimited();
        let pool = WorkerPool::new(threads);

        // Unsharded reference.
        let flat_stores: Vec<TileStore> = grids
            .iter()
            .map(|g| TileStore::new(g.clone(), tile).unwrap())
            .collect();
        let flat_src = TileSource::new(&flat_stores).unwrap();
        let reference = resilient_top_k(&model, &pyramids, k, &flat_src, &budget).unwrap();
        let truth = reference.results[0].score;

        // Source-plan archive (healthy) and its per-band pyramids.
        let source_stores = band_stores(&from, &grids, tile);
        let source_pyramids: Vec<Vec<AggregatePyramid>> = (0..from.shard_count())
            .map(|s| grids.iter().map(|g| AggregatePyramid::build(&from.extract_band(g, s).unwrap())).collect())
            .collect();
        let sources: Vec<TileSource<'_>> =
            source_stores.iter().map(|g| TileSource::new(g).unwrap()).collect();
        let handles: Vec<ArchiveShard<'_, TileSource<'_>>> = (0..from.shard_count())
            .map(|s| ArchiveShard::new(&source_pyramids[s], &sources[s], from.bands()[s].row_offset))
            .collect();
        let archive = ShardedArchive::new(handles).unwrap();
        let plain = scatter_gather_top_k(
            &model, &archive, k, &budget, &ScatterPolicy::require_all(), &pool,
        ).unwrap();
        prop_assert_eq!(&plain.results, &reference.results);

        // Dual-read destination handles over the copies.
        let migrated = coord.migrated_bands();
        let dual_sources: Vec<TileSource<'_>> =
            migrated.iter().map(|b| TileSource::new(b.stores()).unwrap()).collect();
        let dest_handles: Vec<ArchiveShard<'_, TileSource<'_>>> = migrated
            .iter()
            .zip(&dual_sources)
            .map(|(b, src)| ArchiveShard::new(b.pyramids(), src, b.row_offset()))
            .collect();
        let dual = scatter_gather_top_k_dual(
            &model, &archive, &dest_handles, &groups, k, &budget,
            &ScatterPolicy::require_all(), &pool,
        ).unwrap();
        prop_assert_eq!(&dual.results, &reference.results, "healthy dual-read must be invisible");
        prop_assert_eq!(dual.completeness, 1.0);

        // Kill every migrating source band: the copies cover wholesale.
        let migrating_sources = coord.retiring_source_bands();
        let killed_stores: Vec<Vec<TileStore>> = source_stores
            .iter()
            .enumerate()
            .map(|(s, g)| {
                g.iter()
                    .map(|st| {
                        if migrating_sources.contains(&s) {
                            let pages = st.page_count();
                            st.clone().with_faults(
                                (0..pages).fold(FaultProfile::new(seed), |p, pg| p.permanent(pg)),
                            )
                        } else {
                            st.clone()
                        }
                    })
                    .collect()
            })
            .collect();
        let killed_sources: Vec<TileSource<'_>> =
            killed_stores.iter().map(|g| TileSource::new(g).unwrap()).collect();
        let killed_handles: Vec<ArchiveShard<'_, TileSource<'_>>> = (0..from.shard_count())
            .map(|s| ArchiveShard::new(&source_pyramids[s], &killed_sources[s], from.bands()[s].row_offset))
            .collect();
        let killed_archive = ShardedArchive::new(killed_handles).unwrap();
        let covered = scatter_gather_top_k_dual(
            &model, &killed_archive, &dest_handles, &groups, k, &budget,
            &ScatterPolicy::best_effort(), &pool,
        ).unwrap();
        prop_assert_eq!(
            &covered.results, &reference.results,
            "a fully covered source kill serves bit-identical results from the copies"
        );

        // Kill both sides: degraded, but the winner never escapes bounds.
        let dead_dest_stores: Vec<Vec<TileStore>> = migrated
            .iter()
            .map(|b| {
                b.stores()
                    .iter()
                    .map(|st| {
                        let pages = st.page_count();
                        st.clone().with_faults(
                            (0..pages).fold(FaultProfile::new(seed), |p, pg| p.permanent(pg)),
                        )
                    })
                    .collect()
            })
            .collect();
        let dead_dest_sources: Vec<TileSource<'_>> =
            dead_dest_stores.iter().map(|g| TileSource::new(g).unwrap()).collect();
        let dead_dest_handles: Vec<ArchiveShard<'_, TileSource<'_>>> = migrated
            .iter()
            .zip(&dead_dest_sources)
            .map(|(b, src)| ArchiveShard::new(b.pyramids(), src, b.row_offset()))
            .collect();
        let both = scatter_gather_top_k_dual(
            &model, &killed_archive, &dead_dest_handles, &groups, k, &budget,
            &ScatterPolicy::best_effort(), &pool,
        ).unwrap();
        for hit in &both.results {
            prop_assert!(hit.bounds.lo <= hit.score && hit.score <= hit.bounds.hi);
        }
        prop_assert!(
            both.results.iter().any(|h| h.bounds.lo <= truth && truth <= h.bounds.hi),
            "winner score {} escaped all bounds with both sides dead", truth
        );
    }

    /// An aborted migration leaves no trace: partial copies dropped, the
    /// source epoch active, and source-plan answers bit-identical to
    /// never having started.
    #[test]
    fn prop_aborted_migrations_roll_back_identically(
        seed in 0u64..100,
        side_pow in 4u32..6,
        tile in 2usize..6,
        shards_raw in 0usize..8,
        sel in 0u64..1024,
        k in 1usize..6,
    ) {
        let side = 1usize << side_pow;
        let shards = 1 + shards_raw % side.div_ceil(tile).min(4);
        let (model, _, grids) = world(seed, side);
        let from = ShardPlan::row_bands(side, side, shards, tile).unwrap();
        let Some(to) = derive_dest(&from, sel) else { return; };
        let budget = ExecutionBudget::unlimited();
        let pool = WorkerPool::new(1);

        let source_stores = band_stores(&from, &grids, tile);
        let source_pyramids: Vec<Vec<AggregatePyramid>> = (0..from.shard_count())
            .map(|s| grids.iter().map(|g| AggregatePyramid::build(&from.extract_band(g, s).unwrap())).collect())
            .collect();
        let run_source = |stores: &[Vec<TileStore>]| {
            let sources: Vec<TileSource<'_>> =
                stores.iter().map(|g| TileSource::new(g).unwrap()).collect();
            let handles: Vec<ArchiveShard<'_, TileSource<'_>>> = (0..from.shard_count())
                .map(|s| ArchiveShard::new(&source_pyramids[s], &sources[s], from.bands()[s].row_offset))
                .collect();
            let archive = ShardedArchive::new(handles).unwrap();
            scatter_gather_top_k(
                &model, &archive, k, &budget, &ScatterPolicy::require_all(), &pool,
            ).unwrap()
        };
        let before = run_source(&source_stores);

        // A zero-tick wall deadline aborts on the first page copied.
        let mut coord = ReshardCoordinator::new(
            EpochedShardPlan::initial(from.clone()),
            to,
            ReshardPolicy::default().with_wall_deadline_ticks(0),
        ).unwrap();
        let refs: Vec<&[TileStore]> = source_stores.iter().map(Vec::as_slice).collect();
        coord.begin_copy().unwrap();
        let outcome = coord.run_copy(&refs, None).unwrap();
        prop_assert_eq!(outcome, CopyOutcome::DeadlineExceeded);
        prop_assert_eq!(coord.state(), MigrationState::Aborted);
        prop_assert_eq!(coord.abort_reason(), Some(AbortReason::WallDeadline));
        prop_assert_eq!(coord.active_epoch(), coord.from_epoch());
        prop_assert!(coord.migrated_bands().is_empty());

        let after = run_source(&source_stores);
        prop_assert_eq!(&after.results, &before.results, "rollback must be invisible");
        prop_assert_eq!(after.completeness, 1.0);
    }
}
