//! End-to-end HPS pipeline: synthetic multi-modal archive -> linear risk
//! model -> progressive retrieval -> accuracy metrics.

use mbir::core::engine::{combined_top_k, naive_grid_top_k, pyramid_top_k, staged_top_k};
use mbir::core::metrics::{precision_recall_at_k, threshold_sweep, total_cost, CostParams};
use mbir::models::linear::{hps_risk_grid, HpsRiskModel, ProgressiveLinearModel};
use mbir::progressive::pyramid::AggregatePyramid;
use mbir_archive::dem::Dem;
use mbir_archive::scene::{BandId, SyntheticScene};
use mbir_archive::synth::OccurrenceSampler;

fn world(
    seed: u64,
    rows: usize,
    cols: usize,
) -> (
    Vec<AggregatePyramid>,
    HpsRiskModel,
    mbir_archive::grid::Grid2<f64>,
) {
    let scene = SyntheticScene::new(seed, rows, cols).generate();
    let dem = Dem::synthetic(seed + 1, rows, cols, 0.0, 2500.0);
    let model = HpsRiskModel::paper();
    let risk = hps_risk_grid(&model, &scene, &dem).expect("aligned inputs");
    let pyramids = vec![
        AggregatePyramid::build(scene.band(BandId::TM4).unwrap()),
        AggregatePyramid::build(scene.band(BandId::TM5).unwrap()),
        AggregatePyramid::build(scene.band(BandId::TM7).unwrap()),
        AggregatePyramid::build(dem.grid()),
    ];
    (pyramids, model, risk)
}

#[test]
fn all_engines_retrieve_identical_risk_cells() {
    let (pyramids, model, _) = world(3, 96, 96);
    let ranges: Vec<(f64, f64)> = pyramids
        .iter()
        .map(|p| {
            let root = p.root();
            (root.min, root.max)
        })
        .collect();
    let progressive = ProgressiveLinearModel::new(model.model().clone(), &ranges).unwrap();

    for k in [1usize, 10, 37] {
        let naive = naive_grid_top_k(model.model(), &pyramids, k).unwrap();
        let data_only = pyramid_top_k(model.model(), &pyramids, k).unwrap();
        let both = combined_top_k(&progressive, &pyramids, k).unwrap();
        for (a, b) in data_only.results.iter().zip(&naive.results) {
            assert!((a.score - b.score).abs() < 1e-9, "k={k}");
        }
        for (a, b) in both.results.iter().zip(&naive.results) {
            assert!((a.score - b.score).abs() < 1e-9, "k={k}");
        }
        assert!(
            data_only.effort.speedup() > 1.0,
            "smooth satellite fields must prune (k={k}): {}",
            data_only.effort.speedup()
        );
    }
}

#[test]
fn staged_tuple_engine_agrees_with_grid_engines() {
    let (pyramids, model, _) = world(7, 48, 48);
    let ranges: Vec<(f64, f64)> = pyramids
        .iter()
        .map(|p| {
            let root = p.root();
            (root.min, root.max)
        })
        .collect();
    let progressive = ProgressiveLinearModel::new(model.model().clone(), &ranges).unwrap();
    let tuples: Vec<Vec<f64>> = (0..48 * 48)
        .map(|i| {
            pyramids
                .iter()
                .map(|p| p.cell(0, i / 48, i % 48).unwrap().mean)
                .collect()
        })
        .collect();
    let staged = staged_top_k(&progressive, &tuples, 10).unwrap();
    let naive = naive_grid_top_k(model.model(), &pyramids, 10).unwrap();
    for (a, b) in staged.results.iter().zip(&naive.results) {
        assert!((a.score - b.score).abs() < 1e-9);
    }
    assert!(staged.effort.multiply_adds < staged.effort.naive_multiply_adds);
}

#[test]
fn metrics_reward_the_true_model() {
    let (_, model, risk) = world(11, 64, 64);
    let normalized = risk.normalized(0.0, 1.0);
    let occurrences = OccurrenceSampler::new(13)
        .with_base_rate(2.0)
        .sample(&normalized.map(|&v| if v > 0.8 { v } else { 0.0 }));
    // The true model must out-rank a broken one in precision.
    let pr_true = precision_recall_at_k(&risk, &occurrences, 50).unwrap();
    let broken = HpsRiskModel::with_coefficients([-0.443, 0.0, -0.153, 0.001]).unwrap();
    let broken_risk = {
        // Rebuild broken risk over the same inputs.
        let scene = SyntheticScene::new(11, 64, 64).generate();
        let dem = Dem::synthetic(12, 64, 64, 0.0, 2500.0);
        hps_risk_grid(&broken, &scene, &dem).unwrap()
    };
    let pr_broken = precision_recall_at_k(&broken_risk, &occurrences, 50).unwrap();
    assert!(
        pr_true.precision > pr_broken.precision,
        "true {} vs broken {}",
        pr_true.precision,
        pr_broken.precision
    );
    assert!(model.model().arity() == 4);

    // Cost curve: some interior threshold beats both extremes.
    let (lo, hi) = risk.min_max().unwrap();
    let thresholds: Vec<f64> = (0..=8).map(|i| lo + (hi - lo) * i as f64 / 8.0).collect();
    let sweep = threshold_sweep(&risk, &occurrences, None, 10.0, 1.0, &thresholds).unwrap();
    let best_cost = sweep
        .iter()
        .map(|(_, r)| r.total_cost)
        .fold(f64::INFINITY, f64::min);
    let edge_cost = sweep[0]
        .1
        .total_cost
        .min(sweep.last().unwrap().1.total_cost);
    assert!(best_cost <= edge_cost);

    // Direct cost call agrees with the sweep.
    let direct = total_cost(
        &risk,
        &occurrences,
        None,
        CostParams {
            miss_cost: 10.0,
            false_alarm_cost: 1.0,
            threshold: thresholds[4],
        },
    )
    .unwrap();
    assert_eq!(direct, sweep[4].1);
}
