//! Property tests for the parallel execution layer.
//!
//! The central contract: every parallel engine is **bit-identical** to its
//! sequential counterpart at every thread count — on healthy archives, on
//! faulty ones (through the resilient engine), and for whole query
//! batches. Budget-exhausted runs are schedule-dependent in *where* they
//! stop, so those assert the soundness invariants instead: at most K
//! entries, sound bounds, an honest budget stop, and the true winner
//! confirmed or covered.

use mbir::core::engine::{
    pyramid_top_k, pyramid_top_k_with_scratch, staged_top_k, staged_top_k_with_scratch,
    QueryScratch,
};
use mbir::core::parallel::{
    grid_query_with_source, par_pyramid_top_k, par_resilient_top_k, par_staged_top_k, QueryBatch,
    WorkerPool, THREADS_ENV,
};
use mbir::core::query::{Objective, TopKQuery};
use mbir::core::resilient::{resilient_top_k, BudgetStop, ExecutionBudget};
use mbir::core::source::{CachedTileSource, PyramidSource, TileSource};
use mbir::index::onion::OnionIndex;
use mbir::index::scan::{scan_top_k, scan_top_k_flat};
use mbir::index::store::PointStore;
use mbir::models::linear::{LinearModel, ProgressiveLinearModel};
use mbir::progressive::pyramid::AggregatePyramid;
use mbir_archive::fault::{FaultProfile, ResilienceConfig, RetryPolicy};
use mbir_archive::grid::Grid2;
use mbir_archive::tile::TileStore;
use proptest::prelude::*;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn world(
    seed: u64,
    side: usize,
    arity: usize,
    tile: usize,
) -> (LinearModel, Vec<AggregatePyramid>, Vec<TileStore>) {
    let grids: Vec<Grid2<f64>> = (0..arity)
        .map(|i| {
            Grid2::from_fn(side, side, |r, c| {
                let h = seed
                    .wrapping_add(i as u64)
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add((r * 8191 + c * 127) as u64)
                    .wrapping_mul(2862933555777941757);
                let noise = (h >> 11) as f64 / (1u64 << 53) as f64;
                ((r as f64 / 7.0).sin() + (c as f64 / 9.0).cos()) * 20.0 + noise * 15.0
            })
        })
        .collect();
    let pyramids = grids.iter().map(AggregatePyramid::build).collect();
    let stores = grids
        .iter()
        .map(|g| TileStore::new(g.clone(), tile).unwrap())
        .collect();
    let coeffs: Vec<f64> = (0..arity)
        .map(|i| match (seed as usize + i) % 3 {
            0 => 1.0,
            1 => -0.7,
            _ => 0.4,
        })
        .collect();
    (LinearModel::new(coeffs, 0.1).unwrap(), pyramids, stores)
}

/// Deterministic pseudo-random points for the kernel-vs-legacy tests.
fn pseudo_points(seed: u64, n: usize, d: usize) -> Vec<Vec<f64>> {
    let mut state = seed ^ 0xfeed;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 11) as f64 / (1u64 << 53) as f64 - 0.5) * 40.0
    };
    (0..n).map(|_| (0..d).map(|_| next()).collect()).collect()
}

/// A deterministic pseudo-random subset of pages derived from `seed`.
fn fault_pages(seed: u64, page_count: usize) -> Vec<usize> {
    (0..page_count)
        .filter(|p| {
            seed.wrapping_mul(0x9e3779b97f4a7c15)
                .wrapping_add(*p as u64)
                .wrapping_mul(6364136223846793005)
                >> 61
                == 0
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn par_pyramid_bit_identical_across_thread_counts(
        seed in 0u64..500,
        side in 16usize..48,
        arity in 1usize..4,
        k in 1usize..16,
    ) {
        let (model, pyramids, _) = world(seed, side, arity, 8);
        let sequential = pyramid_top_k(&model, &pyramids, k).unwrap();
        for threads in THREAD_COUNTS {
            let pool = WorkerPool::new(threads);
            let parallel = par_pyramid_top_k(&model, &pyramids, k, &pool).unwrap();
            prop_assert_eq!(&parallel.results, &sequential.results, "threads={}", threads);
        }
    }

    #[test]
    fn par_staged_bit_identical_across_thread_counts(
        seed in 0u64..500,
        n in 1usize..400,
        arity in 2usize..5,
        k in 1usize..12,
    ) {
        let (model, pyramids, _) = world(seed, 16, arity, 8);
        let ranges: Vec<(f64, f64)> = pyramids
            .iter()
            .map(|p| { let r = p.root(); (r.min, r.max) })
            .collect();
        let prog = ProgressiveLinearModel::new(model, &ranges).unwrap();
        let tuples: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                (0..arity)
                    .map(|a| pyramids[a].cell(0, (i / 16) % 16, i % 16).unwrap().mean)
                    .collect()
            })
            .collect();
        let sequential = staged_top_k(&prog, &tuples, k).unwrap();
        for threads in THREAD_COUNTS {
            let pool = WorkerPool::new(threads);
            let parallel = par_staged_top_k(&prog, &tuples, k, &pool).unwrap();
            prop_assert_eq!(&parallel.results, &sequential.results, "threads={}", threads);
        }
    }

    #[test]
    fn query_batch_bit_identical_across_thread_counts(
        seed in 0u64..300,
        side in 16usize..40,
        n_queries in 1usize..6,
        cache_pages in 1usize..32,
    ) {
        let (model, pyramids, stores) = world(seed, side, 2, 8);
        let plain = TileSource::new(&stores).unwrap();
        let mut batch = QueryBatch::new(&model, &pyramids);
        for q in 0..n_queries {
            let query = if q % 2 == 0 {
                TopKQuery::max(1 + q * 3).unwrap()
            } else {
                TopKQuery::new(2 + q, Objective::Minimize).unwrap()
            };
            batch.admit(query);
        }
        let sequential: Vec<_> = batch
            .queries()
            .iter()
            .map(|q| grid_query_with_source(&model, &pyramids, *q, &plain).unwrap())
            .collect();
        for threads in THREAD_COUNTS {
            let pool = WorkerPool::new(threads);
            let cached = CachedTileSource::new(&stores, cache_pages).unwrap();
            let results = batch.run(&cached, &pool);
            prop_assert_eq!(results.len(), sequential.len());
            for (got, want) in results.iter().zip(&sequential) {
                let got = got.as_ref().unwrap();
                prop_assert_eq!(&got.results, &want.results, "threads={}", threads);
            }
        }
    }

    #[test]
    fn par_resilient_bit_identical_under_faults(
        seed in 0u64..300,
        side in 24usize..48,
        k in 1usize..10,
        fault_seed in 0u64..100,
    ) {
        let (model, pyramids, stores) = world(seed, side, 2, 8);
        let pages = fault_pages(fault_seed, stores[0].page_count());
        // Mix of permanent losses and healed transients, plus retries so
        // some transients are invisible and some faults quarantine.
        let profile = pages.iter().enumerate().fold(
            FaultProfile::new(fault_seed),
            |p, (i, pg)| {
                if i % 2 == 0 { p.permanent(*pg) } else { p.transient(*pg, 1) }
            },
        );
        let stores: Vec<TileStore> = stores
            .into_iter()
            .map(|s| {
                s.with_faults(profile.clone())
                    .with_resilience(ResilienceConfig::new(RetryPolicy::retries(1), Some(3)))
            })
            .collect();
        let src = TileSource::new(&stores).unwrap();
        let budget = ExecutionBudget::unlimited();
        let sequential = resilient_top_k(&model, &pyramids, k, &src, &budget).unwrap();
        for threads in THREAD_COUNTS {
            let pool = WorkerPool::new(threads);
            let parallel =
                par_resilient_top_k(&model, &pyramids, k, &src, &budget, &pool).unwrap();
            prop_assert_eq!(&parallel.results, &sequential.results, "threads={}", threads);
            prop_assert_eq!(parallel.completeness, sequential.completeness);
            prop_assert_eq!(&parallel.skipped_pages, &sequential.skipped_pages);
            prop_assert_eq!(parallel.budget_stop, sequential.budget_stop);
        }
    }

    #[test]
    fn flat_scan_kernel_bit_identical_to_legacy(
        seed in 0u64..500,
        n in 1usize..400,
        d in 1usize..8,
        k in 1usize..16,
    ) {
        // The flat (PointStore + kernels) scan must return exactly the
        // same TopKResult — scores bit for bit — as the legacy
        // iterator-zip scan over nested rows.
        let points = pseudo_points(seed, n, d);
        let dir: Vec<f64> = pseudo_points(seed ^ 0xd1, 1, d).remove(0);
        let store = PointStore::from_rows(&points).unwrap();
        let flat = scan_top_k_flat(&store, &dir, k);
        let legacy = scan_top_k(&points, k, |p| {
            dir.iter().zip(p).map(|(a, v)| a * v).sum()
        });
        prop_assert_eq!(flat, legacy);
    }

    #[test]
    fn onion_kernel_build_and_query_bit_identical_to_legacy(
        seed in 0u64..200,
        n in 4usize..250,
        d in 2usize..5,
        k in 1usize..10,
    ) {
        // Kernel-path build (at every thread count) and query must agree
        // bit for bit with the nested-Vec legacy build and the legacy
        // iterator-zip query path.
        let points = pseudo_points(seed, n, d);
        let legacy = OnionIndex::build_legacy_with(points.clone(), 32, 16, 7).unwrap();
        let dir: Vec<f64> = pseudo_points(seed ^ 0xa7, 1, d).remove(0);
        for threads in THREAD_COUNTS {
            let kernel =
                OnionIndex::build_with_hints_threads(points.clone(), &[], 32, 16, 7, threads)
                    .unwrap();
            prop_assert_eq!(
                kernel.layer_sizes(),
                legacy.layer_sizes(),
                "threads={}",
                threads
            );
            let kq = kernel.top_k_max(&dir, k).unwrap();
            prop_assert_eq!(&kq, &legacy.top_k_max_legacy(&dir, k).unwrap(),
                "threads={}", threads);
            prop_assert_eq!(&kq, &legacy.top_k_max(&dir, k).unwrap(),
                "threads={}", threads);
        }
    }

    #[test]
    fn scratch_engines_bit_identical_to_allocating_engines(
        seed in 0u64..300,
        side in 8usize..32,
        arity in 1usize..4,
        k in 1usize..10,
    ) {
        // The allocation-free scratch variants must reproduce the
        // allocating engines exactly, including when one scratch is
        // reused across consecutive differently-shaped queries.
        let (model, pyramids, _) = world(seed, side, arity, 8);
        let source = PyramidSource::new(&pyramids);
        let mut scratch = QueryScratch::new();
        let want = pyramid_top_k(&model, &pyramids, k).unwrap();
        for _ in 0..2 {
            let got =
                pyramid_top_k_with_scratch(&model, &pyramids, k, &source, &mut scratch).unwrap();
            prop_assert_eq!(&got, &want);
        }
        let ranges: Vec<(f64, f64)> = pyramids
            .iter()
            .map(|p| { let r = p.root(); (r.min, r.max) })
            .collect();
        let prog = ProgressiveLinearModel::new(model, &ranges).unwrap();
        let tuples: Vec<Vec<f64>> = (0..side * side)
            .map(|i| {
                (0..arity)
                    .map(|a| pyramids[a].cell(0, i / side, i % side).unwrap().mean)
                    .collect()
            })
            .collect();
        let want = staged_top_k(&prog, &tuples, k).unwrap();
        for _ in 0..2 {
            let got = staged_top_k_with_scratch(&prog, &tuples, k, &mut scratch).unwrap();
            prop_assert_eq!(&got, &want);
        }
    }

    #[test]
    fn par_resilient_exhausted_budget_stays_sound(
        seed in 0u64..200,
        k in 1usize..8,
        budget_ma in 1u64..2000,
    ) {
        let (model, pyramids, stores) = world(seed, 48, 2, 8);
        let src = TileSource::new(&stores).unwrap();
        let truth = pyramid_top_k(&model, &pyramids, 1).unwrap().results[0].score;
        let budget = ExecutionBudget::unlimited().with_max_multiply_adds(budget_ma);
        for threads in THREAD_COUNTS {
            let pool = WorkerPool::new(threads);
            let r = par_resilient_top_k(&model, &pyramids, k, &src, &budget, &pool).unwrap();
            prop_assert!(r.results.len() <= k);
            prop_assert!((0.0..=1.0).contains(&r.completeness));
            if r.budget_stop.is_none() {
                // Finished within budget: must be the exact answer.
                prop_assert_eq!(r.completeness, 1.0);
                prop_assert!(r.results.iter().all(|h| h.exact));
            } else {
                prop_assert_eq!(r.budget_stop, Some(BudgetStop::MultiplyAdds));
            }
            // Sound bounds on every entry. When the report is not full, no
            // candidate was truncated away, so the true winner must be
            // confirmed exactly or covered by some candidate's bounds. (A
            // full report ranks k candidates by *estimate*; the winner's
            // covering region may legitimately rank below them.)
            for h in &r.results {
                prop_assert!(h.bounds.lo <= h.score && h.score <= h.bounds.hi);
            }
            prop_assert!(
                r.results.len() == k
                    || r.results
                        .iter()
                        .any(|h| (h.exact && h.score == truth)
                            || (!h.exact && h.bounds.hi >= truth)),
                "threads={}: true winner lost", threads
            );
        }
    }
}

#[test]
fn default_parallelism_honors_env_override() {
    // Safe in edition 2021; no other test in this binary touches the
    // variable.
    std::env::set_var(THREADS_ENV, "3");
    assert_eq!(WorkerPool::with_default_parallelism().threads(), 3);
    std::env::set_var(THREADS_ENV, "not-a-number");
    assert!(WorkerPool::with_default_parallelism().threads() >= 1);
    std::env::remove_var(THREADS_ENV);
    assert!(WorkerPool::with_default_parallelism().threads() >= 1);
}
