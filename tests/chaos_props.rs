//! Chaos property tests: random fault cocktails — silent corruption,
//! healing transients, dead pages, latency — against the integrity and
//! replication layer.
//!
//! The invariants under chaos:
//!
//! * Sequential and parallel resilient engines agree exactly (results,
//!   completeness, skipped pages, stop reason) at every thread count,
//!   because degradation is decided by deterministic bounds, not by
//!   which worker hit the fault first — and the sequential engine is
//!   bit-reproducible run to run, effort included.
//! * Every reported score sits inside its own sound bounds, and the true
//!   winner's score is never silently dropped.
//! * A single clean replica is enough: the replicated source masks any
//!   chaos confined to the other replica, bit-for-bit.

use mbir::core::engine::pyramid_top_k;
use mbir::core::lifecycle::CancelToken;
use mbir::core::parallel::{par_resilient_top_k, WorkerPool};
use mbir::core::replica::{ReplicaConfig, ReplicatedSource};
use mbir::core::resilient::{
    resilient_top_k, resilient_top_k_cancellable, BudgetStop, ExecutionBudget,
};
use mbir::core::source::{CachedTileSource, CellSource};
use mbir::models::linear::LinearModel;
use mbir::progressive::pyramid::AggregatePyramid;
use mbir_archive::error::ArchiveError;
use mbir_archive::fault::{FaultProfile, ResilienceConfig, RetryPolicy};
use mbir_archive::grid::Grid2;
use mbir_archive::tile::TileStore;
use proptest::prelude::*;

/// Delegating source that cancels `token` once the inner source has read
/// `after` pages — deterministic page-granular mid-flight cancellation.
struct CancelAfterPages<'a, S: CellSource> {
    inner: &'a S,
    token: CancelToken,
    after: u64,
}

impl<S: CellSource> CellSource for CancelAfterPages<'_, S> {
    fn base_cell(&self, attr: usize, row: usize, col: usize) -> Result<f64, ArchiveError> {
        let v = self.inner.base_cell(attr, row, col);
        if self.inner.pages_read() >= self.after {
            self.token.cancel();
        }
        v
    }
    fn page_of(&self, row: usize, col: usize) -> Option<usize> {
        self.inner.page_of(row, col)
    }
    fn pages_read(&self) -> u64 {
        self.inner.pages_read()
    }
    fn ticks_elapsed(&self) -> u64 {
        self.inner.ticks_elapsed()
    }
}

fn world(seed: u64, side: usize) -> (LinearModel, Vec<AggregatePyramid>, Vec<Grid2<f64>>) {
    let grids: Vec<Grid2<f64>> = (0..2)
        .map(|i| {
            Grid2::from_fn(side, side, |r, c| {
                let phase = (seed % 13) as f64 * 0.37 + i as f64;
                ((r as f64 / 6.0 + phase).sin() + (c as f64 / 8.0 - phase).cos()) * 30.0
                    + (seed % 7) as f64
            })
        })
        .collect();
    let pyramids = grids.iter().map(AggregatePyramid::build).collect();
    let w = 0.4 + (seed % 5) as f64 * 0.2;
    (
        LinearModel::new(vec![1.0, w], 0.1).unwrap(),
        pyramids,
        grids,
    )
}

fn page_hash(seed: u64, page: usize) -> u64 {
    seed.wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(page as u64)
        .wrapping_mul(0x5851_f42d_4c95_7f2d)
        >> 32
}

/// A deterministic chaos cocktail: per page, roughly 1/8 silently
/// corrupted, 1/8 dead, 1/4 flaky-but-healing (within a 3-retry budget),
/// some with extra latency; the rest healthy. Returns the profile plus
/// the pages that can actually cost the engine data (corrupt ∪ dead).
fn chaos_profile(seed: u64, page_count: usize) -> (FaultProfile, Vec<usize>) {
    let mut profile = FaultProfile::new(seed);
    let mut lossy = Vec::new();
    for page in 0..page_count {
        match page_hash(seed, page) % 16 {
            0 | 1 => {
                profile = profile.corrupt(page);
                lossy.push(page);
            }
            2 | 3 => {
                profile = profile.permanent(page);
                lossy.push(page);
            }
            4..=7 => {
                let fails = 1 + (page_hash(seed, page) % 3) as u32;
                profile = profile.transient(page, fails);
            }
            8 | 9 => {
                profile = profile.latency(page, 3);
            }
            _ => {}
        }
    }
    (profile, lossy)
}

/// Chaos-faulted stores with verification-capable retries.
fn chaos_stores(grids: &[Grid2<f64>], tile: usize, profile: &FaultProfile) -> Vec<TileStore> {
    grids
        .iter()
        .map(|g| {
            TileStore::new(g.clone(), tile)
                .unwrap()
                .with_faults(profile.clone())
                .with_resilience(ResilienceConfig::new(RetryPolicy::retries(3), None))
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Under a random chaos cocktail the sequential and parallel engines
    /// return the *same* (possibly degraded) answer at 1/2/4/8 threads —
    /// identical hits, effort, completeness, skipped pages, and stop.
    #[test]
    fn prop_chaos_answers_are_thread_count_invariant(
        seed in 0u64..150,
        side_pow in 3u32..6,   // 8..32
        tile in 2usize..9,
        k in 1usize..7,
    ) {
        let side = 1usize << side_pow;
        let (model, pyramids, grids) = world(seed, side);
        let page_count = TileStore::new(grids[0].clone(), tile).unwrap().page_count();
        let (profile, lossy) = chaos_profile(seed, page_count);
        let budget = ExecutionBudget::unlimited();

        // Fault state is consumed by each run: every engine run gets a
        // fresh world so all runs see the same fault schedule.
        let run_seq = || {
            let stores = chaos_stores(&grids, tile, &profile);
            let src = CachedTileSource::new(&stores, 8).unwrap();
            resilient_top_k(&model, &pyramids, k, &src, &budget).unwrap()
        };
        let run_par = |threads: usize| {
            let stores = chaos_stores(&grids, tile, &profile);
            let src = CachedTileSource::new(&stores, 8).unwrap();
            let pool = WorkerPool::new(threads);
            par_resilient_top_k(&model, &pyramids, k, &src, &budget, &pool).unwrap()
        };

        let seq = run_seq();
        prop_assert!((0.0..=1.0).contains(&seq.completeness));
        for hit in &seq.results {
            prop_assert!(hit.score.is_finite());
            prop_assert!(hit.bounds.lo <= hit.score && hit.score <= hit.bounds.hi);
        }
        // Only corrupt or dead pages may be lost; healing transients and
        // latency must be invisible in the data.
        for page in &seq.skipped_pages {
            prop_assert!(lossy.contains(page), "page {} was not lossy", page);
        }
        if lossy.is_empty() {
            prop_assert!(!seq.is_degraded());
            let strict = pyramid_top_k(&model, &pyramids, k).unwrap();
            for (a, b) in seq.results.iter().zip(&strict.results) {
                prop_assert_eq!(a.cell, b.cell);
                prop_assert_eq!(a.score, b.score);
            }
        }

        // Repeated sequential runs are bit-identical, effort included.
        prop_assert_eq!(&run_seq(), &seq);

        for threads in [1usize, 2, 4, 8] {
            let par = run_par(threads);
            // The answer is thread-count invariant...
            prop_assert_eq!(&par.results, &seq.results, "threads={}", threads);
            prop_assert_eq!(par.completeness, seq.completeness, "threads={}", threads);
            prop_assert_eq!(&par.skipped_pages, &seq.skipped_pages, "threads={}", threads);
            prop_assert_eq!(par.budget_stop, seq.budget_stop, "threads={}", threads);
            // ...while effort is only answer-independent bookkeeping:
            // per-worker warm-up adds a few scheduling-dependent bound
            // probes, so only the naive baseline is pinned.
            prop_assert_eq!(
                par.effort.naive_multiply_adds,
                seq.effort.naive_multiply_adds
            );
        }
    }

    /// One clean replica masks any chaos on the other: the replicated
    /// source returns the exact fault-free answer with no degradation.
    #[test]
    fn prop_one_clean_replica_masks_chaos(
        seed in 0u64..150,
        side_pow in 3u32..5,   // 8..16
        tile in 2usize..9,
        k in 1usize..5,
    ) {
        let side = 1usize << side_pow;
        let (model, pyramids, grids) = world(seed, side);
        let strict = pyramid_top_k(&model, &pyramids, k).unwrap();
        let page_count = TileStore::new(grids[0].clone(), tile).unwrap().page_count();
        let (profile, _) = chaos_profile(seed, page_count);

        let chaotic = chaos_stores(&grids, tile, &profile);
        let clean: Vec<TileStore> = grids
            .iter()
            .map(|g| TileStore::new(g.clone(), tile).unwrap())
            .collect();
        let src = ReplicatedSource::new(vec![&chaotic, &clean], ReplicaConfig::default()).unwrap();
        let r = resilient_top_k(&model, &pyramids, k, &src, &ExecutionBudget::unlimited()).unwrap();

        prop_assert!(!r.is_degraded());
        prop_assert_eq!(r.completeness, 1.0);
        prop_assert!(r.skipped_pages.is_empty());
        prop_assert_eq!(r.results.len(), strict.results.len());
        for (a, b) in r.results.iter().zip(&strict.results) {
            prop_assert_eq!(a.cell, b.cell);
            prop_assert_eq!(a.score, b.score);
            prop_assert!(a.exact);
        }
    }

    /// The degraded answer never silently drops the true winner: some
    /// reported bound always covers its exact score.
    #[test]
    fn prop_true_winner_stays_within_reported_bounds(
        seed in 0u64..150,
        side_pow in 3u32..6,
        tile in 2usize..9,
        k in 1usize..7,
    ) {
        let side = 1usize << side_pow;
        let (model, pyramids, grids) = world(seed, side);
        let strict = pyramid_top_k(&model, &pyramids, k).unwrap();
        let truth = strict.results[0].score;
        let page_count = TileStore::new(grids[0].clone(), tile).unwrap().page_count();
        let (profile, _) = chaos_profile(seed, page_count);

        let stores = chaos_stores(&grids, tile, &profile);
        let src = CachedTileSource::new(&stores, 8).unwrap();
        let r = resilient_top_k(&model, &pyramids, k, &src, &ExecutionBudget::unlimited()).unwrap();

        prop_assert!(
            r.results
                .iter()
                .any(|h| h.bounds.lo <= truth && truth <= h.bounds.hi),
            "winner score {} escaped all bounds", truth
        );
    }

    /// Cancelling at a random page index *on top of* a random chaos
    /// cocktail still yields sound bounds that cover the true winner —
    /// cancellation degrades, it never corrupts.
    #[test]
    fn prop_cancellation_under_chaos_keeps_winner_in_bounds(
        seed in 0u64..150,
        side_pow in 3u32..6,
        tile in 2usize..9,
        k in 1usize..7,
        cancel_after in 0u64..24,
    ) {
        let side = 1usize << side_pow;
        let (model, pyramids, grids) = world(seed, side);
        let strict = pyramid_top_k(&model, &pyramids, k).unwrap();
        let truth = strict.results[0].score;
        let page_count = TileStore::new(grids[0].clone(), tile).unwrap().page_count();
        let (profile, _) = chaos_profile(seed, page_count);

        let stores = chaos_stores(&grids, tile, &profile);
        let inner = CachedTileSource::new(&stores, 8).unwrap();
        let token = CancelToken::new();
        let src = CancelAfterPages { inner: &inner, token: token.clone(), after: cancel_after };
        let r = resilient_top_k_cancellable(
            &model, &pyramids, k, &src, &ExecutionBudget::unlimited(), &token,
        )
        .unwrap();

        // With an unlimited budget the only possible early stop is the
        // cancellation itself.
        prop_assert!(matches!(r.budget_stop, None | Some(BudgetStop::Cancelled)));
        prop_assert!((0.0..=1.0).contains(&r.completeness));
        for hit in &r.results {
            prop_assert!(hit.score.is_finite());
            prop_assert!(hit.bounds.lo <= hit.score && hit.score <= hit.bounds.hi);
        }
        prop_assert!(
            r.results
                .iter()
                .any(|h| h.bounds.lo <= truth && truth <= h.bounds.hi),
            "winner score {} escaped all bounds", truth
        );
    }
}
