//! Failure injection: simulated page faults and degenerate inputs must
//! surface as typed errors without corrupting results.

use mbir::core::engine::pyramid_top_k;
use mbir::core::parallel::{par_resilient_top_k, WorkerPool};
use mbir::core::replica::{BreakerState, ReplicaConfig, ReplicatedSource};
use mbir::core::resilient::{resilient_top_k, BudgetStop, ExecutionBudget};
use mbir::core::source::TileSource;
use mbir::core::workflow::{run_workflow, WorkflowConfig};
use mbir::models::linear::LinearModel;
use mbir::progressive::pyramid::AggregatePyramid;
use mbir_archive::error::ArchiveError;
use mbir_archive::fault::{FaultProfile, ResilienceConfig, RetryPolicy};
use mbir_archive::grid::Grid2;
use mbir_archive::stats::AccessStats;
use mbir_archive::tile::TileStore;

/// A smooth two-attribute world: grids, pyramids, and tile stores sharing
/// one stats handle.
fn paged_world(
    rows: usize,
    cols: usize,
    tile: usize,
) -> (
    LinearModel,
    Vec<AggregatePyramid>,
    Vec<TileStore>,
    AccessStats,
) {
    let grids: Vec<Grid2<f64>> = (0..2)
        .map(|i| {
            Grid2::from_fn(rows, cols, |r, c| {
                ((r as f64 / 7.0 + i as f64).sin() + (c as f64 / 9.0).cos()) * 40.0 + 90.0
            })
        })
        .collect();
    let pyramids = grids.iter().map(AggregatePyramid::build).collect();
    let stats = AccessStats::new();
    let stores = grids
        .iter()
        .map(|g| {
            TileStore::new(g.clone(), tile)
                .unwrap()
                .with_stats(stats.clone())
        })
        .collect();
    let model = LinearModel::new(vec![1.0, 0.6], 0.2).unwrap();
    (model, pyramids, stores, stats)
}

#[test]
fn page_faults_propagate_from_scans() {
    let grid = Grid2::from_fn(16, 16, |r, c| (r * 16 + c) as f64);
    let mut store = TileStore::new(grid, 4).unwrap();
    store.fail_page(5);
    let mut delivered = 0usize;
    let err = store.scan(|_, _| delivered += 1).unwrap_err();
    assert_eq!(err, ArchiveError::PageIo { page: 5 });
    // Pages before the failure were fully delivered, nothing after.
    assert_eq!(delivered, 5 * 16);
    // Stats reflect only successful reads.
    assert_eq!(store.stats().pages_read(), 5);
}

#[test]
fn partial_reads_can_route_around_bad_pages() {
    let grid = Grid2::from_fn(8, 8, |r, c| (r + c) as f64);
    let mut store = TileStore::new(grid, 4).unwrap();
    store.fail_page(0);
    let mut good_pages = 0;
    let mut failures = 0;
    for page in 0..store.page_count() {
        match store.read_page(page) {
            Ok(_) => good_pages += 1,
            Err(ArchiveError::PageIo { page }) => {
                assert_eq!(page, 0);
                failures += 1;
            }
            Err(other) => panic!("unexpected error {other}"),
        }
    }
    assert_eq!(good_pages, 3);
    assert_eq!(failures, 1);
}

#[test]
fn engine_rejects_degenerate_worlds_without_panicking() {
    let tiny = AggregatePyramid::build(&Grid2::filled(1, 1, 1.0));
    let model = LinearModel::new(vec![1.0], 0.0).unwrap();
    // 1x1 world: valid, returns the single cell.
    let r = pyramid_top_k(&model, std::slice::from_ref(&tiny), 5).unwrap();
    assert_eq!(r.results.len(), 1);
    // Arity mismatch: error, not panic.
    assert!(pyramid_top_k(&model, &[tiny.clone(), tiny], 1).is_err());
    // Constant world: all scores identical, still well-formed.
    let flat = AggregatePyramid::build(&Grid2::filled(8, 8, 3.0));
    let r = pyramid_top_k(&model, &[flat], 3).unwrap();
    assert_eq!(r.results.len(), 3);
    assert!(r.results.iter().all(|s| (s.score - 3.0).abs() < 1e-12));
}

#[test]
fn workflow_survives_degenerate_feedback() {
    // A world where every cell is identical: OLS refits are singular. The
    // workflow falls back to a ridge refit (which on constant, all-zero
    // feedback converges to ~zero coefficients) and must complete without
    // error or non-finite values.
    let flat = AggregatePyramid::build(&Grid2::filled(16, 16, 5.0));
    let occurrences = Grid2::filled(16, 16, 0u32);
    let hypothesis = LinearModel::new(vec![0.3], 0.0).unwrap();
    let run = run_workflow(
        &[flat],
        &occurrences,
        hypothesis,
        WorkflowConfig {
            k: 5,
            iterations: 3,
            seed: 1,
            exploration: 4,
        },
    )
    .unwrap();
    assert_eq!(run.iterations.len(), 3);
    assert!(run.final_model.coefficients().iter().all(|c| c.is_finite()));
    // Zero occurrences everywhere: the ridge refit learns "no risk".
    assert!(run.final_model.coefficients()[0].abs() < 0.3);
}

#[test]
fn nan_free_outputs_under_extreme_inputs() {
    // Extreme but finite values must not produce NaN scores.
    let spike = Grid2::from_fn(8, 8, |r, c| if r == 3 && c == 3 { 1e12 } else { -1e12 });
    let pyramid = AggregatePyramid::build(&spike);
    let model = LinearModel::new(vec![1e-6], 1e6).unwrap();
    let r = pyramid_top_k(&model, &[pyramid], 2).unwrap();
    assert!(r.results.iter().all(|s| s.score.is_finite()));
    assert_eq!(
        r.results[0].cell,
        mbir_archive::extent::CellCoord::new(3, 3)
    );
}

#[test]
fn transient_faults_healing_within_retry_budget_are_invisible() {
    let (model, pyramids, stores, stats) = paged_world(32, 32, 8);
    let strict = pyramid_top_k(&model, &pyramids, 5).unwrap();
    // Every page flakes twice before healing; three retries cover that.
    let profile =
        (0..stores[0].page_count()).fold(FaultProfile::new(11), |p, page| p.transient(page, 2));
    let stores: Vec<TileStore> = stores
        .into_iter()
        .map(|s| {
            s.with_faults(profile.clone())
                .with_resilience(ResilienceConfig::new(RetryPolicy::retries(3), None))
        })
        .collect();
    let src = TileSource::new(&stores).unwrap();
    let resilient =
        resilient_top_k(&model, &pyramids, 5, &src, &ExecutionBudget::unlimited()).unwrap();
    // The answer is exactly the fault-free one — retries absorbed the
    // faults without degrading the result.
    assert!(!resilient.is_degraded());
    assert_eq!(resilient.completeness, 1.0);
    assert!(resilient.skipped_pages.is_empty());
    for (a, b) in resilient.results.iter().zip(&strict.results) {
        assert_eq!(a.cell, b.cell);
        assert_eq!(a.score, b.score);
    }
    // But the effort was visible: retries and failures were recorded.
    assert!(stats.retries() > 0, "retries {}", stats.retries());
    assert!(stats.failures() >= stats.retries());
}

#[test]
fn quarantine_trips_after_threshold_and_fails_fast() {
    let grid = Grid2::from_fn(16, 16, |r, c| (r * 16 + c) as f64);
    let store = TileStore::new(grid, 4)
        .unwrap()
        .with_faults(FaultProfile::new(0).permanent(5))
        .with_resilience(ResilienceConfig::new(RetryPolicy::retries(1), Some(2)));
    // First read: initial attempt + 1 retry both fail -> breaker at 2.
    assert_eq!(
        store.read(row_of(5), col_of(5)).unwrap_err(),
        ArchiveError::PageIo { page: 5 }
    );
    assert!(store.is_quarantined(5));
    // Subsequent reads fail fast with the quarantine error and burn no
    // further retries or ticks.
    let retries_before = store.stats().retries();
    let ticks_before = store.stats().ticks_elapsed();
    for _ in 0..3 {
        assert_eq!(
            store.read(row_of(5), col_of(5)).unwrap_err(),
            ArchiveError::PageQuarantined { page: 5 }
        );
    }
    assert_eq!(store.stats().retries(), retries_before);
    assert_eq!(store.stats().ticks_elapsed(), ticks_before);
    assert_eq!(store.quarantined_pages().collect::<Vec<_>>(), vec![5]);
    // Healthy pages are unaffected.
    assert!(store.read(0, 0).is_ok());
}

/// Row/col of the first cell of a page in a 16-wide, tile-4 store.
fn row_of(page: usize) -> usize {
    (page / 4) * 4
}
fn col_of(page: usize) -> usize {
    (page % 4) * 4
}

#[test]
fn corruption_with_latency_charges_every_detected_reread() {
    let grid = Grid2::from_fn(16, 16, |r, c| (r * 16 + c) as f64);
    let store = TileStore::new(grid, 4)
        .unwrap()
        .with_faults(FaultProfile::new(0).corrupt(5).latency(5, 9));
    // No retries, breaker disabled: every verified read detects the rot
    // afresh and pays the injected latency again — nothing heals.
    for round in 1..=3u64 {
        assert_eq!(
            store.read_page_verified(5).unwrap_err(),
            ArchiveError::PageCorrupt { page: 5 }
        );
        assert_eq!(store.stats().corruptions(), round);
        // One base tick plus nine injected, per attempt.
        assert_eq!(store.stats().ticks_elapsed(), round * 10);
    }
    // A trusting reader swallows the same page without an error — the
    // corruption is silent at the I/O level — but pays the same latency.
    assert!(store.read_page(5).is_ok());
    assert_eq!(store.stats().ticks_elapsed(), 40);
    assert_eq!(store.stats().corruptions(), 3);
}

#[test]
fn transient_with_latency_pays_on_failing_and_healed_reads_alike() {
    let grid = Grid2::from_fn(16, 16, |r, c| (r * 16 + c) as f64);
    let store = TileStore::new(grid, 4)
        .unwrap()
        .with_faults(FaultProfile::new(0).transient(5, 2).latency(5, 9))
        .with_resilience(ResilienceConfig::new(RetryPolicy::retries(2), None));
    // One read: two failing attempts plus the healed third, every one of
    // them paying the injected latency; backoff ticks ride on top.
    let cells = store.read_page_verified(5).unwrap();
    assert_eq!(cells.len(), 16);
    assert_eq!(store.stats().failures(), 2);
    assert_eq!(store.stats().retries(), 2);
    let after_heal = store.stats().ticks_elapsed();
    assert!(after_heal >= 30, "ticks {after_heal}");
    // The healed page keeps its latency: exactly one more base tick plus
    // the injected nine, no retries.
    store.read_page_verified(5).unwrap();
    assert_eq!(store.stats().ticks_elapsed(), after_heal + 10);
    assert_eq!(store.stats().retries(), 2);
}

#[test]
fn quarantine_outranks_corruption_and_latency() {
    let grid = Grid2::from_fn(16, 16, |r, c| (r * 16 + c) as f64);
    let store = TileStore::new(grid, 4)
        .unwrap()
        .with_faults(FaultProfile::new(0).corrupt(5).latency(5, 9))
        .with_resilience(ResilienceConfig::new(RetryPolicy::none(), Some(2)));
    // Checksum detections feed the breaker like I/O failures: two verified
    // reads trip the quarantine.
    assert_eq!(
        store.read_page_verified(5).unwrap_err(),
        ArchiveError::PageCorrupt { page: 5 }
    );
    assert_eq!(
        store.read_page_verified(5).unwrap_err(),
        ArchiveError::PageCorrupt { page: 5 }
    );
    assert!(store.is_quarantined(5));
    let ticks = store.stats().ticks_elapsed();
    let corruptions = store.stats().corruptions();
    // Quarantine wins over the corruption *and* its latency: later reads
    // fail fast with no attempt, no ticks, no new detections.
    for _ in 0..3 {
        assert_eq!(
            store.read_page_verified(5).unwrap_err(),
            ArchiveError::PageQuarantined { page: 5 }
        );
    }
    assert_eq!(store.stats().ticks_elapsed(), ticks);
    assert_eq!(store.stats().corruptions(), corruptions);
}

#[test]
fn last_wins_fault_kind_governs_the_store_while_latency_survives() {
    let grid = Grid2::from_fn(16, 16, |r, c| (r * 16 + c) as f64);
    let store = TileStore::new(grid, 4).unwrap().with_faults(
        FaultProfile::new(0)
            .corrupt(5)
            .transient(5, 1)
            .latency(5, 9),
    );
    // The transient kind replaced the corruption entirely: the first read
    // is an I/O failure, not a checksum mismatch…
    assert_eq!(
        store.read_page_verified(5).unwrap_err(),
        ArchiveError::PageIo { page: 5 }
    );
    assert_eq!(store.stats().corruptions(), 0);
    // …and the healed page verifies clean, with the latency — orthogonal
    // to the kind — still charged on both attempts.
    let cells = store.read_page_verified(5).unwrap();
    assert!(cells
        .iter()
        .all(|(cell, v)| *v == (cell.row * 16 + cell.col) as f64));
    assert_eq!(store.stats().ticks_elapsed(), 20);
}

#[test]
fn lost_pages_yield_honest_partial_results() {
    let (model, pyramids, stores, _) = paged_world(32, 32, 8);
    // Kill the page under the true winner so degradation is forced.
    let strict = pyramid_top_k(&model, &pyramids, 4).unwrap();
    let winner = strict.results[0].cell;
    let page = stores[0].page_of(winner.row, winner.col);
    let stores: Vec<TileStore> = stores
        .into_iter()
        .map(|s| s.with_faults(FaultProfile::new(0).permanent(page)))
        .collect();
    let src = TileSource::new(&stores).unwrap();
    let r = resilient_top_k(&model, &pyramids, 4, &src, &ExecutionBudget::unlimited()).unwrap();
    // Honest accounting: not complete, the lost page is named, and the
    // result still carries k entries with sound bounds.
    assert!(r.is_degraded());
    assert!(r.completeness < 1.0, "completeness {}", r.completeness);
    assert!(r.completeness > 0.0);
    assert_eq!(r.skipped_pages, vec![page]);
    assert_eq!(r.results.len(), 4);
    for hit in &r.results {
        assert!(hit.bounds.lo <= hit.score && hit.score <= hit.bounds.hi);
        assert!(hit.score.is_finite());
    }
    // The lost winner's true score is still covered by some reported
    // bound — nothing was silently dropped.
    assert!(r
        .results
        .iter()
        .any(|h| h.bounds.lo <= strict.results[0].score && strict.results[0].score <= h.bounds.hi));
}

#[test]
fn clearing_quarantine_restores_access_once_the_fault_heals() {
    let grid = Grid2::from_fn(16, 16, |r, c| (r * 16 + c) as f64);
    let store = TileStore::new(grid, 4)
        .unwrap()
        .with_faults(FaultProfile::new(0).transient(5, 2))
        .with_resilience(ResilienceConfig::new(RetryPolicy::none(), Some(2)));
    // Two failing accesses quarantine the page.
    assert!(store.read_page_verified(5).is_err());
    assert!(store.read_page_verified(5).is_err());
    assert!(store.is_quarantined(5));
    assert_eq!(store.quarantined_pages().collect::<Vec<_>>(), vec![5]);
    assert_eq!(
        store.read_page_verified(5).unwrap_err(),
        ArchiveError::PageQuarantined { page: 5 }
    );
    // Lifting the quarantine re-fetches and re-verifies: the transient
    // fault has healed, so the page comes back intact.
    store.clear_quarantine();
    assert!(store.quarantined_pages().next().is_none());
    let cells = store.read_page_verified(5).unwrap();
    assert_eq!(cells.len(), 16);
    assert!(cells
        .iter()
        .all(|(cell, v)| *v == (cell.row * 16 + cell.col) as f64));
}

/// Two independent replicas of the `paged_world` stores, each group with
/// its own stats handle.
fn replica_stores(rows: usize, cols: usize, tile: usize) -> (Vec<TileStore>, AccessStats) {
    let stats = AccessStats::new();
    let stores = (0..2)
        .map(|i| {
            let g = Grid2::from_fn(rows, cols, |r, c| {
                ((r as f64 / 7.0 + i as f64).sin() + (c as f64 / 9.0).cos()) * 40.0 + 90.0
            });
            TileStore::new(g, tile).unwrap().with_stats(stats.clone())
        })
        .collect();
    (stores, stats)
}

#[test]
fn healthy_replicated_source_matches_the_direct_path_exactly() {
    let (model, pyramids, stores, _) = paged_world(32, 32, 8);
    let direct = TileSource::new(&stores).unwrap();
    let budget = ExecutionBudget::unlimited();
    let reference = resilient_top_k(&model, &pyramids, 5, &direct, &budget).unwrap();

    let (a, _) = replica_stores(32, 32, 8);
    let (b, _) = replica_stores(32, 32, 8);
    let src = ReplicatedSource::new(vec![&a, &b], ReplicaConfig::default()).unwrap();
    let replicated = resilient_top_k(&model, &pyramids, 5, &src, &budget).unwrap();

    // Bit-identical: same hits, same bounds, same accounting.
    assert_eq!(replicated, reference);
    assert!(!replicated.is_degraded());
    assert_eq!(src.replica_health()[1].pages_served, 0);
}

#[test]
fn replication_masks_single_replica_corruption_and_loss() {
    let (model, pyramids, stores, _) = paged_world(32, 32, 8);
    let strict = pyramid_top_k(&model, &pyramids, 5).unwrap();
    let winner = strict.results[0].cell;
    let bad_page = stores[0].page_of(winner.row, winner.col);
    let dead_page = (bad_page + 1) % stores[0].page_count();

    // Replica 0 serves the winner's page corrupted and has lost another
    // page outright; replica 1 is clean.
    let (a, a_stats) = replica_stores(32, 32, 8);
    let a: Vec<TileStore> = a
        .into_iter()
        .map(|s| s.with_faults(FaultProfile::new(3).corrupt(bad_page).permanent(dead_page)))
        .collect();
    let (b, _) = replica_stores(32, 32, 8);
    let src = ReplicatedSource::new(vec![&a, &b], ReplicaConfig::default()).unwrap();

    let r = resilient_top_k(&model, &pyramids, 5, &src, &ExecutionBudget::unlimited()).unwrap();
    // Failover absorbed both faults: the answer is the exact one.
    assert!(!r.is_degraded());
    assert_eq!(r.completeness, 1.0);
    assert!(r.skipped_pages.is_empty());
    for (hit, want) in r.results.iter().zip(&strict.results) {
        assert_eq!(hit.cell, want.cell);
        assert_eq!(hit.score, want.score);
    }
    // The corruption was detected (not silently served) and charged to
    // the bad replica.
    assert!(a_stats.corruptions() >= 1);
    let health = src.replica_health();
    assert!(health[0].failures >= 1);
    assert!(health[1].pages_served >= 1);
}

#[test]
fn all_replicas_losing_a_page_degrades_with_sound_bounds() {
    let (model, pyramids, stores, _) = paged_world(32, 32, 8);
    let strict = pyramid_top_k(&model, &pyramids, 5).unwrap();
    let winner = strict.results[0].cell;
    let page = stores[0].page_of(winner.row, winner.col);

    let kill = |stores: Vec<TileStore>| -> Vec<TileStore> {
        stores
            .into_iter()
            .map(|s| s.with_faults(FaultProfile::new(0).permanent(page)))
            .collect()
    };
    let (a, _) = replica_stores(32, 32, 8);
    let (b, _) = replica_stores(32, 32, 8);
    let (a, b) = (kill(a), kill(b));
    let src = ReplicatedSource::new(vec![&a, &b], ReplicaConfig::default()).unwrap();

    let r = resilient_top_k(&model, &pyramids, 5, &src, &ExecutionBudget::unlimited()).unwrap();
    // No replica can serve the winner's page: honest degradation.
    assert!(r.is_degraded());
    assert!(r.completeness < 1.0);
    assert_eq!(r.skipped_pages, vec![page]);
    assert!(r
        .results
        .iter()
        .any(|h| h.bounds.lo <= strict.results[0].score && strict.results[0].score <= h.bounds.hi));
    for hit in &r.results {
        assert!(hit.bounds.lo <= hit.score && hit.score <= hit.bounds.hi);
    }
}

#[test]
fn breaker_states_report_and_reset_restores_a_tripped_replica() {
    let (model, pyramids, _, _) = paged_world(32, 32, 8);
    let strict = pyramid_top_k(&model, &pyramids, 5).unwrap();

    // Replica 0 is dead on every page; one failure opens its breaker and
    // the cooldown is effectively infinite, so it stays open.
    let (a, _) = replica_stores(32, 32, 8);
    let a: Vec<TileStore> = a
        .into_iter()
        .map(|s| {
            let dead = (0..s.page_count()).fold(FaultProfile::new(9), |p, page| p.permanent(page));
            s.with_faults(dead)
        })
        .collect();
    let (b, _) = replica_stores(32, 32, 8);
    // A one-page cache keeps later runs from being absorbed by the LRU,
    // so the post-reset run genuinely re-probes the dead replica.
    let config = ReplicaConfig::default()
        .with_open_after(1)
        .with_cooldown_ticks(u64::MAX)
        .with_cache_pages(1);
    let src = ReplicatedSource::new(vec![&a, &b], config).unwrap();

    assert_eq!(
        src.breaker_states(),
        vec![BreakerState::Closed, BreakerState::Closed]
    );
    let r = resilient_top_k(&model, &pyramids, 5, &src, &ExecutionBudget::unlimited()).unwrap();
    // The clean replica masked the outage, and the dead replica's breaker
    // is now open.
    assert!(!r.is_degraded());
    assert_eq!(
        src.breaker_states(),
        vec![BreakerState::Open, BreakerState::Closed]
    );
    assert!(src.replica_health()[0].failures >= 1);

    // Operator reset: both breakers close and the accounting restarts.
    src.reset_breakers();
    assert_eq!(
        src.breaker_states(),
        vec![BreakerState::Closed, BreakerState::Closed]
    );
    let health = src.replica_health();
    assert_eq!((health[0].failures, health[0].pages_served), (0, 0));
    assert_eq!((health[1].failures, health[1].pages_served), (0, 0));

    // The source remains fully usable after the reset — and since the
    // fault is permanent, the very next run re-opens the breaker.
    let r = resilient_top_k(&model, &pyramids, 5, &src, &ExecutionBudget::unlimited()).unwrap();
    assert!(!r.is_degraded());
    for (hit, want) in r.results.iter().zip(&strict.results) {
        assert_eq!(hit.cell, want.cell);
        assert_eq!(hit.score, want.score);
    }
    assert_eq!(
        src.breaker_states(),
        vec![BreakerState::Open, BreakerState::Closed]
    );
}

#[test]
fn wall_deadline_over_replicated_source_is_thread_count_invariant() {
    let (model, pyramids, _, _) = paged_world(32, 32, 8);
    let (a, _) = replica_stores(32, 32, 8);
    let (b, _) = replica_stores(32, 32, 8);
    let src = ReplicatedSource::new(vec![&a, &b], ReplicaConfig::default()).unwrap();
    let budget = ExecutionBudget::unlimited().with_wall_deadline(std::time::Duration::ZERO);

    // An already-expired deadline stops every engine at its first
    // checkpoint — the degraded answer must not depend on parallelism.
    let seq = resilient_top_k(&model, &pyramids, 5, &src, &budget).unwrap();
    assert_eq!(seq.budget_stop, Some(BudgetStop::WallClock));
    for threads in [1usize, 2, 4, 8] {
        let pool = WorkerPool::new(threads);
        let par = par_resilient_top_k(&model, &pyramids, 5, &src, &budget, &pool).unwrap();
        assert_eq!(par.budget_stop, Some(BudgetStop::WallClock));
        assert_eq!(par.results, seq.results, "threads {threads}");
        assert_eq!(par.completeness, seq.completeness, "threads {threads}");
    }
}
