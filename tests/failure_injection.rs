//! Failure injection: simulated page faults and degenerate inputs must
//! surface as typed errors without corrupting results.

use mbir::core::engine::pyramid_top_k;
use mbir::core::workflow::{run_workflow, WorkflowConfig};
use mbir::models::linear::LinearModel;
use mbir::progressive::pyramid::AggregatePyramid;
use mbir_archive::error::ArchiveError;
use mbir_archive::grid::Grid2;
use mbir_archive::tile::TileStore;

#[test]
fn page_faults_propagate_from_scans() {
    let grid = Grid2::from_fn(16, 16, |r, c| (r * 16 + c) as f64);
    let mut store = TileStore::new(grid, 4).unwrap();
    store.fail_page(5);
    let mut delivered = 0usize;
    let err = store.scan(|_, _| delivered += 1).unwrap_err();
    assert_eq!(err, ArchiveError::PageIo { page: 5 });
    // Pages before the failure were fully delivered, nothing after.
    assert_eq!(delivered, 5 * 16);
    // Stats reflect only successful reads.
    assert_eq!(store.stats().pages_read(), 5);
}

#[test]
fn partial_reads_can_route_around_bad_pages() {
    let grid = Grid2::from_fn(8, 8, |r, c| (r + c) as f64);
    let mut store = TileStore::new(grid, 4).unwrap();
    store.fail_page(0);
    let mut good_pages = 0;
    let mut failures = 0;
    for page in 0..store.page_count() {
        match store.read_page(page) {
            Ok(_) => good_pages += 1,
            Err(ArchiveError::PageIo { page }) => {
                assert_eq!(page, 0);
                failures += 1;
            }
            Err(other) => panic!("unexpected error {other}"),
        }
    }
    assert_eq!(good_pages, 3);
    assert_eq!(failures, 1);
}

#[test]
fn engine_rejects_degenerate_worlds_without_panicking() {
    let tiny = AggregatePyramid::build(&Grid2::filled(1, 1, 1.0));
    let model = LinearModel::new(vec![1.0], 0.0).unwrap();
    // 1x1 world: valid, returns the single cell.
    let r = pyramid_top_k(&model, &[tiny.clone()], 5).unwrap();
    assert_eq!(r.results.len(), 1);
    // Arity mismatch: error, not panic.
    assert!(pyramid_top_k(&model, &[tiny.clone(), tiny.clone()], 1).is_err());
    // Constant world: all scores identical, still well-formed.
    let flat = AggregatePyramid::build(&Grid2::filled(8, 8, 3.0));
    let r = pyramid_top_k(&model, &[flat], 3).unwrap();
    assert_eq!(r.results.len(), 3);
    assert!(r.results.iter().all(|s| (s.score - 3.0).abs() < 1e-12));
}

#[test]
fn workflow_survives_degenerate_feedback() {
    // A world where every cell is identical: OLS refits are singular. The
    // workflow falls back to a ridge refit (which on constant, all-zero
    // feedback converges to ~zero coefficients) and must complete without
    // error or non-finite values.
    let flat = AggregatePyramid::build(&Grid2::filled(16, 16, 5.0));
    let occurrences = Grid2::filled(16, 16, 0u32);
    let hypothesis = LinearModel::new(vec![0.3], 0.0).unwrap();
    let run = run_workflow(
        &[flat],
        &occurrences,
        hypothesis,
        WorkflowConfig {
            k: 5,
            iterations: 3,
            seed: 1,
            exploration: 4,
        },
    )
    .unwrap();
    assert_eq!(run.iterations.len(), 3);
    assert!(run
        .final_model
        .coefficients()
        .iter()
        .all(|c| c.is_finite()));
    // Zero occurrences everywhere: the ridge refit learns "no risk".
    assert!(run.final_model.coefficients()[0].abs() < 0.3);
}

#[test]
fn nan_free_outputs_under_extreme_inputs() {
    // Extreme but finite values must not produce NaN scores.
    let spike = Grid2::from_fn(8, 8, |r, c| {
        if r == 3 && c == 3 {
            1e12
        } else {
            -1e12
        }
    });
    let pyramid = AggregatePyramid::build(&spike);
    let model = LinearModel::new(vec![1e-6], 1e6).unwrap();
    let r = pyramid_top_k(&model, &[pyramid], 2).unwrap();
    assert!(r.results.iter().all(|s| s.score.is_finite()));
    assert_eq!(r.results[0].cell, mbir_archive::extent::CellCoord::new(3, 3));
}
