//! Scatter-gather property tests: random shard-fault cocktails against
//! the fault-domain sharded engine.
//!
//! The invariants:
//!
//! * Healthy sharded runs are bit-identical to the unsharded resilient
//!   engine for any shard count × thread count — partitioning is a pure
//!   execution detail, invisible in the answer.
//! * Under arbitrary per-shard chaos (dead domains, corrupt pages,
//!   healing transients, latency) every hit's score stays inside its own
//!   bounds, exact hits match the base data, and the true winner is never
//!   silently dropped from the reported bounds.
//! * Killing the winner's fault domain always surfaces through quorum:
//!   `require_all` fails with a fully-populated typed
//!   [`InsufficientShards`] error — never a silently truncated answer —
//!   while `best_effort` degrades and classifies the domain as failed.
//! * Merging per-shard degradation summaries conserves every count:
//!   pages read + skipped + quarantined is invariant under the merge,
//!   and completeness is the cell-weighted mean.
//!
//! [`InsufficientShards`]: mbir::core::shard::InsufficientShards

use mbir::core::engine::pyramid_top_k;
use mbir::core::metrics::{merge_shard_summaries, DegradationSummary};
use mbir::core::parallel::WorkerPool;
use mbir::core::resilient::{resilient_top_k, ExecutionBudget};
use mbir::core::shard::{
    scatter_gather_top_k, ArchiveShard, ScatterPolicy, ShardError, ShardOutcome, ShardedArchive,
    ShardedTopK,
};
use mbir::core::source::{CachedTileSource, TileSource};
use mbir::models::linear::LinearModel;
use mbir::progressive::pyramid::AggregatePyramid;
use mbir_archive::fault::{FaultProfile, ResilienceConfig, RetryPolicy};
use mbir_archive::grid::Grid2;
use mbir_archive::shard::ShardPlan;
use mbir_archive::tile::TileStore;
use proptest::prelude::*;

fn world(seed: u64, side: usize) -> (LinearModel, Vec<AggregatePyramid>, Vec<Grid2<f64>>) {
    let grids: Vec<Grid2<f64>> = (0..2)
        .map(|i| {
            Grid2::from_fn(side, side, |r, c| {
                let phase = (seed % 13) as f64 * 0.37 + i as f64;
                ((r as f64 / 6.0 + phase).sin() + (c as f64 / 8.0 - phase).cos()) * 30.0
                    + (seed % 7) as f64
            })
        })
        .collect();
    let pyramids = grids.iter().map(AggregatePyramid::build).collect();
    let w = 0.4 + (seed % 5) as f64 * 0.2;
    (
        LinearModel::new(vec![1.0, w], 0.1).unwrap(),
        pyramids,
        grids,
    )
}

fn page_hash(seed: u64, page: usize) -> u64 {
    seed.wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(page as u64)
        .wrapping_mul(0x5851_f42d_4c95_7f2d)
        >> 32
}

/// What a shard's fault domain is subjected to in a cocktail.
#[derive(Clone, Copy, PartialEq)]
enum ShardFate {
    Healthy,
    /// Every page permanently dead — the whole domain is lost.
    Dead,
    /// Random per-page chaos: corrupt, dead, healing-transient, latency.
    Chaos,
}

/// Per-shard band pyramids + faulted stores + row offsets, built from
/// the same global grids the unsharded reference uses.
struct ShardFixture {
    pyramids: Vec<Vec<AggregatePyramid>>,
    stores: Vec<Vec<TileStore>>,
    offsets: Vec<usize>,
    /// True when some shard can actually lose data (dead or corrupt).
    lossy: bool,
}

fn build_shards(
    grids: &[Grid2<f64>],
    tile: usize,
    shards: usize,
    seed: u64,
    fates: &[ShardFate],
) -> ShardFixture {
    let plan = ShardPlan::row_bands(grids[0].rows(), grids[0].cols(), shards, tile).unwrap();
    let mut fixture = ShardFixture {
        pyramids: Vec::new(),
        stores: Vec::new(),
        offsets: Vec::new(),
        lossy: false,
    };
    for band in plan.bands() {
        let band_grids: Vec<Grid2<f64>> = grids
            .iter()
            .map(|g| plan.extract_band(g, band.shard).unwrap())
            .collect();
        let page_count = TileStore::new(band_grids[0].clone(), tile)
            .unwrap()
            .page_count();
        let shard_seed = seed.wrapping_add(band.shard as u64 * 977);
        let profile = match fates[band.shard] {
            ShardFate::Healthy => None,
            ShardFate::Dead => {
                fixture.lossy = true;
                Some((0..page_count).fold(FaultProfile::new(shard_seed), |p, pg| p.permanent(pg)))
            }
            ShardFate::Chaos => {
                let mut profile = FaultProfile::new(shard_seed);
                for page in 0..page_count {
                    match page_hash(shard_seed, page) % 16 {
                        0 | 1 => {
                            profile = profile.corrupt(page);
                            fixture.lossy = true;
                        }
                        2 | 3 => {
                            profile = profile.permanent(page);
                            fixture.lossy = true;
                        }
                        4..=7 => {
                            let fails = 1 + (page_hash(shard_seed, page) % 3) as u32;
                            profile = profile.transient(page, fails);
                        }
                        8 | 9 => profile = profile.latency(page, 3),
                        _ => {}
                    }
                }
                Some(profile)
            }
        };
        fixture.pyramids.push(
            band_grids
                .iter()
                .map(AggregatePyramid::build)
                .collect::<Vec<_>>(),
        );
        fixture.stores.push(
            band_grids
                .iter()
                .map(|g| {
                    let store = TileStore::new(g.clone(), tile).unwrap();
                    match &profile {
                        Some(p) => store
                            .with_faults(p.clone())
                            .with_resilience(ResilienceConfig::new(RetryPolicy::retries(3), None)),
                        None => store,
                    }
                })
                .collect::<Vec<_>>(),
        );
        fixture.offsets.push(band.row_offset);
    }
    fixture
}

fn run_scatter(
    fixture: &ShardFixture,
    model: &LinearModel,
    k: usize,
    policy: &ScatterPolicy,
    threads: usize,
) -> Result<ShardedTopK, ShardError> {
    // Verified reads: silent page corruption must surface as a typed
    // error (and thus a lost page), never as wrong data in a hit.
    let sources: Vec<CachedTileSource<'_>> = fixture
        .stores
        .iter()
        .map(|s| CachedTileSource::new(s, 8).unwrap())
        .collect();
    let handles: Vec<ArchiveShard<'_, CachedTileSource<'_>>> = fixture
        .pyramids
        .iter()
        .zip(&sources)
        .zip(&fixture.offsets)
        .map(|((pyramids, source), &offset)| ArchiveShard::new(pyramids, source, offset))
        .collect();
    let archive = ShardedArchive::new(handles)?;
    let pool = WorkerPool::new(threads);
    scatter_gather_top_k(
        model,
        &archive,
        k,
        &ExecutionBudget::unlimited(),
        policy,
        &pool,
    )
}

/// Caps the shard count at the number of whole tile rows so every shard
/// owns at least one page row.
fn shard_count_for(side: usize, tile: usize, raw: usize) -> usize {
    1 + raw % side.div_ceil(tile).min(5)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A healthy sharded run is bit-identical to the unsharded resilient
    /// engine at any shard count and thread count.
    #[test]
    fn prop_healthy_sharded_runs_match_the_unsharded_engine(
        seed in 0u64..120,
        side_pow in 4u32..6,   // 16..32
        tile in 2usize..6,
        shards_raw in 0usize..16,
        k in 1usize..7,
        threads_idx in 0usize..4,
    ) {
        let side = 1usize << side_pow;
        let shards = shard_count_for(side, tile, shards_raw);
        let threads = [1usize, 2, 4, 8][threads_idx];
        let (model, pyramids, grids) = world(seed, side);
        let stores: Vec<TileStore> = grids
            .iter()
            .map(|g| TileStore::new(g.clone(), tile).unwrap())
            .collect();
        let src = TileSource::new(&stores).unwrap();
        let reference =
            resilient_top_k(&model, &pyramids, k, &src, &ExecutionBudget::unlimited()).unwrap();

        let fates = vec![ShardFate::Healthy; shards];
        let fixture = build_shards(&grids, tile, shards, seed, &fates);
        let r = run_scatter(&fixture, &model, k, &ScatterPolicy::require_all(), threads).unwrap();

        prop_assert_eq!(&r.results, &reference.results, "shards={} threads={}", shards, threads);
        prop_assert_eq!(r.completeness, 1.0);
        prop_assert!(r.shards.iter().all(|s| s.outcome == ShardOutcome::Complete));
        prop_assert!(!r.is_degraded());
    }

    /// Any random shard-fault cocktail yields a sound best-effort answer:
    /// scores inside their own bounds, exact hits verifiable against the
    /// base grids, and the true winner covered by some reported bound.
    #[test]
    fn prop_shard_fault_cocktails_never_produce_wrong_answers(
        seed in 0u64..120,
        side_pow in 4u32..6,
        tile in 2usize..6,
        shards_raw in 0usize..16,
        k in 1usize..7,
        threads_idx in 0usize..4,
        fate_seed in 0u64..1024,
    ) {
        let side = 1usize << side_pow;
        let shards = shard_count_for(side, tile, shards_raw);
        let threads = [1usize, 2, 4, 8][threads_idx];
        let (model, pyramids, grids) = world(seed, side);
        let strict = pyramid_top_k(&model, &pyramids, k).unwrap();
        let truth = strict.results[0].score;

        let fates: Vec<ShardFate> = (0..shards)
            .map(|s| match page_hash(fate_seed, s) % 4 {
                0 => ShardFate::Dead,
                1 | 2 => ShardFate::Chaos,
                _ => ShardFate::Healthy,
            })
            .collect();
        let fixture = build_shards(&grids, tile, shards, seed, &fates);
        let r = run_scatter(&fixture, &model, k, &ScatterPolicy::best_effort(), threads).unwrap();

        prop_assert!((0.0..=1.0).contains(&r.completeness));
        for hit in &r.results {
            prop_assert!(hit.score.is_finite());
            prop_assert!(hit.bounds.lo <= hit.score && hit.score <= hit.bounds.hi);
            if hit.exact {
                let x: Vec<f64> = grids.iter().map(|g| *g.at(hit.cell.row, hit.cell.col)).collect();
                prop_assert_eq!(hit.score, model.evaluate(&x), "exact hit at {:?}", hit.cell);
            }
        }
        prop_assert!(
            r.results
                .iter()
                .any(|h| h.bounds.lo <= truth && truth <= h.bounds.hi),
            "winner score {} escaped all bounds", truth
        );
        // The shard scoreboard stays consistent with the fates dealt.
        for report in &r.shards {
            if fates[report.shard] == ShardFate::Healthy {
                prop_assert!(report.outcome != ShardOutcome::Failed, "healthy shard failed");
            }
        }
        // A fault-free cocktail must collapse to the exact strict answer.
        if !fixture.lossy {
            prop_assert!(!r.is_degraded());
            prop_assert_eq!(r.completeness, 1.0);
            for (a, b) in r.results.iter().zip(&strict.results) {
                prop_assert_eq!(a.cell, b.cell);
                prop_assert_eq!(a.score, b.score);
                prop_assert!(a.exact);
            }
        }
    }

    /// Killing the winner's fault domain can never be masked by pruning,
    /// so `require_all` must surface it as a fully-populated typed
    /// `InsufficientShards` error — while `best_effort` still answers,
    /// classifying the domain as failed.
    #[test]
    fn prop_dead_winner_domain_is_typed_never_truncated(
        seed in 0u64..120,
        side_pow in 4u32..6,
        tile in 2usize..6,
        shards_raw in 1usize..16,
        k in 1usize..7,
        threads_idx in 0usize..4,
    ) {
        let side = 1usize << side_pow;
        let shards = shard_count_for(side, tile, shards_raw);
        if shards < 2 {
            // A single shard cannot lose its winner and still respond.
            return;
        }
        let threads = [1usize, 2, 4, 8][threads_idx];
        let (model, pyramids, grids) = world(seed, side);
        let strict = pyramid_top_k(&model, &pyramids, k).unwrap();
        let plan = ShardPlan::row_bands(side, side, shards, tile).unwrap();
        let winner_shard = plan.shard_of_row(strict.results[0].cell.row).unwrap();

        let fates: Vec<ShardFate> = (0..shards)
            .map(|s| if s == winner_shard { ShardFate::Dead } else { ShardFate::Healthy })
            .collect();
        let fixture = build_shards(&grids, tile, shards, seed, &fates);

        match run_scatter(&fixture, &model, k, &ScatterPolicy::require_all(), threads) {
            Err(ShardError::Insufficient(e)) => {
                prop_assert_eq!(e.total, shards);
                prop_assert_eq!(e.required, shards);
                prop_assert!(e.responded < shards);
                prop_assert_eq!(e.responded + e.failed.len(), shards);
                prop_assert!(e.failed.contains(&winner_shard));
            }
            other => panic!(
                "require-all over a dead winner domain must fail typed, got {:?}",
                other.map(|r| r.results.len())
            ),
        }

        let fixture = build_shards(&grids, tile, shards, seed, &fates);
        let r = run_scatter(&fixture, &model, k, &ScatterPolicy::best_effort(), threads).unwrap();
        prop_assert_eq!(r.shards[winner_shard].outcome, ShardOutcome::Failed);
        prop_assert!(r.completeness < 1.0);
        let truth = strict.results[0].score;
        prop_assert!(
            r.results
                .iter()
                .any(|h| h.bounds.lo <= truth && truth <= h.bounds.hi),
            "winner score {} escaped all bounds", truth
        );
    }

    /// Merging per-shard degradation summaries conserves every count:
    /// pages read + skipped + quarantined is invariant under the merge,
    /// lifecycle tallies sum, and completeness is the cell-weighted mean.
    #[test]
    fn prop_merged_shard_summaries_conserve_counts(
        part_seed in 0u64..100_000,
        part_count in 0usize..8,
    ) {
        // The vendored proptest shim has no tuple strategies, so the
        // per-shard summaries are derived deterministically from a drawn
        // seed instead of sampled field by field.
        let draw = |salt: u64, modulus: u64| page_hash(part_seed.wrapping_add(salt * 7919), 0) % modulus;
        let parts: Vec<(DegradationSummary, u64)> = (0..part_count)
            .map(|i| {
                let s = i as u64;
                (
                    DegradationSummary {
                        completeness: draw(s * 13 + 1, 1001) as f64 / 1000.0,
                        skipped_pages: draw(s * 13 + 2, 50) as usize,
                        inexact_hits: draw(s * 13 + 3, 10) as usize,
                        widest_bound: draw(s * 13 + 4, 800) as f64 / 100.0,
                        budget_stopped: draw(s * 13 + 5, 2) == 1,
                        shed_queries: draw(s * 13 + 6, 20),
                        cancelled_queries: draw(s * 13 + 7, 20),
                        hedged_reads: draw(s * 13 + 8, 20),
                        pages_read: draw(s * 13 + 9, 200),
                        quarantined_pages: draw(s * 13 + 10, 20),
                        cache_hits: draw(s * 13 + 12, 100),
                        cache_misses: draw(s * 13 + 13, 100),
                        cache_dedup_waits: draw(s * 13 + 14, 20),
                        appended_pages_seen: draw(s * 13 + 15, 30),
                        epoch_invalidated_cache_entries: draw(s * 13 + 16, 30),
                    },
                    1 + draw(s * 13 + 11, 499),
                )
            })
            .collect();
        let merged = merge_shard_summaries(&parts);

        // The page ledger is conserved exactly — in total and per column.
        let ledger = |s: &DegradationSummary| s.pages_read + s.skipped_pages as u64 + s.quarantined_pages;
        prop_assert_eq!(
            ledger(&merged),
            parts.iter().map(|(s, _)| ledger(s)).sum::<u64>()
        );
        prop_assert_eq!(merged.pages_read, parts.iter().map(|(s, _)| s.pages_read).sum::<u64>());
        prop_assert_eq!(
            merged.skipped_pages,
            parts.iter().map(|(s, _)| s.skipped_pages).sum::<usize>()
        );
        prop_assert_eq!(
            merged.quarantined_pages,
            parts.iter().map(|(s, _)| s.quarantined_pages).sum::<u64>()
        );
        prop_assert_eq!(merged.inexact_hits, parts.iter().map(|(s, _)| s.inexact_hits).sum::<usize>());
        prop_assert_eq!(merged.shed_queries, parts.iter().map(|(s, _)| s.shed_queries).sum::<u64>());
        prop_assert_eq!(
            merged.cancelled_queries,
            parts.iter().map(|(s, _)| s.cancelled_queries).sum::<u64>()
        );
        prop_assert_eq!(merged.hedged_reads, parts.iter().map(|(s, _)| s.hedged_reads).sum::<u64>());
        prop_assert_eq!(merged.cache_hits, parts.iter().map(|(s, _)| s.cache_hits).sum::<u64>());
        prop_assert_eq!(merged.cache_misses, parts.iter().map(|(s, _)| s.cache_misses).sum::<u64>());
        prop_assert_eq!(
            merged.cache_dedup_waits,
            parts.iter().map(|(s, _)| s.cache_dedup_waits).sum::<u64>()
        );
        prop_assert_eq!(
            merged.appended_pages_seen,
            parts.iter().map(|(s, _)| s.appended_pages_seen).sum::<u64>()
        );
        prop_assert_eq!(
            merged.epoch_invalidated_cache_entries,
            parts.iter().map(|(s, _)| s.epoch_invalidated_cache_entries).sum::<u64>()
        );
        prop_assert_eq!(merged.budget_stopped, parts.iter().any(|(s, _)| s.budget_stopped));
        let widest = parts.iter().map(|(s, _)| s.widest_bound).fold(0.0f64, f64::max);
        prop_assert_eq!(merged.widest_bound, widest);

        let total: u64 = parts.iter().map(|(_, c)| c).sum();
        if total == 0 {
            prop_assert_eq!(merged.completeness, 1.0);
        } else {
            let weighted: f64 = parts
                .iter()
                .map(|(s, c)| s.completeness * *c as f64)
                .sum::<f64>()
                / total as f64;
            prop_assert!((merged.completeness - weighted).abs() < 1e-12);
            prop_assert!((0.0..=1.0).contains(&merged.completeness));
        }
    }

    /// Degenerate summary merges: the empty shard list is vacuously
    /// complete, a single part merges to itself, and an all-failed fleet
    /// (zero completeness, zero pages read, everything skipped) merges to
    /// zero completeness with the skip ledger conserved.
    #[test]
    fn prop_degenerate_summary_merges(
        part_seed in 0u64..100_000,
        part_count in 1usize..8,
    ) {
        let empty = merge_shard_summaries(&[]);
        prop_assert_eq!(empty.completeness, 1.0);
        prop_assert_eq!(empty.pages_read, 0);
        prop_assert_eq!(empty.skipped_pages, 0);
        prop_assert!(!empty.budget_stopped);

        let draw = |salt: u64, modulus: u64| page_hash(part_seed.wrapping_add(salt * 6151), 1) % modulus;
        let single = (
            DegradationSummary {
                completeness: draw(1, 1001) as f64 / 1000.0,
                skipped_pages: draw(2, 50) as usize,
                inexact_hits: draw(3, 10) as usize,
                widest_bound: draw(4, 800) as f64 / 100.0,
                budget_stopped: draw(5, 2) == 1,
                shed_queries: draw(6, 20),
                cancelled_queries: draw(7, 20),
                hedged_reads: draw(8, 20),
                pages_read: draw(9, 200),
                quarantined_pages: draw(10, 20),
                cache_hits: draw(12, 100),
                cache_misses: draw(13, 100),
                cache_dedup_waits: draw(14, 20),
                appended_pages_seen: draw(15, 30),
                epoch_invalidated_cache_entries: draw(16, 30),
            },
            1 + draw(11, 499),
        );
        let merged_single = merge_shard_summaries(std::slice::from_ref(&single));
        prop_assert!((merged_single.completeness - single.0.completeness).abs() < 1e-12);
        prop_assert_eq!(merged_single.pages_read, single.0.pages_read);
        prop_assert_eq!(merged_single.skipped_pages, single.0.skipped_pages);
        prop_assert_eq!(merged_single.widest_bound, single.0.widest_bound);
        prop_assert_eq!(merged_single.budget_stopped, single.0.budget_stopped);

        let all_failed: Vec<(DegradationSummary, u64)> = (0..part_count)
            .map(|i| {
                (
                    DegradationSummary {
                        completeness: 0.0,
                        skipped_pages: 1 + draw(i as u64 * 17 + 15, 40) as usize,
                        inexact_hits: 0,
                        widest_bound: 0.0,
                        budget_stopped: false,
                        shed_queries: 0,
                        cancelled_queries: 0,
                        hedged_reads: 0,
                        pages_read: 0,
                        quarantined_pages: draw(i as u64 * 17 + 16, 5),
                        cache_hits: 0,
                        cache_misses: 0,
                        cache_dedup_waits: 0,
                        appended_pages_seen: 0,
                        epoch_invalidated_cache_entries: 0,
                    },
                    1 + draw(i as u64 * 17 + 18, 499),
                )
            })
            .collect();
        let merged = merge_shard_summaries(&all_failed);
        prop_assert_eq!(merged.completeness, 0.0, "all-failed fleet merges to zero completeness");
        prop_assert_eq!(merged.pages_read, 0);
        prop_assert_eq!(
            merged.skipped_pages,
            all_failed.iter().map(|(s, _)| s.skipped_pages).sum::<usize>()
        );
    }

    /// Every fault domain dead at once: the best-effort scatter still
    /// answers, `sharded_degradation_summary` reports zero completeness
    /// with a zero page ledger, and the true winner stays covered by the
    /// widened root-level bounds — degraded, never wrong.
    #[test]
    fn prop_all_dead_shards_summarize_soundly(
        seed in 0u64..120,
        side_pow in 4u32..6,
        tile in 2usize..6,
        shards_raw in 0usize..16,
        k in 1usize..7,
        threads_idx in 0usize..4,
    ) {
        let side = 1usize << side_pow;
        let shards = shard_count_for(side, tile, shards_raw);
        let threads = [1usize, 2, 4, 8][threads_idx];
        let (model, pyramids, grids) = world(seed, side);
        let strict = pyramid_top_k(&model, &pyramids, k).unwrap();
        let truth = strict.results[0].score;

        let fates = vec![ShardFate::Dead; shards];
        let fixture = build_shards(&grids, tile, shards, seed, &fates);
        let r = run_scatter(&fixture, &model, k, &ScatterPolicy::best_effort(), threads).unwrap();

        prop_assert!(r.shards.iter().all(|s| s.outcome == ShardOutcome::Failed));
        prop_assert!(r.is_degraded());
        let summary = mbir::core::metrics::sharded_degradation_summary(&r);
        prop_assert_eq!(summary.completeness, 0.0, "nothing resolved anywhere");
        prop_assert_eq!(summary.completeness, r.completeness);
        prop_assert_eq!(summary.pages_read, 0);
        prop_assert!(
            r.results.iter().any(|h| h.bounds.lo <= truth && truth <= h.bounds.hi),
            "winner score {} escaped all bounds with every domain dead", truth
        );
        for hit in &r.results {
            prop_assert!(!hit.exact, "no exact hit can exist without base reads");
            prop_assert!(hit.bounds.lo <= hit.score && hit.score <= hit.bounds.hi);
        }
    }

    /// Degenerate plan geometry: single-row bands under `tile = 1`.
    /// `from_band_rows` accepts them, `extract_band` returns each row
    /// byte-for-byte, and `band_slices` routes any row range through the
    /// right owners.
    #[test]
    fn prop_single_row_bands_extract_and_slice(
        seed in 0u64..120,
        rows in 2usize..10,
        cols in 1usize..12,
        lo_raw in 0usize..10,
        len_raw in 0usize..10,
    ) {
        let heights = vec![1usize; rows];
        let plan = mbir_archive::shard::ShardPlan::from_band_rows(&heights, cols, 1).unwrap();
        prop_assert_eq!(plan.shard_count(), rows);
        let grid = Grid2::from_fn(rows, cols, |r, c| (seed as f64) + (r * cols + c) as f64);
        for s in 0..rows {
            let band = plan.extract_band(&grid, s).unwrap();
            prop_assert_eq!(band.rows(), 1);
            for c in 0..cols {
                prop_assert_eq!(band.at(0, c).to_bits(), grid.at(s, c).to_bits());
            }
        }
        let lo = lo_raw % rows;
        let len = 1 + len_raw % (rows - lo);
        let slices = plan.band_slices(lo, len).unwrap();
        prop_assert_eq!(slices.len(), len, "one slice per single-row band");
        for (i, slice) in slices.iter().enumerate() {
            prop_assert_eq!(slice.shard, lo + i);
            prop_assert_eq!(slice.global_row, lo + i);
            prop_assert_eq!(slice.local_row, 0);
            prop_assert_eq!(slice.rows, 1);
        }
    }
}
