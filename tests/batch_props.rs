//! Batched multi-query property tests: random batches against the
//! shared-frontier engines.
//!
//! The invariants (DESIGN.md §15):
//!
//! * For any batch size Q ∈ {1, 2, 8, 32}, every query's batched answer —
//!   results, effort, completeness, skipped pages, stop reason — is
//!   bit-identical to its solo [`resilient_top_k`] run. Sharing the
//!   descent is a pure execution detail, invisible in the answer.
//! * The batch never reads more pages than the Q solo runs combined —
//!   memoized cell reads can only amortize physical work, never add it.
//! * The identity holds under fault cocktails drawn from the *stateless*
//!   families (permanent, corrupt, latency, and transients that heal
//!   within one logical read): a page's verdict is then independent of
//!   how many physical reads reach it, so memoization cannot change it.
//! * The parallel batched engine agrees with the solo answers at every
//!   thread count in {1, 2, 4, 8}.
//!
//! [`resilient_top_k`]: mbir::core::resilient::resilient_top_k

use mbir::core::batched::batched_top_k;
use mbir::core::parallel::{par_batched_top_k, WorkerPool};
use mbir::core::resilient::{resilient_top_k, ExecutionBudget};
use mbir::core::source::{CellSource, TileSource};
use mbir::models::linear::LinearModel;
use mbir::progressive::pyramid::AggregatePyramid;
use mbir_archive::fault::{FaultProfile, ResilienceConfig, RetryPolicy};
use mbir_archive::grid::Grid2;
use mbir_archive::tile::TileStore;
use proptest::prelude::*;

const BATCH_SIZES: [usize; 4] = [1, 2, 8, 32];

fn world(seed: u64, side: usize) -> (Vec<AggregatePyramid>, Vec<Grid2<f64>>) {
    let grids: Vec<Grid2<f64>> = (0..2)
        .map(|i| {
            Grid2::from_fn(side, side, |r, c| {
                let phase = (seed % 13) as f64 * 0.37 + i as f64;
                ((r as f64 / 6.0 + phase).sin() + (c as f64 / 8.0 - phase).cos()) * 30.0
                    + (seed % 7) as f64
            })
        })
        .collect();
    let pyramids = grids.iter().map(AggregatePyramid::build).collect();
    (pyramids, grids)
}

/// Q query directions over the two shared attributes, spread by the seed
/// so floors mature at different paces and some queries overlap heavily
/// while others diverge.
fn batch(seed: u64, q: usize) -> Vec<LinearModel> {
    (0..q)
        .map(|qi| {
            let tilt = (seed % 9) as f64 * 0.11;
            let coeffs = vec![
                1.0 + 0.15 * qi as f64 - tilt,
                0.4 - 0.09 * qi as f64 + tilt * 0.5,
            ];
            LinearModel::new(coeffs, 0.2 * qi as f64).unwrap()
        })
        .collect()
}

fn page_hash(seed: u64, page: usize) -> u64 {
    seed.wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(page as u64)
        .wrapping_mul(0x5851_f42d_4c95_7f2d)
        >> 32
}

/// Fresh stores with a stateless fault cocktail: permanent, corrupt,
/// injected latency, and transients that heal within the retry policy —
/// families whose page verdict is independent of physical read count, so
/// the batched memo and the solo re-reads must agree. Built fresh per
/// run because transient fault state lives in the store.
fn cocktail_stores(grids: &[Grid2<f64>], tile: usize, fate_seed: u64) -> Vec<TileStore> {
    grids
        .iter()
        .map(|g| {
            let store = TileStore::new(g.clone(), tile).unwrap();
            if fate_seed == 0 {
                return store; // Healthy world.
            }
            let mut profile = FaultProfile::new(fate_seed);
            for page in 0..store.page_count() {
                match page_hash(fate_seed, page) % 16 {
                    0 => profile = profile.corrupt(page),
                    1 | 2 => profile = profile.permanent(page),
                    3..=5 => {
                        let fails = 1 + (page_hash(fate_seed, page) % 3) as u32;
                        profile = profile.transient(page, fails);
                    }
                    6 | 7 => profile = profile.latency(page, 3),
                    _ => {}
                }
            }
            store
                .with_faults(profile)
                .with_resilience(ResilienceConfig::new(RetryPolicy::retries(3), None))
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every query of a random batch gets exactly its solo answer, and
    /// the batch reads no more pages than the solo runs combined —
    /// healthy worlds and stateless fault cocktails alike.
    #[test]
    fn prop_batched_queries_are_bit_identical_to_solo_runs(
        seed in 0u64..120,
        side_pow in 4u32..6,   // 16..32
        tile in 2usize..6,
        k in 1usize..7,
        q_idx in 0usize..4,
        fate_raw in 0u64..4,   // 0 = healthy, else cocktail seed
    ) {
        let side = 1usize << side_pow;
        let q = BATCH_SIZES[q_idx];
        let fate_seed = if fate_raw == 0 { 0 } else { seed.wrapping_mul(31).wrapping_add(fate_raw) };
        let (pyramids, grids) = world(seed, side);
        let models = batch(seed, q);
        let budget = ExecutionBudget::unlimited();

        let batch_stores = cocktail_stores(&grids, tile, fate_seed);
        let batch_src = TileSource::new(&batch_stores).unwrap();
        let out = batched_top_k(&models, &pyramids, k, &batch_src, &budget).unwrap();
        prop_assert_eq!(out.queries.len(), q);
        prop_assert!(out.cell_requests >= out.cells_fetched);
        prop_assert!(out.bound_requests >= out.bound_evals);

        let mut solo_pages = 0u64;
        for (qi, model) in models.iter().enumerate() {
            // Fresh faulted stores per solo run: fault state (transient
            // heal counters) must start where the batch's single physical
            // pass started.
            let solo_stores = cocktail_stores(&grids, tile, fate_seed);
            let solo_src = TileSource::new(&solo_stores).unwrap();
            let solo = resilient_top_k(model, &pyramids, k, &solo_src, &budget).unwrap();
            solo_pages += solo_src.pages_read();
            prop_assert_eq!(&out.queries[qi], &solo, "q={}/{} fate={}", qi, q, fate_seed);
        }
        prop_assert!(
            out.pages_read <= solo_pages,
            "batch read {} pages, solos read {}", out.pages_read, solo_pages
        );
    }

    /// The parallel batched engine returns the same per-query answers as
    /// the solo sequential engine at every thread count.
    #[test]
    fn prop_par_batched_matches_solo_at_every_thread_count(
        seed in 0u64..120,
        side_pow in 4u32..6,
        tile in 2usize..6,
        k in 1usize..7,
        q_idx in 0usize..4,
        threads_idx in 0usize..4,
    ) {
        let side = 1usize << side_pow;
        let q = BATCH_SIZES[q_idx];
        let threads = [1usize, 2, 4, 8][threads_idx];
        let (pyramids, grids) = world(seed, side);
        let models = batch(seed, q);
        let budget = ExecutionBudget::unlimited();
        let stores = cocktail_stores(&grids, tile, 0);

        let pool = WorkerPool::new(threads);
        let src = TileSource::new(&stores).unwrap();
        let out = par_batched_top_k(&models, &pyramids, k, &src, &budget, &pool).unwrap();
        for (qi, model) in models.iter().enumerate() {
            let solo_src = TileSource::new(&stores).unwrap();
            let solo = resilient_top_k(model, &pyramids, k, &solo_src, &budget).unwrap();
            prop_assert_eq!(
                &out.queries[qi].results, &solo.results,
                "threads={} q={}/{}", threads, qi, q
            );
            prop_assert_eq!(out.queries[qi].completeness, 1.0);
            prop_assert_eq!(out.queries[qi].budget_stop, None);
            prop_assert!(out.queries[qi].skipped_pages.is_empty());
        }
    }
}
