//! Quantized coarse-pass property tests, end to end through the facade.
//!
//! The invariants:
//!
//! * **Domination** — every quantized upper bound (row, sub-block, and
//!   block granularity) is at least the exact f64 score of everything it
//!   covers, for random data across magnitude scales. This is the whole
//!   soundness story: a bound that dominates can only ever prune work
//!   that provably cannot matter.
//! * **Bit-identity** — prune-then-exact equals exact-only, as full
//!   result structs: the pruned scan vs the flat scan, the coarse-pruned
//!   Onion walk vs the legacy walk, and the core engines' `CoarseGrid`
//!   pass vs the plain resilient engine — sequentially and at threads
//!   1, 2, 4, and 8, healthy and under deterministic page faults, at
//!   unlimited budgets.
//! * **Degenerate blocks are safe** — constant dimensions (zero range),
//!   single-row stores, and overflow-guard magnitudes must never panic
//!   and never break bit-identity; at worst they disable pruning.

use mbir::core::coarse::CoarseGrid;
use mbir::core::parallel::{par_resilient_top_k_coarse, WorkerPool};
use mbir::core::resilient::{resilient_top_k, resilient_top_k_coarse, ExecutionBudget};
use mbir::core::source::TileSource;
use mbir::index::onion::OnionIndex;
use mbir::index::quant::QuantizedStore;
use mbir::index::scan::{scan_top_k_flat, scan_top_k_quant};
use mbir::index::store::PointStore;
use mbir::models::linear::LinearModel;
use mbir::progressive::pyramid::AggregatePyramid;
use mbir_archive::fault::FaultProfile;
use mbir_archive::grid::Grid2;
use mbir_archive::tile::TileStore;
use proptest::prelude::*;

fn exact_score(dir: &[f64], row: &[f64]) -> f64 {
    dir.iter().zip(row).map(|(a, v)| a * v).sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Row, sub-block, and block bounds all dominate the exact scores
    /// they cover, across six orders of magnitude.
    #[test]
    fn quant_bounds_dominate_exact_scores(
        seed in 0u64..1_000,
        d in 1usize..6,
        n in 1usize..600,
        scale_pick in 0usize..3,
    ) {
        let scale = [1e-6, 1.0, 1e6][scale_pick];
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64 - 0.5) * 200.0 * scale
        };
        let points: Vec<Vec<f64>> = (0..n).map(|_| (0..d).map(|_| next()).collect()).collect();
        let dir: Vec<f64> = (0..d).map(|_| next() / (100.0 * scale)).collect();
        let store = PointStore::from_rows(&points).unwrap();
        let quant = QuantizedStore::build(&store);
        let qq = quant.prepare(&dir);
        for b in 0..quant.blocks() {
            let (start, m) = quant.block_range(b);
            let block_ub = qq.block_upper_bound(b);
            for row in start..start + m {
                let s = exact_score(&dir, store.row(row));
                let row_ub = qq.row_upper_bound(&quant, row);
                prop_assert!(
                    row_ub >= s,
                    "row bound {row_ub} < exact {s} (row {row}, d={d}, scale={scale})"
                );
                prop_assert!(
                    block_ub >= s,
                    "block bound {block_ub} < exact {s} (row {row}, d={d}, scale={scale})"
                );
            }
        }
    }

    /// The pruned scan returns the flat scan's exact results, scores and
    /// order included, for any k.
    #[test]
    fn quant_scan_is_bit_identical(
        seed in 0u64..1_000,
        d in 1usize..6,
        n in 1usize..900,
        k in 1usize..20,
    ) {
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64 - 0.5) * 200.0
        };
        let points: Vec<Vec<f64>> = (0..n).map(|_| (0..d).map(|_| next()).collect()).collect();
        let dir: Vec<f64> = (0..d).map(|_| next() / 100.0).collect();
        let store = PointStore::from_rows(&points).unwrap();
        let quant = QuantizedStore::build(&store);
        let exact = scan_top_k_flat(&store, &dir, k);
        let (pruned, _) = scan_top_k_quant(&store, &quant, &dir, k);
        prop_assert_eq!(pruned.results, exact.results);
    }
}

#[test]
fn degenerate_blocks_never_prune_wrong() {
    // Constant dimensions: zero range, step clamped, codes all equal.
    let constant: Vec<Vec<f64>> = (0..700).map(|_| vec![5.0, -3.0]).collect();
    // Single row; smaller than any block.
    let single = vec![vec![1.0, 2.0, 3.0]];
    // Overflow-guard magnitudes: bounds go infinite, pruning disabled.
    let huge: Vec<Vec<f64>> = (0..600)
        .map(|i| vec![1e304 * if i % 2 == 0 { 1.0 } else { -1.0 }, i as f64])
        .collect();
    // Mixed: one constant dim, one spread dim, a few ties at the top.
    let mixed: Vec<Vec<f64>> = (0..640).map(|i| vec![7.0, (i % 13) as f64]).collect();
    for points in [constant, single, huge, mixed] {
        let d = points[0].len();
        let dir: Vec<f64> = (0..d).map(|j| 1.0 - 0.4 * j as f64).collect();
        let store = PointStore::from_rows(&points).unwrap();
        let quant = QuantizedStore::build(&store);
        for k in [1usize, 5, 17] {
            let exact = scan_top_k_flat(&store, &dir, k);
            let (pruned, _) = scan_top_k_quant(&store, &quant, &dir, k);
            assert_eq!(pruned.results, exact.results, "d={d}, k={k}");
        }
    }
}

#[test]
fn quant_onion_walk_matches_legacy() {
    let mut state = 41u64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 11) as f64 / (1u64 << 53) as f64 - 0.5) * 2.0
    };
    let points: Vec<Vec<f64>> = (0..6_000)
        .map(|_| (0..3).map(|_| next()).collect())
        .collect();
    let quant_index =
        OnionIndex::build_quantized_with(points.clone(), 16, 8, 7, 1).expect("valid workload");
    let legacy_index = OnionIndex::build_legacy_with(points, 16, 8, 7).expect("valid workload");
    assert_eq!(quant_index.layer_sizes(), legacy_index.layer_sizes());
    for dir in [
        vec![0.443, 0.222, 0.153],
        vec![-0.8, 0.1, 0.6],
        vec![0.0, 0.0, 1.0],
    ] {
        for k in [1usize, 4, 10] {
            let legacy = legacy_index.top_k_max_legacy(&dir, k).expect("valid query");
            let pruned = quant_index.top_k_max_quant(&dir, k).expect("valid query");
            assert_eq!(pruned.results, legacy.results, "dir={dir:?}, k={k}");
        }
    }
}

/// A rough world: loose interval bounds, busy descent — the regime where
/// the engines' coarse pass does real pruning in the parallel paths.
fn rough_world() -> (LinearModel, Vec<AggregatePyramid>, Vec<TileStore>) {
    let grids: Vec<Grid2<f64>> = (0..3)
        .map(|j| {
            Grid2::from_fn(64, 64, |r, c| {
                let h = (j as u64 + 1)
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add((r * 8191 + c * 127) as u64)
                    .wrapping_mul(2862933555777941757);
                (h >> 11) as f64 / (1u64 << 53) as f64 * 100.0
            })
        })
        .collect();
    let pyramids = grids.iter().map(AggregatePyramid::build).collect();
    let stores = grids
        .iter()
        .map(|g| TileStore::new(g.clone(), 8).unwrap())
        .collect();
    (
        LinearModel::new(vec![1.0, 0.7, 0.4], 0.0).unwrap(),
        pyramids,
        stores,
    )
}

#[test]
fn core_coarse_engines_match_plain_at_every_thread_count() {
    let (model, pyramids, stores) = rough_world();
    let coarse = CoarseGrid::build(&pyramids).unwrap();
    let src = TileSource::new(&stores).unwrap();
    let budget = ExecutionBudget::unlimited();
    for k in [1usize, 7, 12] {
        let plain = resilient_top_k(&model, &pyramids, k, &src, &budget).unwrap();
        let seq = resilient_top_k_coarse(&model, &pyramids, k, &src, &budget, &coarse).unwrap();
        assert_eq!(seq.results, plain.results, "sequential, k={k}");
        assert_eq!(seq.completeness, plain.completeness);
        assert_eq!(seq.skipped_pages, plain.skipped_pages);
        for threads in [1usize, 2, 4, 8] {
            let pool = WorkerPool::new(threads);
            let par =
                par_resilient_top_k_coarse(&model, &pyramids, k, &src, &budget, &coarse, &pool)
                    .unwrap();
            assert_eq!(par.results, plain.results, "threads={threads}, k={k}");
            assert_eq!(par.completeness, plain.completeness);
            assert_eq!(par.skipped_pages, plain.skipped_pages);
        }
    }
}

#[test]
fn core_coarse_engines_match_plain_under_faults() {
    let (model, pyramids, stores) = rough_world();
    let coarse = CoarseGrid::build(&pyramids).unwrap();
    // Kill the healthy winner's page so the degraded merge is exercised.
    let healthy_src = TileSource::new(&stores).unwrap();
    let healthy = resilient_top_k(
        &model,
        &pyramids,
        5,
        &healthy_src,
        &ExecutionBudget::unlimited(),
    )
    .unwrap();
    let winner = healthy.results[0].cell;
    let page = stores[0].page_of(winner.row, winner.col);
    let stores: Vec<TileStore> = stores
        .into_iter()
        .map(|s| s.with_faults(FaultProfile::new(0).permanent(page)))
        .collect();
    let src = TileSource::new(&stores).unwrap();
    let budget = ExecutionBudget::unlimited();
    let plain = resilient_top_k(&model, &pyramids, 5, &src, &budget).unwrap();
    assert!(plain.is_degraded(), "fault must actually degrade the run");
    let seq = resilient_top_k_coarse(&model, &pyramids, 5, &src, &budget, &coarse).unwrap();
    assert_eq!(seq.results, plain.results);
    assert_eq!(seq.completeness, plain.completeness);
    assert_eq!(seq.skipped_pages, plain.skipped_pages);
    for threads in [1usize, 2, 4, 8] {
        let pool = WorkerPool::new(threads);
        let par = par_resilient_top_k_coarse(&model, &pyramids, 5, &src, &budget, &coarse, &pool)
            .unwrap();
        assert_eq!(par.results, plain.results, "threads={threads}");
        assert_eq!(par.completeness, plain.completeness);
        assert_eq!(par.skipped_pages, plain.skipped_pages);
    }
}
