//! End-to-end geology pipeline: synthetic wells -> riverbed knowledge model
//! -> progressive screening -> SPROC composite queries over well components.

use mbir::index::sproc::SprocIndex;
use mbir::models::knowledge::geology::RiverbedModel;
use mbir_archive::lithology::Lithology;
use mbir_archive::welllog::WellLog;

fn well_archive(n: usize, plant_every: usize) -> (Vec<WellLog>, Vec<usize>) {
    let wells: Vec<WellLog> = (0..n)
        .map(|i| {
            if i % plant_every == 0 {
                WellLog::synthetic_with_riverbed(i as u64, 600.0)
            } else {
                WellLog::synthetic(i as u64, 600.0)
            }
        })
        .collect();
    let planted = (0..n).step_by(plant_every).collect();
    (wells, planted)
}

#[test]
fn screening_with_structure_bound_is_lossless() {
    let (wells, _) = well_archive(40, 4);
    let model = RiverbedModel::paper();
    // Exact ranking by full scoring.
    let mut exact: Vec<(usize, f64)> = wells
        .iter()
        .enumerate()
        .map(|(i, w)| (i, model.well_score(w)))
        .collect();
    exact.sort_by(|a, b| b.1.total_cmp(&a.1));
    let k = 5;

    // Screened evaluation: bound-sorted with early termination.
    let mut bounds: Vec<(usize, f64)> = wells
        .iter()
        .enumerate()
        .map(|(i, w)| {
            let runs: Vec<(Lithology, f64)> = w
                .lithology_runs()
                .iter()
                .map(|(l, _, t)| (*l, *t))
                .collect();
            (i, model.structure_upper_bound(&runs))
        })
        .collect();
    bounds.sort_by(|a, b| b.1.total_cmp(&a.1));
    let mut scored: Vec<(usize, f64)> = Vec::new();
    let mut evaluated = 0usize;
    for &(i, bound) in &bounds {
        let kth = if scored.len() >= k {
            scored[k - 1].1
        } else {
            f64::NEG_INFINITY
        };
        if bound <= kth {
            break;
        }
        evaluated += 1;
        scored.push((i, model.well_score(&wells[i])));
        scored.sort_by(|a, b| b.1.total_cmp(&a.1));
    }
    scored.truncate(k);
    // Same scores as exact top-K.
    for ((_, a), (_, b)) in scored.iter().zip(exact.iter().take(k)) {
        assert!(
            (a - b).abs() < 1e-9,
            "screened {scored:?} vs exact {exact:?}"
        );
    }
    assert!(evaluated < wells.len(), "screening must save evaluations");
}

#[test]
fn planted_wells_dominate_the_ranking() {
    let (wells, planted) = well_archive(30, 3);
    let model = RiverbedModel::paper();
    let mut ranked: Vec<(usize, f64)> = wells
        .iter()
        .enumerate()
        .map(|(i, w)| (i, model.well_score(w)))
        .collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
    let top10: Vec<usize> = ranked.iter().take(10).map(|(i, _)| *i).collect();
    let planted_hits = top10.iter().filter(|i| planted.contains(i)).count();
    assert!(
        planted_hits >= 5,
        "top-10 should be dominated by planted wells, got {planted_hits} ({top10:?})"
    );
}

#[test]
fn sproc_assembles_multi_well_prospects() {
    // A composite prospect: (seal well, reservoir well, source well) with a
    // chain constraint that consecutive picks are spatially adjacent (here:
    // index distance <= 3, standing in for map distance).
    let (wells, _) = well_archive(20, 4);
    let model = RiverbedModel::paper();
    // Component scores: seal quality ~ shale fraction; reservoir ~ riverbed
    // score; source ~ gamma-hot fraction.
    let seal: Vec<f64> = wells
        .iter()
        .map(|w| {
            let runs = w.lithology_runs();
            let shale: f64 = runs
                .iter()
                .filter(|(l, _, _)| *l == Lithology::Shale)
                .map(|(_, _, t)| t)
                .sum();
            let total: f64 = runs.iter().map(|(_, _, t)| t).sum();
            shale / total
        })
        .collect();
    let reservoir: Vec<f64> = wells.iter().map(|w| model.well_score(w)).collect();
    let source: Vec<f64> = wells
        .iter()
        .map(|w| {
            let hot = w.samples().iter().filter(|s| s.gamma_api > 80.0).count();
            hot as f64 / w.len() as f64
        })
        .collect();
    let index = SprocIndex::new(vec![seal, reservoir, source]).unwrap();
    let adjacency = |_m: usize, a: usize, b: usize| -> f64 {
        if a.abs_diff(b) <= 3 && a != b {
            0.3
        } else {
            -0.5
        }
    };
    let k = 4;
    let brute = index.brute_force(k, Some(&adjacency), 10_000_000).unwrap();
    let dp = index.top_k_dp(k, Some(&adjacency)).unwrap();
    assert!(dp.score_equivalent(&brute, 1e-9));
    assert!(
        dp.stats.comparisons < brute.stats.comparisons,
        "SPROC must beat enumeration: {} vs {}",
        dp.stats.comparisons,
        brute.stats.comparisons
    );
    // The adjacency constraint is honoured by the winner.
    let best = &dp.assemblies[0];
    for pair in best.choice.windows(2) {
        assert!(pair[0].abs_diff(pair[1]) <= 3);
    }
}
