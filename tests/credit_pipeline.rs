//! End-to-end credit-scoring pipeline: synthetic applicants -> FICO model
//! -> hinted Onion retrieval of both tails of the score distribution.

use mbir::index::onion::OnionIndex;
use mbir::index::scan::scan_top_k;
use mbir::models::linear::{ApplicantGenerator, FicoModel};

#[test]
fn both_score_tails_retrieve_exactly_with_hints() {
    let applicants = ApplicantGenerator::new(7).generate(10_000);
    let model = FicoModel::standard();
    let attributes: Vec<Vec<f64>> = applicants.iter().map(|a| a.to_vector().to_vec()).collect();
    let weights = model.penalties().coefficients().to_vec();
    let negated: Vec<f64> = weights.iter().map(|w| -w).collect();
    let onion =
        OnionIndex::build_with_hints(attributes.clone(), &[weights.clone(), negated], 64, 32, 7)
            .unwrap();

    let k = 10;
    // Riskiest (max penalty) and safest (min penalty).
    let riskiest = onion.top_k_max(&weights, k).unwrap();
    let safest = onion.top_k_min(&weights, k).unwrap();
    let scan_max = scan_top_k(&attributes, k, |x| {
        weights.iter().zip(x).map(|(a, v)| a * v).sum()
    });
    assert!(riskiest.score_equivalent(&scan_max, 1e-9));
    let scan_min = scan_top_k(&attributes, k, |x| {
        -weights.iter().zip(x).map(|(a, v)| a * v).sum::<f64>()
    });
    for (got, want) in safest.results.iter().zip(&scan_min.results) {
        assert!((got.score + want.score).abs() < 1e-9);
    }
    // Both directions prune hard thanks to their hints.
    assert!(
        riskiest.stats.tuples_examined < 2_000,
        "examined {}",
        riskiest.stats.tuples_examined
    );
    assert!(
        safest.stats.tuples_examined < 2_000,
        "examined {}",
        safest.stats.tuples_examined
    );

    // Score semantics: retrieved tails straddle the published thresholds.
    let worst_score = model.score(&applicants[riskiest.results[0].index]);
    let best_score = model.score(&applicants[safest.results[0].index]);
    assert!(worst_score < 620.0, "paper: 8% foreclosure below 620");
    assert!(best_score > 680.0, "paper: <2% foreclosure above 680");
    assert!(model.foreclosure_probability(worst_score) > model.foreclosure_probability(best_score));
}
