//! End-to-end fire-ants pipeline: weather archive -> Fig. 1 FSM -> coarse
//! screening, checked for soundness over a whole grid of climates.

use mbir::models::fsm::fire_ants::{
    classify_series, coarse_partition, detect_fly_days, fire_ants_fsm, may_have_fly_event,
    BlockSummary, DayClass,
};
use mbir_archive::weather::WeatherGenerator;

#[test]
fn block_screen_never_drops_a_firing_region() {
    let mut firing = 0;
    let mut screened = 0;
    for seed in 0..120u64 {
        // Sweep climates from alpine to tropical.
        let mean_temp = 5.0 + (seed % 12) as f64 * 2.0;
        let series = WeatherGenerator::new(seed)
            .with_temperature(mean_temp, 8.0, 2.0)
            .generate(0, 365);
        let events = detect_fly_days(&series).unwrap();
        let summary = series
            .values()
            .chunks(30)
            .map(BlockSummary::of)
            .reduce(|a, b| a.merge(&b))
            .unwrap();
        if !may_have_fly_event(&summary) {
            screened += 1;
            assert!(
                events.is_empty(),
                "seed {seed}: screen dropped {} events",
                events.len()
            );
        }
        if !events.is_empty() {
            firing += 1;
        }
    }
    assert!(firing > 10, "test needs firing regions, got {firing}");
    assert!(screened > 10, "test needs screened regions, got {screened}");
}

#[test]
fn coarse_fsm_screen_is_sound_and_useful() {
    let (fsm, _) = fire_ants_fsm();
    let coarse = fsm.coarsen(&coarse_partition()).unwrap();
    let mut pruned = 0;
    for seed in 0..60u64 {
        let mean_temp = 4.0 + (seed % 10) as f64;
        let series = WeatherGenerator::new(seed)
            .with_temperature(mean_temp, 6.0, 1.5)
            .generate(0, 200);
        let symbols = classify_series(&series);
        let events = fsm.acceptance_events(&symbols).unwrap();
        let may = coarse.may_reach_accepting(&symbols);
        if !events.is_empty() {
            assert!(may, "seed {seed}: coarse machine missed real events");
        }
        if !may {
            pruned += 1;
        }
    }
    assert!(pruned > 0, "coarse machine should prune some cold regions");
}

#[test]
fn fsm_runner_matches_naive_resimulation() {
    // Re-simulate by hand: track rain/dry-run/temperature exactly as the
    // paper's text describes, and compare event days with the machine.
    for seed in 0..30u64 {
        let series = WeatherGenerator::new(seed)
            .with_temperature(20.0, 9.0, 2.0)
            .generate(0, 365);
        let machine_days = detect_fly_days(&series).unwrap();

        let mut dry_run = 0u32;
        let mut rained_before = false;
        let mut airborne = false;
        let mut naive_days = Vec::new();
        for (day, w) in series.iter() {
            if w.rained() {
                rained_before = true;
                dry_run = 0;
                airborne = false;
            } else {
                dry_run += 1;
                if rained_before && !airborne && dry_run >= 3 && w.warm() {
                    naive_days.push(day);
                    airborne = true;
                }
            }
        }
        assert_eq!(machine_days, naive_days, "seed {seed}");
    }
}

#[test]
fn alphabet_classification_is_exhaustive() {
    let series = WeatherGenerator::new(9).generate(0, 500);
    let symbols = classify_series(&series);
    assert_eq!(symbols.len(), 500);
    for (sym, (_, day)) in symbols.iter().zip(series.iter()) {
        match sym {
            DayClass::Rains => assert!(day.rained()),
            DayClass::DryWarm => assert!(!day.rained() && day.warm()),
            DayClass::DryCool => assert!(!day.rained() && !day.warm()),
        }
    }
}
