//! Crash-consistent append property tests: random commit sequences,
//! arbitrary crash offsets, and snapshot-isolated queries.
//!
//! The invariants:
//!
//! * Crashing the journal writer at *any* byte offset loses at most the
//!   uncommitted suffix: recovery restores an archive bit-identical —
//!   journal bytes, grids, pyramids, published snapshot — to one that
//!   committed exactly the surviving prefix and never crashed.
//! * Every query family over a snapshot is bit-identical to the same
//!   query over a freshly built archive of the snapshot's committed rows:
//!   sequential, parallel at 1/2/4/8 threads, and scatter-gather at 1 and
//!   4 shards. Appends are invisible to a running query.
//! * A standing continuous query polled on any schedule across live
//!   commits — including a crash and recovery mid-stream — raises exactly
//!   the batch alerts over the final committed prefix.
//! * Epoch-keyed cache invalidation drops only the append frontier:
//!   committed-prefix pages keep serving hits across commits, and
//!   re-materialized frontier pages are counted as append-side reads.

use mbir::core::continuous::ContinuousQueryDriver;
use mbir::core::parallel::{par_resilient_top_k, WorkerPool};
use mbir::core::resilient::{resilient_top_k, ExecutionBudget};
use mbir::core::shard::{scatter_gather_top_k, ArchiveShard, ScatterPolicy, ShardedArchive};
use mbir::core::snapshot::{EpochSnapshot, LiveArchive};
use mbir::core::source::{CachedTileSource, CellSource, TileSource};
use mbir::models::fsm::fire_ants::{fire_ants_fsm, DayClass};
use mbir::models::linear::LinearModel;
use mbir::progressive::pyramid::AggregatePyramid;
use mbir_archive::fault::WriteFault;
use mbir_archive::grid::Grid2;
use mbir_archive::shard::ShardPlan;
use mbir_archive::tile::TileStore;
use mbir_archive::weather::WeatherGenerator;
use proptest::prelude::*;

/// Deterministic cell content keyed by absolute coordinates, so the
/// archive after any number of commits equals one `from_fn` build over
/// the full height — the bit-identity reference is trivial to construct.
fn cell_value(seed: u64, attr: usize, row: usize, col: usize) -> f64 {
    let h = seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add((attr as u64) << 40)
        .wrapping_add((row as u64) << 20)
        .wrapping_add(col as u64)
        .wrapping_mul(0x5851_f42d_4c95_7f2d);
    ((h >> 16) % 10_000) as f64 / 50.0 - 100.0
}

fn full_grids(seed: u64, attrs: usize, rows: usize, cols: usize) -> Vec<Grid2<f64>> {
    (0..attrs)
        .map(|a| Grid2::from_fn(rows, cols, |r, c| cell_value(seed, a, r, c)))
        .collect()
}

/// The bands of one commit: rows `[offset, offset + height)` of the full
/// archive, one grid per attribute.
fn band_at(seed: u64, attrs: usize, offset: usize, height: usize, cols: usize) -> Vec<Grid2<f64>> {
    (0..attrs)
        .map(|a| Grid2::from_fn(height, cols, |r, c| cell_value(seed, a, offset + r, c)))
        .collect()
}

/// An archive that committed `heights` appends over the base and never
/// crashed — the reference every recovery is compared against.
fn clean_archive(
    seed: u64,
    attrs: usize,
    base_rows: usize,
    heights: &[usize],
    cols: usize,
    tile: usize,
) -> LiveArchive {
    let mut live = LiveArchive::new(full_grids(seed, attrs, base_rows, cols), tile).unwrap();
    let mut offset = base_rows;
    for &h in heights {
        live.append(&band_at(seed, attrs, offset, h, cols)).unwrap();
        offset += h;
    }
    live
}

fn snapshots_bit_eq(a: &EpochSnapshot, b: &EpochSnapshot) -> bool {
    a.epoch() == b.epoch()
        && a.pyramids().len() == b.pyramids().len()
        && a.pyramids()
            .iter()
            .zip(b.pyramids())
            .all(|(x, y)| x.levels() == y.levels())
        && a.stores().iter().zip(b.stores()).all(|(x, y)| {
            x.rows() == y.rows()
                && x.cols() == y.cols()
                && (0..x.rows()).all(|r| {
                    (0..x.cols())
                        .all(|c| x.read(r, c).unwrap().to_bits() == y.read(r, c).unwrap().to_bits())
                })
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Crash the journal writer at an arbitrary byte offset of a random
    /// commit sequence (varying attribute counts, band heights, widths):
    /// recovery restores exactly the committed prefix, bit-identical to a
    /// clean archive, and the byte ledger balances.
    #[test]
    fn prop_recovery_is_bit_identical_to_a_clean_prefix(
        seed in 0u64..1_000_000,
        attrs in 1usize..4,
        commits in 1usize..4,
        tile in 1usize..4,
        cols in 1usize..7,
        cut_sel in 0usize..4096,
    ) {
        let base_rows = tile * 2;
        let heights: Vec<usize> = (0..commits)
            .map(|i| tile * (1 + (seed as usize + i) % 2))
            .collect();
        let clean = clean_archive(seed, attrs, base_rows, &heights, cols, tile);
        let cut = cut_sel % (clean.journal_bytes().len() + 1);

        let bases = full_grids(seed, attrs, base_rows, cols);
        let mut live = LiveArchive::new(bases.clone(), tile)
            .unwrap()
            .with_write_fault(WriteFault::CrashAtOffset { offset: cut });
        let mut offset = base_rows;
        let mut committed = 0usize;
        for &h in &heights {
            match live.append(&band_at(seed, attrs, offset, h, cols)) {
                Ok(_) => {
                    offset += h;
                    committed += 1;
                }
                Err(_) => break,
            }
        }

        let (rec, report) = LiveArchive::recover(bases, tile, live.journal_bytes()).unwrap();
        // The writer's committed groups all survive; nothing extra appears.
        prop_assert_eq!(report.applied as usize, committed, "cut {}", cut);
        prop_assert_eq!(
            report.committed_bytes + report.dropped_bytes,
            live.journal_bytes().len(),
            "byte ledger must balance at cut {}", cut
        );
        let reference = clean_archive(seed, attrs, base_rows, &heights[..committed], cols, tile);
        prop_assert_eq!(
            rec.journal_bytes(),
            reference.journal_bytes(),
            "journal bytes must match a clean archive at cut {}", cut
        );
        prop_assert!(
            snapshots_bit_eq(&rec.snapshot(), &reference.snapshot()),
            "snapshot must match a clean archive at cut {}", cut
        );
        // The recovered archive is live again: a fresh append commits.
        let mut rec = rec;
        let resumed_offset = rec.rows();
        rec.append(&band_at(seed, attrs, resumed_offset, tile, cols)).unwrap();
        prop_assert_eq!(rec.rows(), resumed_offset + tile);
    }

    /// Every engine family over a snapshot answers bit-identically to the
    /// same engine over a freshly built archive of the snapshot's rows:
    /// sequential, 1/2/4/8 threads, and 1/4 shards.
    #[test]
    fn prop_snapshot_queries_are_bit_identical_across_threads_and_shards(
        seed in 0u64..1_000_000,
        commits in 1usize..4,
        k in 1usize..6,
    ) {
        let (attrs, cols, tile, base_rows) = (2usize, 16usize, 4usize, 16usize);
        let heights = vec![4usize; commits];
        let live = clean_archive(seed, attrs, base_rows, &heights, cols, tile);
        let snap = live.snapshot();
        let rows = snap.rows();

        // Reference: an archive built in one shot over the committed rows.
        let grids = full_grids(seed, attrs, rows, cols);
        let pyramids: Vec<AggregatePyramid> =
            grids.iter().map(AggregatePyramid::build).collect();
        let stores: Vec<TileStore> = grids
            .iter()
            .map(|g| TileStore::new(g.clone(), tile).unwrap())
            .collect();
        let src = TileSource::new(&stores).unwrap();
        let model = LinearModel::new(vec![1.0, 0.7], 0.1).unwrap();
        let budget = ExecutionBudget::unlimited();
        let reference = resilient_top_k(&model, &pyramids, k, &src, &budget).unwrap();

        let seq = snap.query_top_k(&model, k, &budget).unwrap();
        prop_assert_eq!(&seq.results, &reference.results);
        prop_assert_eq!(seq.completeness, 1.0);

        let snap_src = TileSource::new(snap.stores()).unwrap();
        for threads in [1usize, 2, 4, 8] {
            let pool = WorkerPool::new(threads);
            let par =
                par_resilient_top_k(&model, snap.pyramids(), k, &snap_src, &budget, &pool)
                    .unwrap();
            prop_assert_eq!(&par.results, &reference.results, "threads {}", threads);
            prop_assert!(!par.is_degraded());
        }

        for shards in [1usize, 4] {
            let plan = ShardPlan::row_bands(rows, cols, shards, tile).unwrap();
            let band_grids: Vec<Vec<Grid2<f64>>> = plan
                .bands()
                .iter()
                .map(|band| {
                    grids
                        .iter()
                        .map(|g| plan.extract_band(g, band.shard).unwrap())
                        .collect()
                })
                .collect();
            let band_pyramids: Vec<Vec<AggregatePyramid>> = band_grids
                .iter()
                .map(|gs| gs.iter().map(AggregatePyramid::build).collect())
                .collect();
            let band_stores: Vec<Vec<TileStore>> = band_grids
                .iter()
                .map(|gs| {
                    gs.iter()
                        .map(|g| TileStore::new(g.clone(), tile).unwrap())
                        .collect()
                })
                .collect();
            let band_sources: Vec<TileSource<'_>> = band_stores
                .iter()
                .map(|s| TileSource::new(s).unwrap())
                .collect();
            let handles: Vec<ArchiveShard<'_, TileSource<'_>>> = band_pyramids
                .iter()
                .zip(&band_sources)
                .zip(plan.bands())
                .map(|((p, s), band)| ArchiveShard::new(p, s, band.row_offset))
                .collect();
            let archive = ShardedArchive::new(handles).unwrap();
            let pool = WorkerPool::new(4);
            let r = scatter_gather_top_k(
                &model,
                &archive,
                k,
                &budget,
                &ScatterPolicy::require_all(),
                &pool,
            )
            .unwrap();
            prop_assert_eq!(&r.results, &reference.results, "shards {}", shards);
            prop_assert_eq!(r.completeness, 1.0);
        }
    }

    /// A standing fire-ants query polled on an arbitrary schedule across
    /// live commits — with the writer crashing at a random journal offset
    /// and the archive recovered — raises exactly the batch alerts over
    /// the final committed prefix of days.
    #[test]
    fn prop_recovered_standing_query_alerts_match_batch(
        seed in 0u64..100_000,
        commits in 1usize..6,
        cut_sel in 0usize..4096,
        poll_mask in 0u32..64,
    ) {
        let (cols, tile, band_rows, base_days) = (3usize, 4usize, 8usize, 8usize);
        let total_days = base_days + commits * band_rows;
        let series = WeatherGenerator::new(seed)
            .with_temperature(22.0, 8.0, 2.0)
            .generate(0, total_days);
        let days = series.values();
        let weather_bands = |range: std::ops::Range<usize>| -> Vec<Grid2<f64>> {
            vec![
                Grid2::from_fn(range.len(), cols, |r, _| days[range.start + r].rain_mm),
                Grid2::from_fn(range.len(), cols, |r, _| days[range.start + r].temp_c),
            ]
        };

        // Size the cut against the never-crashing journal.
        let mut clean = LiveArchive::new(weather_bands(0..base_days), tile).unwrap();
        for i in 0..commits {
            let start = base_days + i * band_rows;
            clean.append(&weather_bands(start..start + band_rows)).unwrap();
        }
        let cut = cut_sel % (clean.journal_bytes().len() + 1);

        let mut live = LiveArchive::new(weather_bands(0..base_days), tile)
            .unwrap()
            .with_write_fault(WriteFault::CrashAtOffset { offset: cut });
        let mut driver = ContinuousQueryDriver::new(0, 1, 1);
        let mut alerts = driver.poll(&live.snapshot()).unwrap();
        for i in 0..commits {
            let start = base_days + i * band_rows;
            if live.append(&weather_bands(start..start + band_rows)).is_err() {
                break;
            }
            if poll_mask & (1 << i) != 0 {
                alerts.extend(driver.poll(&live.snapshot()).unwrap());
            }
        }
        // The process dies; the journal is all that survives. The standing
        // query itself resumes on the recovered archive's snapshot.
        let (rec, report) =
            LiveArchive::recover(weather_bands(0..base_days), tile, live.journal_bytes())
                .unwrap();
        alerts.extend(driver.poll(&rec.snapshot()).unwrap());

        let committed_days = base_days + report.applied as usize * band_rows;
        prop_assert_eq!(driver.cursor(), committed_days);
        let (fsm, _) = fire_ants_fsm();
        let symbols: Vec<DayClass> =
            days[..committed_days].iter().map(DayClass::of).collect();
        let batch = fsm.acceptance_events(&symbols).unwrap();
        prop_assert_eq!(alerts, batch, "cut {} mask {:b}", cut, poll_mask);
    }
}

#[test]
fn epoch_cache_invalidation_tracks_the_append_frontier() {
    let (seed, attrs, cols, tile, base_rows) = (7u64, 2usize, 16usize, 4usize, 8usize);
    let mut live = LiveArchive::new(full_grids(seed, attrs, base_rows, cols), tile).unwrap();
    live.append(&band_at(seed, attrs, base_rows, 4, cols))
        .unwrap();
    let snap = live.snapshot();
    assert_eq!(snap.rows(), 12);

    // A reader warms every page of the epoch-1 view through a cache that
    // shares the archive's stats ledger.
    let cache = CachedTileSource::new(snap.stores(), 64).unwrap();
    let stats = live.stats();
    for row in (0..12).step_by(tile) {
        for col in (0..cols).step_by(tile) {
            cache.base_cell(0, row, col).unwrap();
        }
    }
    let pages = 12 / tile * (cols / tile);
    assert_eq!(stats.cache_misses(), pages as u64);

    // The archive's reported frontier for a commit at the current high
    // water mark lies past every cached page: advancing the epoch there
    // drops nothing and the whole committed prefix keeps serving hits.
    assert_eq!(
        live.first_page_of_row(12),
        snap.stores()[0].page_of(8, 0) + 4
    );
    assert_eq!(cache.advance_epoch(live.first_page_of_row(12)), 0);
    assert_eq!(stats.cache_invalidations(), 0);
    let hits_before = stats.cache_hits();
    for col in (0..cols).step_by(tile) {
        cache.base_cell(1, 0, col).unwrap();
    }
    assert_eq!(
        stats.cache_hits(),
        hits_before + 4,
        "prefix pages stayed warm"
    );

    // Treating the last committed band as the frontier invalidates exactly
    // its pages; their re-materialization is counted as append-side reads.
    let frontier = live.first_page_of_row(base_rows);
    assert_eq!(frontier, 8);
    assert_eq!(cache.advance_epoch(frontier), cols / tile);
    assert_eq!(stats.cache_invalidations(), (cols / tile) as u64);
    let misses_before = stats.cache_misses();
    cache.base_cell(0, base_rows, 0).unwrap();
    assert_eq!(stats.cache_misses(), misses_before + 1);
    assert_eq!(stats.appended_pages_seen(), 1);
    // Pages below the frontier still never left the cache.
    let hits_before = stats.cache_hits();
    cache.base_cell(0, 0, 0).unwrap();
    assert_eq!(stats.cache_hits(), hits_before + 1);
}

/// Epoch-publish interleaving smoke test: concurrent readers querying
/// through the parallel engine while a writer commits must only ever see
/// complete epochs — right rows, right pyramids, complete answers.
#[test]
fn interleaved_readers_only_see_complete_epochs() {
    let (seed, attrs, cols, tile, base_rows) = (3u64, 2usize, 16usize, 4usize, 8usize);
    let live = std::sync::Mutex::new(
        LiveArchive::new(full_grids(seed, attrs, base_rows, cols), tile).unwrap(),
    );
    let reader = live.lock().unwrap().handle();
    let model = LinearModel::new(vec![1.0, 0.7], 0.1).unwrap();
    let budget = ExecutionBudget::unlimited();
    std::thread::scope(|scope| {
        for t in 0..4 {
            let reader = reader.clone();
            let model = &model;
            let budget = &budget;
            scope.spawn(move || {
                let pool = WorkerPool::new(1 + t % 3);
                for _ in 0..25 {
                    let snap = reader.current();
                    let epoch = snap.epoch();
                    assert_eq!(epoch.rows, base_rows + epoch.epoch as usize * tile);
                    let src = TileSource::new(snap.stores()).unwrap();
                    let r = par_resilient_top_k(model, snap.pyramids(), 3, &src, budget, &pool)
                        .unwrap();
                    assert_eq!(r.completeness, 1.0, "epoch {}", epoch.epoch);
                    assert!(!r.is_degraded());
                }
            });
        }
        scope.spawn(|| {
            for commit in 0..8 {
                let offset = base_rows + commit * tile;
                live.lock()
                    .unwrap()
                    .append(&band_at(seed, attrs, offset, tile, cols))
                    .unwrap();
            }
        });
    });
    assert_eq!(reader.current().epoch().epoch, 8);
}
