#!/usr/bin/env python3
"""Extracts benchmark artifacts into Markdown tables.

Two modes:

* ``extract_bench.py <cargo-bench-log>`` — extracts criterion median
  times from a ``cargo bench`` log (used to refresh EXPERIMENTS.md's
  wall-clock appendix).
* ``extract_bench.py --summaries [dir]`` — discovers every
  ``BENCH_*.json`` the repro harnesses write (batch, chaos, kernels,
  overload, parallel, shard, ...) by glob instead of a hard-coded file
  list, and
  prints one Markdown table per artifact with its scalar headline
  metrics. Nested objects are flattened with dotted keys; lists of
  scalars are inlined and other lists summarized by length, so new
  experiments need no parser changes. Every list of objects — at any
  nesting depth, named by its dotted path — additionally gets its own
  per-entry table, one row per entry with flattened dotted columns:
  the top-level ``configs`` array of ``BENCH_kernels.json``, the
  ``queries`` list of ``BENCH_batch.json``, and the nested
  ``migration.per_band`` / ``dual_read.per_shard`` lists of
  ``BENCH_reshard.json`` all render fully instead of collapsing to an
  ``N entries`` placeholder.
"""
import json
import re
import sys
from pathlib import Path


def criterion_table(log_path):
    log = open(log_path).read()
    # Criterion prints "<id> time: [lo med hi]" with the id sometimes on
    # the preceding "Benchmarking <id>: Analyzing" line.
    results = []
    current = None
    for line in log.splitlines():
        m = re.match(r"Benchmarking ([^:]+): Analyzing", line)
        if m:
            current = m.group(1)
            continue
        m = re.match(r"([\w/ _.-]+)?\s*time:\s+\[\S+ \S+ (\S+ \S+) \S+ \S+\]", line)
        if m:
            ident = (m.group(1) or "").strip() or current
            results.append((ident, m.group(2)))
            current = None

    print("| benchmark | median time |")
    print("|---|---|")
    for ident, med in results:
        print(f"| `{ident}` | {med} |")


def flatten(value, prefix=""):
    """Flattens nested JSON into (dotted-key, rendered-value) rows."""
    if isinstance(value, dict):
        for key, inner in value.items():
            yield from flatten(inner, f"{prefix}{key}." if prefix else f"{key}.")
    elif isinstance(value, list):
        key = prefix.rstrip(".")
        if all(isinstance(v, (int, float, str, bool)) for v in value):
            yield key, ", ".join(str(v) for v in value)
        else:
            yield key, f"{len(value)} entries"
    else:
        yield prefix.rstrip("."), value


def entry_table(name, entries):
    """Renders a list of objects as one table: a row per entry, a column
    per flattened dotted key (union across entries, first-seen order)."""
    columns = []
    rows = []
    for entry in entries:
        flat = dict(flatten(entry))
        for key in flat:
            if key not in columns:
                columns.append(key)
        rows.append(flat)
    print(f"\n#### {name}\n")
    print("| " + " | ".join(f"`{c}`" for c in columns) + " |")
    print("|" + "---|" * len(columns))
    for flat in rows:
        print("| " + " | ".join(str(flat.get(c, "")) for c in columns) + " |")


def entry_lists(value, prefix=""):
    """Finds every non-empty list of objects in the tree, at any depth,
    yielding (dotted-path, entries) in document order."""
    if isinstance(value, dict):
        for key, inner in value.items():
            yield from entry_lists(inner, f"{prefix}.{key}" if prefix else key)
    elif isinstance(value, list) and value and all(isinstance(v, dict) for v in value):
        yield prefix, value


def summaries_tables(root):
    artifacts = sorted(Path(root).glob("BENCH_*.json"))
    if not artifacts:
        print(f"no BENCH_*.json artifacts under {root}", file=sys.stderr)
        return 1
    for path in artifacts:
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as err:
            print(f"skipping {path}: {err}", file=sys.stderr)
            continue
        print(f"\n### {path.name}\n")
        print("| metric | value |")
        print("|---|---|")
        for key, value in flatten(data):
            print(f"| `{key}` | {value} |")
        for name, entries in entry_lists(data):
            entry_table(name, entries)
    return 0


def main(argv):
    if len(argv) >= 2 and argv[1] == "--summaries":
        root = argv[2] if len(argv) > 2 else "."
        return summaries_tables(root)
    if len(argv) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    criterion_table(argv[1])
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
