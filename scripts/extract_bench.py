#!/usr/bin/env python3
"""Extracts criterion median times from a `cargo bench` log into a
Markdown table (used to refresh EXPERIMENTS.md's wall-clock appendix)."""
import re
import sys

log = open(sys.argv[1]).read()
# Criterion prints "<id> time: [lo med hi]" with the id sometimes on the
# preceding "Benchmarking <id>: Analyzing" line.
results = []
current = None
for line in log.splitlines():
    m = re.match(r"Benchmarking ([^:]+): Analyzing", line)
    if m:
        current = m.group(1)
        continue
    m = re.match(r"([\w/ _.-]+)?\s*time:\s+\[\S+ \S+ (\S+ \S+) \S+ \S+\]", line)
    if m:
        ident = (m.group(1) or "").strip() or current
        results.append((ident, m.group(2)))
        current = None

print("| benchmark | median time |")
print("|---|---|")
for ident, med in results:
    print(f"| `{ident}` | {med} |")
