//! Precision agriculture: progressive classification + the Fig. 5 workflow.
//!
//! A grower wants the fields that are ready to harvest. The pipeline:
//!
//! 1. classify land cover progressively on wavelet pyramids (the 30x-style
//!    speedup of paper §3.1 / [13]),
//! 2. pose readiness as a linear model over the bands,
//! 3. run the Fig. 5 hypothesize→calibrate→retrieve→revise loop against
//!    observed yield reports.
//!
//! Run with: `cargo run --example precision_agriculture`

use mbir::core::workflow::{run_workflow, WorkflowConfig};
use mbir::models::linear::LinearModel;
use mbir::progressive::pyramid::AggregatePyramid;
use mbir::progressive::semantics::{GaussianClassifier, LandCover};
use mbir_archive::grid::Grid2;
use mbir_archive::synth::{GaussianField, OccurrenceSampler};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rows = 128;
    let cols = 128;
    // Two spectral bands with blocky field structure.
    let bands: Vec<Grid2<f64>> = (0..2)
        .map(|i| {
            GaussianField::new(100 + i)
                .with_roughness(0.35)
                .generate(rows, cols)
                .normalized(0.0, 255.0)
        })
        .collect();
    let pyramids: Vec<AggregatePyramid> = bands.iter().map(AggregatePyramid::build).collect();

    // --- Progressive classification -------------------------------------
    let mut clf = GaussianClassifier::new(2);
    clf.fit_class(
        LandCover::Grass,
        &[vec![60.0, 80.0], vec![70.0, 90.0], vec![65.0, 85.0]],
    );
    clf.fit_class(
        LandCover::BareSoil,
        &[vec![180.0, 150.0], vec![190.0, 160.0], vec![185.0, 155.0]],
    );
    let mut full_work = 0u64;
    let full = clf.classify_grid(&bands, &mut full_work);
    let (progressive, prog_work) = clf.classify_progressive(&pyramids);
    assert_eq!(full, progressive, "progressive classification is exact");
    println!("progressive classification:");
    println!("  full-resolution evaluations: {full_work}");
    println!(
        "  progressive evaluations:     {prog_work}  ({:.1}x fewer)",
        full_work as f64 / prog_work as f64
    );
    let grass = progressive
        .iter()
        .filter(|(_, &l)| l == LandCover::Grass)
        .count();
    println!("  {grass}/{} cells classified as crop", rows * cols);

    // --- Readiness model + Fig. 5 workflow -------------------------------
    // Planted truth: readiness tracks band 0 heavily, band 1 slightly.
    let truth = LinearModel::new(vec![0.8, 0.2], 0.0)?;
    let readiness = Grid2::from_fn(rows, cols, |r, c| {
        truth.evaluate(&[*bands[0].at(r, c), *bands[1].at(r, c)])
    })
    .normalized(0.0, 1.0);
    let yields = OccurrenceSampler::new(55)
        .with_base_rate(2.0)
        .sample(&readiness.map(|&v| if v > 0.8 { v } else { 0.0 }));

    // The agronomist's starting hypothesis has the weights backwards.
    let hypothesis = LinearModel::new(vec![0.2, 0.8], 0.0)?;
    let run = run_workflow(
        &pyramids,
        &yields,
        hypothesis,
        WorkflowConfig {
            k: 30,
            iterations: 6,
            seed: 5,
            exploration: 40,
        },
    )?;

    println!("\nFig. 5 workflow (hypothesize -> calibrate -> retrieve -> revise):");
    println!(
        "{:>5} {:>22} {:>10} {:>8}",
        "iter", "coefficients", "precision", "labels"
    );
    for rec in &run.iterations {
        println!(
            "{:>5} {:>22} {:>10.3} {:>8}",
            rec.iteration,
            format!("[{:.2}, {:.2}]", rec.coefficients[0], rec.coefficients[1]),
            rec.precision,
            rec.labelled
        );
    }
    println!("final model: {} (planted truth ratio 4:1)", run.final_model);
    Ok(())
}
