//! Quickstart: model-based retrieval in five steps.
//!
//! Builds a synthetic multi-modal archive (Landsat-like scene + DEM), poses
//! the paper's HPS risk model as the query, and retrieves the top-10
//! highest-risk locations with the progressive engine — comparing the work
//! against a naive full scan.
//!
//! Run with: `cargo run --example quickstart`

use mbir::core::engine::{combined_top_k, naive_grid_top_k, pyramid_top_k};
use mbir::models::linear::{HpsRiskModel, ProgressiveLinearModel};
use mbir::progressive::pyramid::AggregatePyramid;
use mbir_archive::dem::Dem;
use mbir_archive::scene::{BandId, SyntheticScene};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A synthetic archive: a 256x256 three-band scene and a DEM.
    let scene = SyntheticScene::new(42, 256, 256).generate();
    let dem = Dem::synthetic(43, 256, 256, 0.0, 2500.0);
    println!(
        "archive: {}x{} scene with bands {:?} + DEM",
        scene.rows(),
        scene.cols(),
        scene.band_ids()
    );

    // 2. The model is the query (paper §2.1): the published HPS risk model.
    let hps = HpsRiskModel::paper();
    println!("model:   {}", hps.model());

    // 3. Progressive data representation: one aggregate pyramid per
    //    attribute (TM4, TM5, TM7, elevation).
    let pyramids: Vec<AggregatePyramid> = [
        scene.band(BandId::TM4)?,
        scene.band(BandId::TM5)?,
        scene.band(BandId::TM7)?,
        dem.grid(),
    ]
    .into_iter()
    .map(AggregatePyramid::build)
    .collect();

    // 4. Progressive model representation: contribution-ranked stages.
    let ranges: Vec<(f64, f64)> = pyramids
        .iter()
        .map(|p| {
            let root = p.root();
            (root.min, root.max)
        })
        .collect();
    let progressive = ProgressiveLinearModel::new(hps.model().clone(), &ranges)?;
    println!(
        "stages:  terms evaluated in contribution order {:?}",
        progressive.term_order()
    );

    // 5. Retrieve the top-10 risk locations three ways.
    let k = 10;
    let naive = naive_grid_top_k(hps.model(), &pyramids, k)?;
    let data_only = pyramid_top_k(hps.model(), &pyramids, k)?;
    let both = combined_top_k(&progressive, &pyramids, k)?;

    println!("\ntop-{k} highest-risk cells (row, col, risk):");
    for sc in &both.results {
        println!(
            "  ({:>3}, {:>3})  R = {:.2}",
            sc.cell.row, sc.cell.col, sc.score
        );
    }
    assert_eq!(
        naive.results.iter().map(|r| r.score).collect::<Vec<_>>(),
        both.results.iter().map(|r| r.score).collect::<Vec<_>>(),
        "progressive retrieval is exact"
    );

    println!("\nwork (model multiply-adds):");
    println!(
        "  naive full scan      : {:>10}",
        naive.effort.multiply_adds
    );
    println!(
        "  progressive data     : {:>10}  ({:.1}x)",
        data_only.effort.multiply_adds,
        data_only.effort.speedup()
    );
    println!(
        "  progressive model+data: {:>9}  ({:.1}x)",
        both.effort.multiply_adds,
        both.effort.speedup()
    );
    Ok(())
}
