//! Archive management: the substrate the retrieval framework stands on.
//!
//! Shows the parts of a large-archive deployment that the other examples
//! take for granted: the metadata catalog (the coarsest abstraction level),
//! paged access with I/O accounting, wavelet compression of stored scenes,
//! temporal stacks with the recursive R(x,y,t) model, and demographic
//! weight layers for §4.1 cost evaluation.
//!
//! Run with: `cargo run --example archive_browser`

use mbir::core::metrics::{total_cost, CostParams};
use mbir::models::linear::TemporalHpsModel;
use mbir::progressive::compress::CompressedGrid;
use mbir_archive::catalog::{Catalog, DatasetMeta, Modality};
use mbir_archive::extent::GeoExtent;
use mbir_archive::region::{Polygon, Region, RegionLayer};
use mbir_archive::synth::{GaussianField, OccurrenceSampler};
use mbir_archive::temporal::TemporalStack;
use mbir_archive::tile::TileStore;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Catalog: screen datasets before touching a single pixel ---------
    let mut catalog = Catalog::new();
    let study_area = GeoExtent::new(0.0, 0.0, 60.0, 60.0);
    catalog.register(
        DatasetMeta::new("tm-1998-193", "TM scene, Jul 1998", Modality::Imagery)
            .with_extent(GeoExtent::new(0.0, 0.0, 90.0, 90.0))
            .with_days(10_420, 10_420)
            .with_tuples(8192 * 8192),
    );
    catalog.register(
        DatasetMeta::new("dem-srtm", "elevation", Modality::Elevation)
            .with_extent(GeoExtent::new(0.0, 0.0, 120.0, 120.0))
            .with_days(0, 40_000),
    );
    catalog.register(
        DatasetMeta::new("wx-station-7", "weather feed", Modality::SeriesFeed)
            .with_extent(GeoExtent::new(200.0, 200.0, 201.0, 201.0))
            .with_days(9_000, 11_000),
    );
    let candidates = catalog.covering(&study_area);
    println!(
        "catalog: {} datasets, {} cover the study area:",
        catalog.len(),
        candidates.len()
    );
    for meta in &candidates {
        println!("  {:<12} {:<22} [{}]", meta.id, meta.name, meta.modality);
    }

    // --- Paged access with I/O accounting --------------------------------
    let scene = GaussianField::new(7)
        .with_roughness(0.45)
        .generate(256, 256)
        .normalized(0.0, 255.0);
    let store = TileStore::new(scene.clone(), 32)?;
    // Read one 3x3 neighbourhood: costs pages, not the whole raster.
    for r in 100..103 {
        for c in 100..103 {
            let _ = store.read(r, c)?;
        }
    }
    println!(
        "\npaged store: {} pages total; a 3x3 read touched {} tuples / {} page reads",
        store.page_count(),
        store.stats().tuples_touched(),
        store.stats().pages_read()
    );

    // --- Compressed storage ----------------------------------------------
    println!("\nwavelet compression of the stored scene (refs [1]-[3]):");
    println!(
        "{:>12} {:>16} {:>10}",
        "retention", "storage fraction", "RMSE"
    );
    for keep in [0.02, 0.05, 0.20] {
        let compressed = CompressedGrid::compress(&scene, 5, keep);
        println!(
            "{:>11.0}% {:>15.1}% {:>10.2}",
            keep * 100.0,
            compressed.storage_fraction() * 100.0,
            compressed.rmse(&scene)
        );
    }

    // --- Temporal stack + recursive risk model ----------------------------
    let mut stack = TemporalStack::new(64, 64);
    for t in 0..6 {
        let frame = GaussianField::new(100 + t)
            .with_roughness(0.4)
            .generate(64, 64)
            .normalized(0.0, 1.0);
        stack.push(t as i64 * 16, frame)?;
    }
    let temporal = TemporalHpsModel::new([0.4, 0.3, 0.3], 0.5)?;
    // Track one cell's risk through the acquisitions (using the frame value
    // for all three observation slots for brevity).
    let series = stack.cell_series(32, 32)?;
    let observations: Vec<[f64; 3]> = series.iter().map(|(_, v)| [*v, *v, *v]).collect();
    let trajectory = temporal.run(&observations, 0.0);
    println!(
        "\ntemporal risk R(x,y,t) at cell (32,32) over {} acquisitions:",
        series.len()
    );
    for ((day, obs), risk) in series.iter().zip(&trajectory) {
        println!(
            "  day {:>3}: observation {:.2} -> risk {:.3}",
            day, obs, risk
        );
    }

    // --- Demographic weights for §4.1 costs -------------------------------
    let risk = GaussianField::new(9)
        .with_roughness(0.4)
        .generate(64, 64)
        .normalized(0.0, 1.0);
    // Put the town on the risk hotspot, so population weighting matters.
    let (hot_row, hot_col) = risk
        .iter()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(cc, _)| (cc.row, cc.col))
        .expect("non-empty risk grid");
    let (hx, hy) = study_area.cell_center(
        mbir_archive::extent::CellCoord::new(hot_row, hot_col),
        64,
        64,
    );
    let mut regions = RegionLayer::new().with_background(1.0);
    regions.push(Region {
        name: "ranchland".into(),
        polygon: Polygon::rectangle(&GeoExtent::new(0.0, 0.0, 60.0, 30.0)),
        weight: 5.0,
    });
    regions.push(Region {
        name: "town".into(),
        polygon: Polygon::rectangle(&GeoExtent::new(hx - 8.0, hy - 8.0, hx + 8.0, hy + 8.0)),
        weight: 80.0,
    });
    let weights = regions.rasterize(&study_area, 64, 64);
    let occurrences = OccurrenceSampler::new(10)
        .with_base_rate(2.0)
        .sample(&risk.map(|&v| if v > 0.7 { v } else { 0.0 }));
    let params = CostParams {
        miss_cost: 10.0,
        false_alarm_cost: 1.0,
        threshold: 0.6,
    };
    let unweighted = total_cost(&risk, &occurrences, None, params)?;
    let weighted = total_cost(&risk, &occurrences, Some(&weights), params)?;
    println!(
        "\n§4.1 cost with population weights: unweighted C_T = {:.0}, weighted C_T = {:.0}",
        unweighted.total_cost, weighted.total_cost
    );
    println!(
        "(same {} misses and {} false alarms — the town's 80x weight is what moves the cost)",
        weighted.misses, weighted.false_alarms
    );
    Ok(())
}
