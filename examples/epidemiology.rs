//! Environmental epidemiology: the paper's lead scenario.
//!
//! Plants a Hantavirus Pulmonary Syndrome risk surface over a synthetic
//! scene + DEM, samples incident reports from it, then:
//!
//! * retrieves the top-K risk locations and scores them with §4.1's
//!   precision/recall,
//! * sweeps the decision threshold to show the miss / false-alarm cost
//!   trade-off,
//! * evaluates individual houses with the Fig. 3 Bayesian network.
//!
//! Run with: `cargo run --example epidemiology`

use mbir::core::metrics::{precision_recall_at_k, roc_curve, threshold_sweep};
use mbir::models::bayes::hps_net::{hps_network, risk_given_observations};
use mbir::models::linear::{hps_risk_grid, HpsRiskModel};
use mbir_archive::dem::Dem;
use mbir_archive::gis::{PointFeature, PointLayer};
use mbir_archive::scene::SyntheticScene;
use mbir_archive::synth::OccurrenceSampler;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The study area.
    let rows = 128;
    let cols = 128;
    let scene = SyntheticScene::new(7, rows, cols).generate();
    let dem = Dem::synthetic(8, rows, cols, 100.0, 2200.0);

    // The model risk surface and the "observed" incidents: Poisson draws
    // whose rate follows the (normalized) risk — the planted ground truth
    // that replaces proprietary health records.
    let model = HpsRiskModel::paper();
    let risk = hps_risk_grid(&model, &scene, &dem)?;
    let normalized = risk.normalized(0.0, 1.0);
    let hot = normalized.map(|&v| if v > 0.8 { v } else { 0.0 });
    let occurrences = OccurrenceSampler::new(9).with_base_rate(1.5).sample(&hot);
    let cases: u32 = occurrences.iter().map(|(_, &o)| o).sum();
    println!(
        "planted {} HPS case reports over {}x{} cells",
        cases, rows, cols
    );

    // Top-K retrieval accuracy (§4.1).
    println!("\nprecision/recall of top-K retrieval by model risk:");
    println!("{:>6} {:>10} {:>10}", "K", "precision", "recall");
    for k in [10usize, 50, 100, 250, 500] {
        let pr = precision_recall_at_k(&risk, &occurrences, k)?;
        println!("{:>6} {:>10.3} {:>10.3}", k, pr.precision, pr.recall);
    }

    // Decision-cost trade-off: misses cost 10x a false alarm (field teams
    // are cheap; missed outbreaks are not).
    let (lo, hi) = risk.min_max().expect("non-empty risk grid");
    let thresholds: Vec<f64> = (0..=10).map(|i| lo + (hi - lo) * i as f64 / 10.0).collect();
    println!("\ncost sweep (miss cost 10, false-alarm cost 1):");
    println!(
        "{:>10} {:>8} {:>13} {:>10}",
        "threshold", "misses", "false alarms", "total cost"
    );
    let sweep = threshold_sweep(&risk, &occurrences, None, 10.0, 1.0, &thresholds)?;
    for (t, report) in &sweep {
        println!(
            "{:>10.1} {:>8} {:>13} {:>10.0}",
            t, report.misses, report.false_alarms, report.total_cost
        );
    }
    let best = sweep
        .iter()
        .min_by(|a, b| a.1.total_cost.total_cmp(&b.1.total_cost))
        .expect("non-empty sweep");
    println!(
        "cheapest threshold: {:.1} (C_T = {:.0})",
        best.0, best.1.total_cost
    );

    // Threshold-free summary: how well does R(x,y) order risky above safe?
    let (_, auc) = roc_curve(&risk, &occurrences)?;
    println!("ROC AUC of the risk ranking: {auc:.3}");

    // House-level knowledge model (Fig. 3): multi-modal evidence.
    let (net, nodes) = hps_network();
    let mut houses = PointLayer::new("houses");
    houses.push(
        PointFeature::new(0.2, 0.4)
            .with_attr("bushes", true)
            .with_attr("wet_then_dry", true),
    );
    houses.push(
        PointFeature::new(0.7, 0.1)
            .with_attr("bushes", false)
            .with_attr("wet_then_dry", true),
    );
    houses.push(
        PointFeature::new(0.5, 0.9)
            .with_attr("bushes", true)
            .with_attr("wet_then_dry", false),
    );
    println!("\nBayesian house assessment (Fig. 3 network):");
    for (i, house) in houses.iter().enumerate() {
        let bushes = house.attr_f64("bushes").unwrap_or(0.0) > 0.5;
        let season = house.attr_f64("wet_then_dry").unwrap_or(0.0) > 0.5;
        let p = risk_given_observations(&net, &nodes, true, bushes, season, season)?;
        println!(
            "  house {} at ({:.1}, {:.1}): bushes={} wet-then-dry={}  ->  P(high risk) = {:.3}",
            i, house.x, house.y, bushes, season, p
        );
    }
    Ok(())
}
