//! Fire ants: the finite-state model of paper Fig. 1.
//!
//! Simulates a grid of regions, each with its own weather station feed,
//! and asks: *where and when will the fire ants fly?* The full FSM answers
//! exactly; the progressive path first screens regions with coarse block
//! summaries (a sound necessary-condition test) and only runs the machine
//! on survivors.
//!
//! Run with: `cargo run --example fire_ants`

use mbir::models::fsm::fire_ants::screened_fly_detection;
use mbir_archive::weather::WeatherGenerator;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let regions_per_side = 12;
    let days = 365;
    println!(
        "simulating {}x{} regions, {} days of daily weather each",
        regions_per_side, regions_per_side, days
    );

    // Climate varies north (cool) to south (warm): only southern regions
    // can satisfy the T >= 25 °C condition regularly.
    let regions: Vec<_> = (0..regions_per_side * regions_per_side)
        .map(|i| {
            let row = i / regions_per_side;
            let mean_temp = 4.0 + 18.0 * row as f64 / (regions_per_side - 1) as f64;
            WeatherGenerator::new(i as u64)
                .with_temperature(mean_temp, 9.0, 2.5)
                .generate(0, days)
        })
        .collect();

    // Progressive detection: coarse block summaries screen, the exact
    // Fig. 1 machine refines the survivors.
    let (all_events, stats) = screened_fly_detection(&regions, 30)?;
    let mut total_events = 0usize;
    let mut firing_regions = Vec::new();
    for (i, events) in all_events.iter().enumerate() {
        if !events.is_empty() {
            total_events += events.len();
            firing_regions.push((i / regions_per_side, i % regions_per_side, events.clone()));
        }
    }

    let total_regions = regions_per_side * regions_per_side;
    println!("\nprogressive screening:");
    println!(
        "  regions screened out by block summaries: {}/{total_regions}",
        stats.screened_out
    );
    println!(
        "  full FSM runs needed:                    {}/{total_regions}",
        total_regions - stats.screened_out
    );
    println!(
        "  daily readings avoided:                  {} ({:.1}x data-touched speedup)",
        stats.readings_total - stats.readings_processed,
        stats.speedup()
    );

    println!(
        "\n{total_events} fly events across {} regions; first few:",
        firing_regions.len()
    );
    for (row, col, events) in firing_regions.iter().take(8) {
        let preview: Vec<i64> = events.iter().take(4).copied().collect();
        println!(
            "  region ({row:>2}, {col:>2}): {} events, first at days {:?}",
            events.len(),
            preview
        );
    }

    // Southern (warm) rows should dominate.
    let southern: usize = firing_regions
        .iter()
        .filter(|(row, _, _)| *row >= regions_per_side / 2)
        .count();
    println!(
        "\n{southern}/{} firing regions lie in the warm southern half",
        firing_regions.len()
    );
    Ok(())
}
