//! Oil & gas exploration: the geology knowledge model of paper Fig. 4.
//!
//! Generates an archive of synthetic wells (a fraction with a planted
//! riverbed signature), retrieves the top-K wells under the knowledge
//! model "shale on sandstone on siltstone, thin beds, gamma > 45", and
//! shows the progressive two-phase evaluation: structure screening on
//! lithology runs (semantic abstraction) before touching gamma traces.
//!
//! Run with: `cargo run --example oil_gas`

use mbir::models::knowledge::geology::RiverbedModel;
use mbir_archive::welllog::WellLog;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n_wells = 60;
    let depth_ft = 800.0;
    println!("drilling {n_wells} synthetic wells to {depth_ft} ft...");
    let wells: Vec<WellLog> = (0..n_wells)
        .map(|i| {
            if i % 5 == 0 {
                WellLog::synthetic_with_riverbed(i as u64, depth_ft)
            } else {
                WellLog::synthetic(i as u64, depth_ft)
            }
        })
        .collect();
    let planted: Vec<usize> = (0..n_wells).step_by(5).collect();
    println!("riverbed signature planted in wells {planted:?}");

    let model = RiverbedModel::paper();

    // Progressive two-phase retrieval: phase 1 bounds each well from its
    // lithology runs (semantic abstraction, no gamma samples); phase 2
    // reads gamma traces only while a bound can still beat the K-th best.
    let k = 5;
    let (scored, traces_read) = model.screened_top_k(&wells, k);

    println!("\ntop-{k} wells under the riverbed model:");
    for (rank, (i, score)) in scored.iter().enumerate() {
        let tag = if planted.contains(i) {
            " (planted)"
        } else {
            ""
        };
        println!("  #{:<2} well-{:<3} score {:.3}{tag}", rank + 1, i, score);
        if let Some(best) = model.score_well(&wells[*i]).first() {
            println!(
                "       interval {:.1}-{:.1} ft  structure {:.2}  gamma {:.2}",
                best.top_ft, best.bottom_ft, best.structure_score, best.gamma_score
            );
        }
    }

    println!(
        "\nprogressive evaluation read {traces_read}/{n_wells} gamma traces \
         (the rest were pruned at the lithology abstraction level)"
    );

    let planted_in_top = scored.iter().filter(|(i, _)| planted.contains(i)).count();
    println!("{planted_in_top}/{k} of the top-{k} are planted riverbed wells");
    Ok(())
}
