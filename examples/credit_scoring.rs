//! Credit scoring: the FICO linear model of paper §2.1 with Onion-indexed
//! top-K retrieval.
//!
//! Generates a synthetic applicant population, indexes the penalty
//! attributes with the Onion convex-hull-layer index, and answers the two
//! retrieval questions a lender actually asks — "who are my K safest
//! applicants?" and "who are my K riskiest?" — without scanning the
//! portfolio.
//!
//! Run with: `cargo run --example credit_scoring`

use mbir::index::onion::OnionIndex;
use mbir::index::scan::scan_top_k;
use mbir::models::linear::{ApplicantGenerator, FicoModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 50_000;
    let applicants = ApplicantGenerator::new(2024).generate(n);
    let model = FicoModel::standard();
    println!("portfolio: {n} applicants");

    // The score is 900 - penalties; maximizing the score = minimizing the
    // penalty form, a linear optimization query — Onion's home turf.
    // Model-specific indexing (the paper's point): the scoring model is
    // known when the index is built, so its direction is registered as a
    // workload hint — both signs, for "safest" and "riskiest" queries.
    let attributes: Vec<Vec<f64>> = applicants.iter().map(|a| a.to_vector().to_vec()).collect();
    let penalty_dir = model.penalties().coefficients().to_vec();
    let negated: Vec<f64> = penalty_dir.iter().map(|w| -w).collect();
    let onion =
        OnionIndex::build_with_hints(attributes.clone(), &[penalty_dir, negated], 64, 32, 7)?;
    println!(
        "onion index: {} layers, outer layer sizes {:?}",
        onion.layer_count(),
        &onion.layer_sizes()[..onion.layer_count().min(5)]
    );

    let k = 10;
    let weights = model.penalties().coefficients();

    // Safest applicants: minimize the penalty sum.
    let safest = onion.top_k_min(weights, k)?;
    // Riskiest applicants: maximize it.
    let riskiest = onion.top_k_max(weights, k)?;
    // Baseline for the speedup figure.
    let scan = scan_top_k(&attributes, k, |x| {
        weights.iter().zip(x).map(|(a, v)| a * v).sum()
    });

    println!("\nsafest {k} applicants:");
    println!(
        "{:>6} {:>7} {:>14} {:>8} {:>12}",
        "rank", "id", "score", "late", "P(foreclose)"
    );
    for (rank, item) in safest.results.iter().enumerate() {
        let a = &applicants[item.index];
        let score = model.score(a);
        println!(
            "{:>6} {:>7} {:>14.0} {:>8.0} {:>11.2}%",
            rank + 1,
            item.index,
            score,
            a.late_payments,
            100.0 * model.foreclosure_probability(score)
        );
    }

    println!("\nriskiest {k} applicants:");
    for (rank, item) in riskiest.results.iter().take(5).enumerate() {
        let a = &applicants[item.index];
        let score = model.score(a);
        println!(
            "  #{:<2} applicant {:>6}: score {:>4.0}, {} derogatories, P(foreclose) {:.1}%",
            rank + 1,
            item.index,
            score,
            a.derogatories,
            100.0 * model.foreclosure_probability(score)
        );
    }

    println!("\nwork comparison (top-{k} riskiest):");
    println!(
        "  sequential scan: {:>8} tuples",
        scan.stats.tuples_examined
    );
    println!(
        "  onion index:     {:>8} tuples  ({:.0}x fewer)",
        riskiest.stats.tuples_examined,
        riskiest
            .stats
            .speedup_vs(&scan.stats)
            .expect("index examined at least one tuple")
    );
    assert!(riskiest.score_equivalent(&scan, 1e-9), "onion is exact");
    Ok(())
}
